//! Recursive-descent parser producing the raw Liberty group/attribute tree.
//!
//! The grammar subset (see DESIGN.md §14):
//!
//! ```text
//! file  := group EOF
//! group := WORD '(' [value (',' value)*] ')' '{' stmt* '}' [';']
//! stmt  := WORD ':' value+ [';']                 // simple attribute
//!        | WORD '(' [value (',' value)*] ')' ';' // complex attribute
//!        | group                                 // nested group
//! value := NUMBER | STRING | WORD
//! ```
//!
//! Nesting depth is capped so the parser is total on arbitrary input — it
//! can never overflow the stack, and every failure is a [`ParseError`]
//! carrying a 1-based line/column.

use std::fmt;

use crate::lexer::{LexError, Lexer, Pos, Token, TokenKind};

/// Maximum group nesting depth. Real libraries nest 4–5 levels
/// (`library/cell/pin/internal_power/rise_power`); the cap exists so
/// adversarial input degrades into an error instead of a stack overflow.
pub const MAX_DEPTH: usize = 64;

/// A parse failure with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn at(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            line: pos.line,
            col: pos.col,
            message: message.into(),
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError::at(e.pos, e.message)
    }
}

/// An attribute or group-argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Number(f64),
    /// `"..."` quoted string.
    Str(String),
    /// Bare word (`typical`, `1ps`, `CLK`).
    Word(String),
}

impl Value {
    /// The textual form, without quoting.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) | Value::Word(s) => Some(s),
            Value::Number(_) => None,
        }
    }

    /// Numeric interpretation: numbers directly, strings/words via `parse`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Str(s) | Value::Word(s) => s.trim().parse().ok(),
        }
    }

    /// The textual form for display, numbers formatted plainly.
    pub fn display(&self) -> String {
        match self {
            Value::Number(n) => format!("{n}"),
            Value::Str(s) | Value::Word(s) => s.clone(),
        }
    }
}

/// A simple (`name : value ;`) or complex (`name (v, ...) ;`) attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    pub name: String,
    pub values: Vec<Value>,
    /// True for the parenthesised form.
    pub complex: bool,
    pub line: u32,
    pub col: u32,
}

/// A `name (args) { ... }` group.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    pub name: String,
    pub args: Vec<Value>,
    pub attributes: Vec<Attribute>,
    pub groups: Vec<Group>,
    pub line: u32,
    pub col: u32,
}

impl Group {
    /// First group argument as text (`cell (AND2X1)` → `AND2X1`).
    pub fn first_arg(&self) -> Option<&str> {
        self.args.first().and_then(Value::as_str)
    }

    /// First value of the named simple attribute.
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .and_then(|a| a.values.first())
    }

    /// Numeric value of the named simple attribute.
    pub fn attr_f64(&self, name: &str) -> Option<f64> {
        self.attr(name).and_then(Value::as_f64)
    }

    /// Text of the named simple attribute.
    pub fn attr_str(&self, name: &str) -> Option<&str> {
        self.attr(name).and_then(Value::as_str)
    }

    /// All child groups with the given name.
    pub fn children<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Group> {
        self.groups.iter().filter(move |g| g.name == name)
    }
}

/// Parses a complete Liberty file into its raw group tree.
///
/// The top-level construct must be a single group (normally
/// `library (name) { ... }`); trailing content after it is an error. The
/// parser is total: any input either yields a tree or a positioned error,
/// never a panic.
pub fn parse(src: &str) -> Result<Group, ParseError> {
    let mut p = Parser::new(src)?;
    let root = p.group(0)?;
    if p.current().kind != TokenKind::Eof {
        let tok = p.current().clone();
        return Err(ParseError::at(
            tok.pos,
            format!(
                "expected end of input after top-level group, found {}",
                tok.kind.describe()
            ),
        ));
    }
    Ok(root)
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Token,
    /// One token of lookahead, filled by [`Parser::peek_next`].
    peeked: Option<Token>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>, ParseError> {
        let mut lexer = Lexer::new(src);
        let tok = lexer.next_token()?;
        Ok(Parser {
            lexer,
            tok,
            peeked: None,
        })
    }

    fn current(&self) -> &Token {
        &self.tok
    }

    /// Consumes the current token, returning it.
    fn advance(&mut self) -> Result<Token, ParseError> {
        let next = match self.peeked.take() {
            Some(t) => t,
            None => self.lexer.next_token()?,
        };
        Ok(std::mem::replace(&mut self.tok, next))
    }

    /// Peeks at the token after the current one without consuming anything.
    fn peek_next(&mut self) -> Result<&TokenKind, ParseError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next_token()?);
        }
        Ok(&self.peeked.as_ref().expect("just filled").kind)
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, ParseError> {
        if self.tok.kind == kind {
            self.advance()
        } else {
            Err(ParseError::at(
                self.tok.pos,
                format!("expected {what}, found {}", self.tok.kind.describe()),
            ))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        let v = match &self.tok.kind {
            TokenKind::Number(n) => Value::Number(*n),
            TokenKind::Str(s) => Value::Str(s.clone()),
            TokenKind::Word(w) => Value::Word(w.clone()),
            other => {
                return Err(ParseError::at(
                    self.tok.pos,
                    format!("expected a value, found {}", other.describe()),
                ))
            }
        };
        self.advance()?;
        Ok(v)
    }

    /// Parses `[value (',' value)*]` up to a closing `)`.
    fn arg_list(&mut self) -> Result<Vec<Value>, ParseError> {
        let mut args = Vec::new();
        if self.tok.kind == TokenKind::RParen {
            return Ok(args);
        }
        loop {
            args.push(self.value()?);
            if self.tok.kind == TokenKind::Comma {
                self.advance()?;
                // Tolerate a trailing comma before `)`.
                if self.tok.kind == TokenKind::RParen {
                    return Ok(args);
                }
            } else {
                return Ok(args);
            }
        }
    }

    /// Parses a group whose name word is the current token.
    fn group(&mut self, depth: usize) -> Result<Group, ParseError> {
        let (name, pos) = match &self.tok.kind {
            TokenKind::Word(w) => (w.clone(), self.tok.pos),
            other => {
                return Err(ParseError::at(
                    self.tok.pos,
                    format!("expected a group name, found {}", other.describe()),
                ))
            }
        };
        self.advance()?;
        self.expect(TokenKind::LParen, "`(` after group name")?;
        let args = self.arg_list()?;
        self.expect(TokenKind::RParen, "`)` closing the group arguments")?;
        self.expect(TokenKind::LBrace, "`{` opening the group body")?;
        let mut group = Group {
            name,
            args,
            attributes: Vec::new(),
            groups: Vec::new(),
            line: pos.line,
            col: pos.col,
        };
        self.group_body(&mut group, depth)?;
        Ok(group)
    }

    /// Parses a group body after `{` has been consumed, including the
    /// closing `}` and an optional trailing `;`.
    fn group_body(&mut self, group: &mut Group, depth: usize) -> Result<(), ParseError> {
        if depth >= MAX_DEPTH {
            return Err(ParseError::at(
                self.tok.pos,
                format!("group nesting exceeds the maximum depth of {MAX_DEPTH}"),
            ));
        }
        loop {
            match &self.tok.kind {
                TokenKind::RBrace => {
                    self.advance()?;
                    // Optional `;` after a closing brace.
                    if self.tok.kind == TokenKind::Semi {
                        self.advance()?;
                    }
                    return Ok(());
                }
                TokenKind::Semi => {
                    // Stray semicolon; harmless in real libraries.
                    self.advance()?;
                }
                TokenKind::Word(_) => self.statement(group, depth)?,
                other => {
                    return Err(ParseError::at(
                        self.tok.pos,
                        format!(
                            "expected an attribute, group, or `}}` in `{}` body, found {}",
                            group.name,
                            other.describe()
                        ),
                    ))
                }
            }
        }
    }

    /// Parses one body statement: simple attribute, complex attribute, or
    /// nested group. The current token is the statement's name word.
    fn statement(&mut self, parent: &mut Group, depth: usize) -> Result<(), ParseError> {
        let name_pos = self.tok.pos;
        match self.peek_next()?.clone() {
            TokenKind::Colon => {
                let name = match self.advance()?.kind {
                    TokenKind::Word(w) => w,
                    _ => unreachable!("caller checked for a word token"),
                };
                self.advance()?; // colon
                let mut values = vec![self.value()?];
                // Some attributes carry several tokens before the `;`
                // (e.g. `default_operating_conditions : typical 25;`);
                // collect them all rather than failing.
                while !matches!(
                    self.tok.kind,
                    TokenKind::Semi | TokenKind::RBrace | TokenKind::Eof
                ) {
                    values.push(self.value()?);
                }
                if self.tok.kind == TokenKind::Semi {
                    self.advance()?;
                }
                parent.attributes.push(Attribute {
                    name,
                    values,
                    complex: false,
                    line: name_pos.line,
                    col: name_pos.col,
                });
                Ok(())
            }
            TokenKind::LParen => {
                let name = match self.advance()?.kind {
                    TokenKind::Word(w) => w,
                    _ => unreachable!("caller checked for a word token"),
                };
                self.advance()?; // lparen
                let values = self.arg_list()?;
                self.expect(TokenKind::RParen, "`)` closing the argument list")?;
                if self.tok.kind == TokenKind::LBrace {
                    // Nested group.
                    self.advance()?;
                    let mut group = Group {
                        name,
                        args: values,
                        attributes: Vec::new(),
                        groups: Vec::new(),
                        line: name_pos.line,
                        col: name_pos.col,
                    };
                    self.group_body(&mut group, depth + 1)?;
                    parent.groups.push(group);
                } else {
                    // Complex attribute.
                    if self.tok.kind == TokenKind::Semi {
                        self.advance()?;
                    }
                    parent.attributes.push(Attribute {
                        name,
                        values,
                        complex: true,
                        line: name_pos.line,
                        col: name_pos.col,
                    });
                }
                Ok(())
            }
            other => Err(ParseError::at(
                name_pos,
                format!(
                    "expected `:` or `(` after `{}`, found {}",
                    self.tok.kind.describe(),
                    other.describe()
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_groups_and_attributes() {
        let src = r#"
            library (demo) {
                time_unit : "1ns";
                capacitive_load_unit (1, pf);
                cell (INVX1) {
                    area : 1.5;
                    pin (A) { direction : input; capacitance : 0.01; }
                }
            }
        "#;
        let lib = parse(src).unwrap();
        assert_eq!(lib.name, "library");
        assert_eq!(lib.first_arg(), Some("demo"));
        assert_eq!(lib.attr_str("time_unit"), Some("1ns"));
        let cell = lib.children("cell").next().unwrap();
        assert_eq!(cell.first_arg(), Some("INVX1"));
        assert_eq!(cell.attr_f64("area"), Some(1.5));
        let pin = cell.children("pin").next().unwrap();
        assert_eq!(pin.attr_f64("capacitance"), Some(0.01));
    }

    #[test]
    fn complex_attribute_vs_group() {
        let src = "library (x) { define (a, b, c); values (1, 2) { inner : 3; } }";
        let lib = parse(src).unwrap();
        assert!(lib
            .attributes
            .iter()
            .any(|a| a.name == "define" && a.complex));
        assert_eq!(lib.groups.len(), 1);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("library (x) {\n  area 1.5;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected `:` or `(`"));
    }

    #[test]
    fn depth_cap_reports_instead_of_overflowing() {
        let mut src = String::from("library (x) {");
        for i in 0..200 {
            src.push_str(&format!("g{i} () {{"));
        }
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nesting"), "{}", err.message);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse("library (x) { } extra").unwrap_err();
        assert!(err.message.contains("end of input"));
    }
}
