//! Lowering a typed Liberty library onto the paper's EQ-1 power template.
//!
//! EQ-1 models an element as `P = C_sw · V² · f + I · V_DD`. A Liberty cell
//! characterises the same physics differently — per-arc internal energy
//! tables, per-pin input capacitance, and leakage states — so the lowering
//! collapses each construct into a single EQ-1 coefficient:
//!
//! * **Internal power** tables hold energy per transition in
//!   `capacitive_load_unit × voltage_unit²` units. Each table is collapsed
//!   to the midpoint of its interval hull (built with the `crates/analysis`
//!   interval machinery — the same representative-corner treatment the
//!   abstract interpreter applies to sweeps), reported per table as I203.
//!   Rise and fall midpoints average into energy per access, and
//!   `C_sw = E / V_nom²` folds the energy into switched capacitance.
//! * **Pin capacitance** on non-output pins adds directly to `C_sw`.
//! * **Leakage** (`leakage_power` states hull-collapsed, else
//!   `cell_leakage_power`) becomes `I = P_leak / V_nom`.
//!
//! Negative table entries (power recovery corners) are kept in the hull but
//! the representative midpoint is clamped at zero, noted in the I203 text.

use powerplay_analysis::Interval;
use powerplay_expr::Expr;
use powerplay_library::{ElementClass, ElementModel, LibraryElement, ParamDecl};
use powerplay_lint::{codes, Diagnostic, LintReport};

use crate::model::{Cell, Library};

/// The result of lowering a [`Library`].
#[derive(Debug)]
pub struct Lowered {
    /// One EQ-1 element per mappable cell, named `<library>/<cell>`.
    pub elements: Vec<LibraryElement>,
    /// W119/W120/I203 diagnostics accumulated during lowering.
    pub report: LintReport,
    /// Cells seen in the library.
    pub cells_parsed: usize,
    /// Cells that produced an element.
    pub cells_mapped: usize,
}

/// Collapses a table to its representative value: the midpoint of the
/// interval hull over all entries. Returns `(midpoint, hull, clamped)`.
fn collapse(values: &[f64]) -> Option<(f64, Interval, bool)> {
    let mut hull: Option<Interval> = None;
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        let p = Interval::point(v);
        hull = Some(match hull {
            Some(h) => h.union(p),
            None => p,
        });
    }
    let hull = hull?;
    let mid = (hull.lo + hull.hi) / 2.0;
    let clamped = mid < 0.0;
    Some((mid.max(0.0), hull, clamped))
}

/// Lowers every cell of `lib` onto the EQ-1 template. `source` is a
/// human-readable provenance label (file name or API origin) and
/// `source_hash` the FNV-1a hash of the raw `.lib` text, both recorded in
/// the element documentation strings.
pub fn lower(lib: &Library, source: &str, source_hash: u64) -> Lowered {
    let mut report = LintReport::new();

    for issue in &lib.unit_issues {
        report.push(
            Diagnostic::warning(
                codes::UNIT_MISMATCH,
                format!("library/{}/{}", lib.name, issue.attribute),
                format!(
                    "unit attribute `{}` value `{}` is not a recognised quantity literal; \
                     falling back to the Liberty default {}",
                    issue.attribute, issue.literal, issue.fallback
                ),
            )
            .with_suggestion("use a literal like \"1ns\", \"10mV\", or (1, pf)"),
        );
    }

    let v_nom = lib.nom_voltage.unwrap_or(1.0);
    let mut elements = Vec::new();
    let mut mapped = 0usize;

    for cell in &lib.cells {
        for skip in &cell.skipped {
            report.push(Diagnostic::warning(
                codes::UNMAPPABLE_CONSTRUCT_SKIPPED,
                skip.path.clone(),
                format!("{}; the construct was skipped", skip.detail),
            ));
        }
        match lower_cell(lib, cell, v_nom, source, source_hash, &mut report) {
            Some(element) => {
                elements.push(element);
                mapped += 1;
            }
            None => {
                report.push(
                    Diagnostic::warning(
                        codes::UNMAPPABLE_CONSTRUCT_SKIPPED,
                        format!("cells/{}", cell.name),
                        format!(
                            "cell `{}` carries no power data (no internal_power table, \
                             pin capacitance, or leakage); no EQ-1 model emitted",
                            cell.name
                        ),
                    )
                    .with_suggestion(
                        "characterise the cell with internal_power or cell_leakage_power",
                    ),
                );
            }
        }
    }

    Lowered {
        elements,
        report,
        cells_parsed: lib.cells.len(),
        cells_mapped: mapped,
    }
}

/// Lowers one cell. Returns `None` when the cell has no power content at
/// all (the caller reports the W119).
fn lower_cell(
    lib: &Library,
    cell: &Cell,
    v_nom: f64,
    source: &str,
    source_hash: u64,
    report: &mut LintReport,
) -> Option<LibraryElement> {
    // Joules per one library energy unit (cap unit × voltage unit²).
    let energy_unit = lib.units.capacitance * lib.units.voltage * lib.units.voltage;

    // --- internal energy per access -------------------------------------
    let mut energy_lib_units = 0.0f64;
    let mut any_table = false;
    for pin in &cell.pins {
        for (i, ip) in pin.internal_power.iter().enumerate() {
            let mut edges = Vec::new();
            for (edge, table) in [("rise_power", &ip.rise), ("fall_power", &ip.fall)] {
                let Some(table) = table else { continue };
                let path = format!(
                    "cells/{}/pins/{}/internal_power[{i}]/{edge}",
                    cell.name, pin.name
                );
                if let Some(t) = &table.template {
                    if t != "scalar" && !lib.templates.contains_key(t) {
                        report.push(Diagnostic::warning(
                            codes::UNMAPPABLE_CONSTRUCT_SKIPPED,
                            path.clone(),
                            format!(
                                "table references undefined template `{t}`; \
                                 the table was skipped"
                            ),
                        ));
                        continue;
                    }
                }
                let Some((mid, hull, clamped)) = collapse(&table.values) else {
                    report.push(Diagnostic::warning(
                        codes::UNMAPPABLE_CONSTRUCT_SKIPPED,
                        path.clone(),
                        "table has no finite values; the table was skipped".to_owned(),
                    ));
                    continue;
                };
                let clamp_note = if clamped {
                    " (negative midpoint clamped to 0)"
                } else {
                    ""
                };
                report.push(Diagnostic::info(
                    codes::TABLE_COLLAPSED,
                    path,
                    format!(
                        "collapsed {}-entry table over hull [{:.6}, {:.6}] to \
                         representative midpoint {:.6}{clamp_note}",
                        table.values.len(),
                        hull.lo,
                        hull.hi,
                        mid
                    ),
                ));
                edges.push(mid);
                any_table = true;
            }
            if !edges.is_empty() {
                // Energy per access: average the available edges (a full
                // access is one rise and one fall).
                energy_lib_units += edges.iter().sum::<f64>() / edges.len() as f64;
            }
        }
    }

    // --- input load capacitance ------------------------------------------
    let input_cap_lib_units: f64 = cell
        .pins
        .iter()
        .filter(|p| p.presents_load())
        .filter_map(|p| p.capacitance)
        .sum();

    // --- switched capacitance --------------------------------------------
    let internal_cap = energy_lib_units * energy_unit / (v_nom * v_nom);
    let cap_farads = internal_cap + input_cap_lib_units * lib.units.capacitance;

    // --- leakage ----------------------------------------------------------
    let leak_lib_units = if cell.leakage_states.is_empty() {
        cell.cell_leakage_power
    } else {
        collapse(&cell.leakage_states).map(|(mid, hull, _)| {
            report.push(Diagnostic::info(
                codes::TABLE_COLLAPSED,
                format!("cells/{}/leakage_power", cell.name),
                format!(
                    "collapsed {} leakage state(s) over hull [{:.6}, {:.6}] to \
                     representative midpoint {:.6}",
                    cell.leakage_states.len(),
                    hull.lo,
                    hull.hi,
                    mid
                ),
            ));
            mid
        })
    };
    let static_amps = leak_lib_units
        .map(|p| p * lib.units.leakage_power / v_nom)
        .filter(|a| *a > 0.0);

    if !any_table && input_cap_lib_units == 0.0 && static_amps.is_none() {
        return None;
    }

    // --- assemble the EQ-1 element ---------------------------------------
    let mut model = ElementModel::default();
    if cap_farads > 0.0 {
        model.cap_full = Some(Expr::parse(&format!("activity * {cap_farads:e}")).ok()?);
    }
    if let Some(amps) = static_amps {
        model.static_current = Some(Expr::parse(&format!("{amps:e}")).ok()?);
    }
    if let Some(area) = cell.area {
        // Liberty area is conventionally µm²; the registry stores m².
        model.area = Some(Expr::parse(&format!("{:e}", area * 1e-12)).ok()?);
    }

    let class = if cell.sequential {
        ElementClass::Storage
    } else {
        ElementClass::Computation
    };
    let doc = format!(
        "{} imported from Liberty library `{}` ({source}, source hash {source_hash:016x}). \
         EQ-1 lowering: C_sw = {cap_farads:.3e} F per access \
         (internal energy {energy_lib_units:.4} lib units over V_nom = {v_nom} V \
         + input pin load), static current {} A.",
        cell.name,
        lib.name,
        static_amps.map_or("0".to_owned(), |a| format!("{a:.3e}")),
    );
    let params = vec![ParamDecl::new(
        "activity",
        1.0,
        "fraction of cycles the cell switches (scales the C_sw term)",
    )];
    Some(LibraryElement::new(
        format!("{}/{}", lib.name, cell.name),
        class,
        doc,
        params,
        model,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Library;
    use crate::parse::parse;

    fn lower_src(src: &str) -> Lowered {
        let lib = Library::from_group(&parse(src).unwrap()).unwrap();
        lower(&lib, "test.lib", 0xfeed)
    }

    #[test]
    fn combinational_cell_maps_to_cap_and_leakage() {
        let out = lower_src(
            r#"library (demo) {
                voltage_unit : "1V";
                leakage_power_unit : "1nW";
                capacitive_load_unit (1, pf);
                nom_voltage : 2.0;
                lu_table_template (e7) { variable_1 : input_transition_time; index_1 ("1, 2"); }
                cell (AND2X1) {
                    area : 2.0;
                    cell_leakage_power : 4.0;
                    pin (A) { direction : input; capacitance : 0.01; }
                    pin (Y) {
                        direction : output;
                        internal_power () {
                            related_pin : "A";
                            rise_power (e7) { values ("0.4, 0.6"); }
                            fall_power (e7) { values ("0.2, 0.2"); }
                        }
                    }
                }
            }"#,
        );
        assert_eq!(out.cells_parsed, 1);
        assert_eq!(out.cells_mapped, 1);
        let el = &out.elements[0];
        assert_eq!(el.name(), "demo/AND2X1");
        // rise midpoint 0.5, fall 0.2 → energy 0.35 pJ-equivalent units:
        // 0.35 × 1pF×1V² / (2V)² = 0.0875 pF; plus input pin 0.01 pF.
        let mut globals = powerplay_expr::Scope::new();
        globals.set("vdd", 2.0);
        globals.set("f", 1e6);
        let eval = el.evaluate_defaults(&globals).unwrap();
        let expected_cap = (0.35 * 1e-12 / 4.0) + 0.01e-12;
        let expected_power = expected_cap * 4.0 * 1e6 + (4.0e-9 / 2.0) * 2.0;
        assert!(
            (eval.power.value() - expected_power).abs() < expected_power * 1e-9,
            "power {} vs {}",
            eval.power.value(),
            expected_power
        );
        // Two I203s (rise and fall tables collapsed).
        assert_eq!(
            out.report
                .diagnostics()
                .iter()
                .filter(|d| d.code == codes::TABLE_COLLAPSED)
                .count(),
            2
        );
    }

    #[test]
    fn powerless_cell_skipped_with_w119() {
        let out = lower_src("library (demo) { cell (FILL1) { area : 1.0; } }");
        assert_eq!(out.cells_mapped, 0);
        assert!(out
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::UNMAPPABLE_CONSTRUCT_SKIPPED && d.path == "cells/FILL1"));
    }

    #[test]
    fn undefined_template_reported() {
        let out = lower_src(
            r#"library (demo) {
                cell (X) {
                    pin (Y) {
                        internal_power () {
                            rise_power (nope) { values ("1.0"); }
                        }
                    }
                }
            }"#,
        );
        assert!(out
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::UNMAPPABLE_CONSTRUCT_SKIPPED
                && d.message.contains("undefined template")));
    }

    #[test]
    fn sequential_cells_are_storage_class() {
        let out = lower_src(
            r#"library (demo) {
                cell (DFF) {
                    ff (IQ, IQN) { next_state : "D"; }
                    cell_leakage_power : 1.0;
                    pin (D) { direction : input; capacitance : 0.02; }
                }
            }"#,
        );
        assert_eq!(out.elements[0].class(), ElementClass::Storage);
    }
}
