//! Typed Liberty library model, extracted from the raw group tree.
//!
//! Extraction is lossy by design: only the constructs the EQ-1 lowering
//! consumes are modelled (units, table templates, cells with pins,
//! internal/leakage power, capacitance). Everything else is either silently
//! irrelevant (timing arcs, operating conditions) or recorded in
//! [`Cell::skipped`] / [`Library::unit_issues`] so the lowering pass can
//! surface W119/W120 diagnostics with precise paths.

use std::collections::BTreeMap;

use powerplay_units::{Capacitance, Current, Power, Time, Voltage};

use crate::parse::{Group, Value};

/// Scale factors converting one library unit into SI base units.
#[derive(Debug, Clone, PartialEq)]
pub struct Units {
    /// Seconds per `time_unit`.
    pub time: f64,
    /// Volts per `voltage_unit`.
    pub voltage: f64,
    /// Amperes per `current_unit`.
    pub current: f64,
    /// Watts per `leakage_power_unit`.
    pub leakage_power: f64,
    /// Farads per `capacitive_load_unit`.
    pub capacitance: f64,
}

impl Default for Units {
    /// Liberty's conventional defaults: 1ns, 1V, 1mA, 1nW, 1pF.
    fn default() -> Units {
        Units {
            time: 1e-9,
            voltage: 1.0,
            current: 1e-3,
            leakage_power: 1e-9,
            capacitance: 1e-12,
        }
    }
}

/// A `lu_table_template` / `power_lut_template` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TableTemplate {
    pub name: String,
    /// `variable_1`, `variable_2`, ... in order.
    pub variables: Vec<String>,
    /// `index_1`, `index_2`, ... breakpoints in order.
    pub indices: Vec<Vec<f64>>,
}

/// A `values (...)` lookup table inside a power group.
#[derive(Debug, Clone, PartialEq)]
pub struct NumTable {
    /// Template name from the group argument, when given.
    pub template: Option<String>,
    /// Flattened table values in library units.
    pub values: Vec<f64>,
}

/// One `internal_power` group under a pin.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalPower {
    pub related_pin: Option<String>,
    pub when: Option<String>,
    pub rise: Option<NumTable>,
    pub fall: Option<NumTable>,
}

/// A `pin` group.
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    pub name: String,
    /// `input` / `output` / `inout`, lower-cased.
    pub direction: Option<String>,
    /// Input capacitance in library units.
    pub capacitance: Option<f64>,
    pub internal_power: Vec<InternalPower>,
}

impl Pin {
    /// True unless explicitly an output — inputs and inouts present load.
    pub fn presents_load(&self) -> bool {
        self.direction.as_deref() != Some("output")
    }
}

/// A construct extraction skipped, for W119: `(construct, path, detail)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Skipped {
    pub construct: String,
    pub path: String,
    pub detail: String,
}

/// A `cell` group.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    pub name: String,
    /// Area in library area units (conventionally µm²).
    pub area: Option<f64>,
    /// `cell_leakage_power` in leakage power units.
    pub cell_leakage_power: Option<f64>,
    /// Per-state `leakage_power { value; when; }` values.
    pub leakage_states: Vec<f64>,
    /// True when the cell contains an `ff` or `latch` group.
    pub sequential: bool,
    pub pins: Vec<Pin>,
    /// Power-relevant constructs we could not map (→ W119).
    pub skipped: Vec<Skipped>,
}

/// A unit attribute that failed to parse, for W120:
/// `(attribute, literal, fallback description)`.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitIssue {
    pub attribute: String,
    pub literal: String,
    pub fallback: String,
}

/// The typed library.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    pub name: String,
    /// `nom_voltage` (or the default operating condition's voltage), volts.
    pub nom_voltage: Option<f64>,
    pub units: Units,
    pub unit_issues: Vec<UnitIssue>,
    pub templates: BTreeMap<String, TableTemplate>,
    pub cells: Vec<Cell>,
}

/// Cell-level groups that carry power-relevant data we deliberately do not
/// lower; their presence is reported as W119 rather than ignored.
const UNSUPPORTED_CELL_GROUPS: [&str; 4] = ["bus", "bundle", "test_cell", "scaled_cell"];

impl Library {
    /// Extracts the typed model from a parsed group tree. Fails (with a
    /// message for E017) only when the root group is not a `library` or has
    /// no name; per-construct problems are collected, not fatal.
    pub fn from_group(root: &Group) -> Result<Library, String> {
        if root.name != "library" {
            return Err(format!(
                "top-level group must be `library`, found `{}`",
                root.name
            ));
        }
        let name = root
            .first_arg()
            .map(str::to_owned)
            .or_else(|| root.args.first().map(Value::display))
            .ok_or_else(|| "`library` group has no name argument".to_owned())?;

        let mut lib = Library {
            name,
            nom_voltage: None,
            units: Units::default(),
            unit_issues: Vec::new(),
            templates: BTreeMap::new(),
            cells: Vec::new(),
        };
        lib.extract_units(root);
        lib.nom_voltage = root
            .attr_f64("nom_voltage")
            .or_else(|| default_operating_voltage(root));

        for g in &root.groups {
            match g.name.as_str() {
                "lu_table_template" | "power_lut_template" => {
                    if let Some(t) = TableTemplate::from_group(g) {
                        lib.templates.insert(t.name.clone(), t);
                    }
                }
                "cell" => lib.cells.push(Cell::from_group(g)),
                // Operating conditions, wire loads, defines etc. carry no
                // per-cell power data; silently irrelevant to EQ-1.
                _ => {}
            }
        }
        Ok(lib)
    }

    /// Parses the unit attributes through `powerplay-units`, recording a
    /// [`UnitIssue`] (→ W120) and keeping the Liberty default on failure.
    fn extract_units(&mut self, root: &Group) {
        let defaults = Units::default();
        self.units.time = self.scaled_unit::<Time>(root, "time_unit", defaults.time, "1ns");
        self.units.voltage =
            self.scaled_unit::<Voltage>(root, "voltage_unit", defaults.voltage, "1V");
        self.units.current =
            self.scaled_unit::<Current>(root, "current_unit", defaults.current, "1mA");
        self.units.leakage_power =
            self.scaled_unit::<Power>(root, "leakage_power_unit", defaults.leakage_power, "1nW");
        self.extract_cap_unit(root, defaults.capacitance);
    }

    fn scaled_unit<Q>(&mut self, root: &Group, attr: &str, default: f64, fallback: &str) -> f64
    where
        Q: std::str::FromStr,
        Q: HasValue,
    {
        let Some(literal) = root.attr_str(attr) else {
            return default;
        };
        match literal.parse::<Q>() {
            Ok(q) => q.value_si(),
            Err(_) => {
                self.unit_issues.push(UnitIssue {
                    attribute: attr.to_owned(),
                    literal: literal.to_owned(),
                    fallback: fallback.to_owned(),
                });
                default
            }
        }
    }

    /// `capacitive_load_unit (1, pf)` — a complex attribute whose unit word
    /// is conventionally lower-case (`ff`, `pf`), unlike the SI `fF`/`pF`
    /// spelling `powerplay-units` expects; normalise before parsing.
    fn extract_cap_unit(&mut self, root: &Group, default: f64) {
        let Some(attr) = root
            .attributes
            .iter()
            .find(|a| a.name == "capacitive_load_unit")
        else {
            self.units.capacitance = default;
            return;
        };
        let number = attr.values.first().and_then(Value::as_f64);
        let word = attr.values.get(1).and_then(Value::as_str);
        let parsed = match (number, word) {
            (Some(n), Some(w)) => normalize_farad_suffix(w)
                .and_then(|unit| format!("{n}{unit}").parse::<Capacitance>().ok())
                .map(|c| c.value()),
            _ => None,
        };
        match parsed {
            Some(f) => self.units.capacitance = f,
            None => {
                self.unit_issues.push(UnitIssue {
                    attribute: "capacitive_load_unit".to_owned(),
                    literal: attr
                        .values
                        .iter()
                        .map(Value::display)
                        .collect::<Vec<_>>()
                        .join(", "),
                    fallback: "1pF".to_owned(),
                });
                self.units.capacitance = default;
            }
        }
    }
}

/// `voltage_unit` parses to a [`Voltage`] etc.; this tiny trait lets
/// `scaled_unit` stay generic over the quantity newtypes.
trait HasValue {
    fn value_si(&self) -> f64;
}

macro_rules! has_value {
    ($($t:ty),*) => {$(
        impl HasValue for $t {
            fn value_si(&self) -> f64 {
                self.value()
            }
        }
    )*};
}
has_value!(Time, Voltage, Current, Power, Capacitance);

/// Rewrites a Liberty capacitance unit word (`ff`, `pf`, `PF`…) into the
/// SI spelling (`fF`, `pF`) powerplay-units parses.
fn normalize_farad_suffix(word: &str) -> Option<String> {
    let w = word.trim();
    let last = w.chars().last()?;
    if !matches!(last, 'f' | 'F') {
        return None;
    }
    let prefix = &w[..w.len() - last.len_utf8()];
    if prefix.chars().count() > 1 {
        return None;
    }
    Some(format!("{}F", prefix.to_lowercase()))
}

/// The default operating condition's `voltage`, used when `nom_voltage`
/// is absent.
fn default_operating_voltage(root: &Group) -> Option<f64> {
    let wanted = root.attr_str("default_operating_conditions");
    root.children("operating_conditions")
        .find(|g| wanted.is_none() || g.first_arg() == wanted)
        .and_then(|g| g.attr_f64("voltage"))
}

impl TableTemplate {
    fn from_group(g: &Group) -> Option<TableTemplate> {
        let name = g.first_arg()?.to_owned();
        let mut variables = Vec::new();
        let mut indices = Vec::new();
        for i in 1.. {
            match g.attr_str(&format!("variable_{i}")) {
                Some(v) => variables.push(v.to_owned()),
                None => break,
            }
        }
        for i in 1.. {
            match g.attr(&format!("index_{i}")) {
                Some(v) => indices.push(number_list(std::slice::from_ref(v))),
                None => break,
            }
        }
        Some(TableTemplate {
            name,
            variables,
            indices,
        })
    }
}

/// Flattens `values ("1, 2", "3, 4")`-style attribute values into numbers.
/// Non-numeric entries are dropped (the lowering only needs the hull).
pub(crate) fn number_list(values: &[Value]) -> Vec<f64> {
    let mut out = Vec::new();
    for v in values {
        match v {
            Value::Number(n) => out.push(*n),
            Value::Str(s) | Value::Word(s) => {
                for piece in s.split(&[',', ' ', '\t'][..]) {
                    let piece = piece.trim();
                    if piece.is_empty() {
                        continue;
                    }
                    if let Ok(n) = piece.parse::<f64>() {
                        out.push(n);
                    }
                }
            }
        }
    }
    out
}

impl NumTable {
    fn from_group(g: &Group) -> Option<NumTable> {
        let values = g.attributes.iter().find(|a| a.name == "values")?;
        Some(NumTable {
            template: g.first_arg().map(str::to_owned),
            values: number_list(&values.values),
        })
    }
}

impl Cell {
    fn from_group(g: &Group) -> Cell {
        let name = g
            .first_arg()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("cell@{}:{}", g.line, g.col));
        let mut cell = Cell {
            name: name.clone(),
            area: g.attr_f64("area"),
            cell_leakage_power: g.attr_f64("cell_leakage_power"),
            leakage_states: Vec::new(),
            sequential: false,
            pins: Vec::new(),
            skipped: Vec::new(),
        };
        for child in &g.groups {
            match child.name.as_str() {
                "pin" => cell
                    .pins
                    .push(Pin::from_group(child, &name, &mut cell.skipped)),
                "ff" | "latch" => cell.sequential = true,
                "leakage_power" => {
                    if let Some(v) = child.attr_f64("value") {
                        cell.leakage_states.push(v);
                    }
                }
                n if UNSUPPORTED_CELL_GROUPS.contains(&n) => {
                    cell.skipped.push(Skipped {
                        construct: n.to_owned(),
                        path: format!("cells/{name}/{n}"),
                        detail: format!("`{n}` groups are outside the supported Liberty subset"),
                    });
                }
                // statetable, pg_pin, timing models, modes… — no power data
                // the EQ-1 lowering could use; silently irrelevant.
                _ => {}
            }
        }
        cell
    }
}

impl Pin {
    fn from_group(g: &Group, cell: &str, skipped: &mut Vec<Skipped>) -> Pin {
        let name = g
            .first_arg()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("pin@{}:{}", g.line, g.col));
        let mut pin = Pin {
            name: name.clone(),
            direction: g.attr_str("direction").map(str::to_lowercase),
            capacitance: g.attr_f64("capacitance"),
            internal_power: Vec::new(),
        };
        for child in g.children("internal_power") {
            let mut ip = InternalPower {
                related_pin: child.attr_str("related_pin").map(str::to_owned),
                when: child.attr_str("when").map(str::to_owned),
                rise: None,
                fall: None,
            };
            for table in &child.groups {
                match table.name.as_str() {
                    "rise_power" => ip.rise = NumTable::from_group(table),
                    "fall_power" => ip.fall = NumTable::from_group(table),
                    "power" => {
                        // Unified rise/fall table: treat as both edges.
                        let t = NumTable::from_group(table);
                        ip.rise = t.clone();
                        ip.fall = t;
                    }
                    other => skipped.push(Skipped {
                        construct: other.to_owned(),
                        path: format!("cells/{cell}/pins/{name}/internal_power/{other}"),
                        detail: format!("unsupported `{other}` table inside internal_power"),
                    }),
                }
            }
            pin.internal_power.push(ip);
        }
        pin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn lib(src: &str) -> Library {
        Library::from_group(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn units_scale_through_powerplay_units() {
        let l = lib(r#"library (u) {
            time_unit : "1ps";
            voltage_unit : "10mV";
            leakage_power_unit : "1nW";
            capacitive_load_unit (1, ff);
        }"#);
        assert!((l.units.time - 1e-12).abs() < 1e-24);
        assert!((l.units.voltage - 1e-2).abs() < 1e-14);
        assert!((l.units.leakage_power - 1e-9).abs() < 1e-21);
        assert!((l.units.capacitance - 1e-15).abs() < 1e-27);
        assert!(l.unit_issues.is_empty());
    }

    #[test]
    fn bad_unit_records_issue_and_falls_back() {
        let l = lib(r#"library (u) { voltage_unit : "1parsec"; }"#);
        assert_eq!(l.unit_issues.len(), 1);
        assert_eq!(l.unit_issues[0].attribute, "voltage_unit");
        assert_eq!(l.units.voltage, 1.0);
    }

    #[test]
    fn nom_voltage_falls_back_to_operating_conditions() {
        let l = lib(r#"library (u) {
            default_operating_conditions : typical;
            operating_conditions (typical) { voltage : 1.1; }
        }"#);
        assert_eq!(l.nom_voltage, Some(1.1));
    }

    #[test]
    fn cell_extraction() {
        let l = lib(r#"library (u) {
            cell (DFFX1) {
                area : 7.5;
                cell_leakage_power : 0.2;
                ff (IQ, IQN) { next_state : "D"; }
                leakage_power () { value : 0.1; when : "!CK"; }
                bus (Q_bus) { }
                pin (D) {
                    direction : input;
                    capacitance : 0.01;
                    internal_power () {
                        related_pin : "CK";
                        rise_power (energy_template) { values ("0.1, 0.2"); }
                        fall_power (energy_template) { values ("0.3, 0.4"); }
                    }
                }
            }
        }"#);
        let c = &l.cells[0];
        assert!(c.sequential);
        assert_eq!(c.leakage_states, vec![0.1]);
        assert_eq!(c.skipped.len(), 1);
        assert_eq!(c.skipped[0].construct, "bus");
        let ip = &c.pins[0].internal_power[0];
        assert_eq!(ip.rise.as_ref().unwrap().values, vec![0.1, 0.2]);
        assert_eq!(ip.fall.as_ref().unwrap().values, vec![0.3, 0.4]);
    }

    #[test]
    fn non_library_root_rejected() {
        let err = Library::from_group(&parse("cell (x) { }").unwrap()).unwrap_err();
        assert!(err.contains("must be `library`"));
    }
}
