//! Tokeniser for the Liberty (`.lib`) format.
//!
//! Liberty is a line-oriented group/attribute language with C-style block
//! comments, `//` line comments, `"`-quoted strings and `\`-newline
//! continuations (both between tokens and inside strings). The lexer tracks
//! line/column positions so every downstream error can point at its source.

use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: Pos,
}

/// Token kinds. Numbers and bare words are both lexed as [`TokenKind::Word`]
/// when a numeric prefix runs into identifier characters (`1ps`, `10mV`), so
/// unit literals survive unquoted.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier or identifier-like value (`cell`, `AND2X1`, `1ps`).
    Word(String),
    /// Pure numeric literal.
    Number(f64),
    /// `"..."` quoted string, escapes resolved, continuations spliced.
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Colon,
    Semi,
    Comma,
    Eof,
}

impl TokenKind {
    /// Human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => format!("`{w}`"),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Str(_) => "string".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::LBrace => "`{`".to_owned(),
            TokenKind::RBrace => "`}`".to_owned(),
            TokenKind::Colon => "`:`".to_owned(),
            TokenKind::Semi => "`;`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

/// Lexical error with the position it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub pos: Pos,
    pub message: String,
}

pub(crate) struct Lexer<'a> {
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

fn is_word_start(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'!' | b'.' | b'+' | b'-' | b'/' | b'*' | b'[')
}

fn is_word_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric()
        || matches!(
            b,
            b'_' | b'!' | b'.' | b'+' | b'-' | b'/' | b'*' | b'[' | b']' | b'\'' | b'$'
        )
}

impl<'a> Lexer<'a> {
    pub(crate) fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Consumes a `\`-newline continuation starting at the current `\`.
    /// Trailing spaces between the backslash and the newline are tolerated
    /// (they appear in real libraries). Returns false when the `\` is not a
    /// continuation.
    fn try_continuation(&mut self) -> bool {
        debug_assert_eq!(self.peek(), Some(b'\\'));
        let mut off = 1;
        while matches!(self.peek_at(off), Some(b' ') | Some(b'\t') | Some(b'\r')) {
            off += 1;
        }
        if self.peek_at(off) == Some(b'\n') {
            for _ in 0..=off {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'\\') => {
                    if !self.try_continuation() {
                        return Ok(());
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(LexError {
                                    pos: start,
                                    message: "unterminated `/* ... */` comment".to_owned(),
                                })
                            }
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos();
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(LexError {
                        pos: start,
                        message: "unterminated string literal".to_owned(),
                    })
                }
                Some(b'"') => {
                    self.bump();
                    return Ok(TokenKind::Str(out));
                }
                Some(b'\\') => {
                    if self.try_continuation() {
                        // Multi-line string: the continuation splices the
                        // next line in; leading indentation is preserved.
                        continue;
                    }
                    self.bump();
                    match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(other) => {
                            // Liberty escapes are rare; keep unknown ones
                            // verbatim so boolean functions round-trip.
                            out.push('\\');
                            out.push(other as char);
                        }
                        None => {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated string literal".to_owned(),
                            })
                        }
                    }
                }
                Some(b) => {
                    self.bump();
                    out.push(b as char);
                }
            }
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let begin = self.i;
        while let Some(b) = self.peek() {
            if !is_word_continue(b) {
                break;
            }
            // `/` only continues a word when it is not opening a comment.
            if b == b'/' && matches!(self.peek_at(1), Some(b'/') | Some(b'*')) {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[begin..self.i]).into_owned();
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => TokenKind::Number(n),
            _ => TokenKind::Word(text),
        }
    }

    pub(crate) fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let kind = match self.peek() {
            None => TokenKind::Eof,
            Some(b'(') => {
                self.bump();
                TokenKind::LParen
            }
            Some(b')') => {
                self.bump();
                TokenKind::RParen
            }
            Some(b'{') => {
                self.bump();
                TokenKind::LBrace
            }
            Some(b'}') => {
                self.bump();
                TokenKind::RBrace
            }
            Some(b':') => {
                self.bump();
                TokenKind::Colon
            }
            Some(b';') => {
                self.bump();
                TokenKind::Semi
            }
            Some(b',') => {
                self.bump();
                TokenKind::Comma
            }
            Some(b'"') => self.lex_string()?,
            Some(b) if is_word_start(b) => self.lex_word(),
            Some(b) => {
                return Err(LexError {
                    pos,
                    message: format!("unexpected character `{}` (0x{b:02x})", b as char),
                })
            }
        };
        Ok(Token { kind, pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(src: &str) -> Result<Vec<TokenKind>, LexError> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token()?;
            if t.kind == TokenKind::Eof {
                return Ok(out);
            }
            out.push(t.kind);
        }
    }

    #[test]
    fn words_numbers_and_units() {
        let toks = lex_all("cell (AND2X1) { area : 2.5; time_unit : 1ps; }").unwrap();
        assert!(toks.contains(&TokenKind::Word("cell".into())));
        assert!(toks.contains(&TokenKind::Number(2.5)));
        assert!(toks.contains(&TokenKind::Word("1ps".into())));
    }

    #[test]
    fn comments_and_continuations() {
        let toks = lex_all("a /* b\n c */ : \\\n  1; // tail").unwrap();
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("a".into()),
                TokenKind::Colon,
                TokenKind::Number(1.0),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn multiline_string_splices() {
        let toks = lex_all("values (\"0.1, \\\n0.2\");").unwrap();
        assert!(toks.contains(&TokenKind::Str("0.1, 0.2".into())));
    }

    #[test]
    fn unterminated_string_positions() {
        let err = lex_all("x : \"abc").unwrap_err();
        assert_eq!(err.pos, Pos { line: 1, col: 5 });
    }

    #[test]
    fn unterminated_comment_positions() {
        let err = lex_all("a\n/* never closed").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn scientific_notation_is_numeric() {
        let toks = lex_all("1.234e-15").unwrap();
        assert_eq!(toks, vec![TokenKind::Number(1.234e-15)]);
    }
}
