//! End-to-end import: text → parse → typed model → EQ-1 elements,
//! with telemetry and a stable provenance hash.

use powerplay_library::LibraryElement;
use powerplay_lint::{codes, Diagnostic, LintReport};
use powerplay_telemetry::global;

use crate::lower;
use crate::model::Library;
use crate::parse;

/// The outcome of importing one `.lib` source.
#[derive(Debug)]
pub struct Import {
    /// Library name from the `library (...)` header; empty on parse failure.
    pub library: String,
    /// EQ-1 elements, one per mapped cell, named `<library>/<cell>`.
    pub elements: Vec<LibraryElement>,
    /// E017/W119/W120/I203 diagnostics.
    pub report: LintReport,
    pub cells_parsed: usize,
    pub cells_mapped: usize,
    /// FNV-1a hash of the raw source text — the provenance fingerprint
    /// recorded in element docs, the store, and the inspector.
    pub source_hash: u64,
}

impl Import {
    /// True when the source parsed and at least the header was usable.
    pub fn parsed(&self) -> bool {
        !self.report.has_errors()
    }
}

/// 64-bit FNV-1a over the raw source bytes.
pub fn source_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Imports a Liberty source. Never fails: parse errors come back as E017
/// diagnostics in the report (with `line:col` in both path and message),
/// and the element list is empty in that case.
///
/// `source` is a human-readable provenance label (file name or API origin).
pub fn import_str(text: &str, source: &str) -> Import {
    let t = global()
        .histogram(
            "powerplay_liberty_import_seconds",
            "Wall-clock time spent importing Liberty sources",
        )
        .start_timer();
    let hash = source_hash(text);

    let outcome = match parse::parse(text) {
        Err(e) => {
            let mut report = LintReport::new();
            report.push(
                Diagnostic::error(
                    codes::UNPARSABLE_LIBRARY,
                    format!("{source}:{}:{}", e.line, e.col),
                    format!(
                        "Liberty source does not parse at {}:{}: {}",
                        e.line, e.col, e.message
                    ),
                )
                .with_suggestion("check for unbalanced braces, quotes, or comments"),
            );
            Import {
                library: String::new(),
                elements: Vec::new(),
                report,
                cells_parsed: 0,
                cells_mapped: 0,
                source_hash: hash,
            }
        }
        Ok(root) => match Library::from_group(&root) {
            Err(message) => {
                let mut report = LintReport::new();
                report.push(
                    Diagnostic::error(
                        codes::UNPARSABLE_LIBRARY,
                        format!("{source}:{}:{}", root.line, root.col),
                        format!(
                            "Liberty source is not a library at {}:{}: {message}",
                            root.line, root.col
                        ),
                    )
                    .with_suggestion("the top-level group must be `library (name) { ... }`"),
                );
                Import {
                    library: String::new(),
                    elements: Vec::new(),
                    report,
                    cells_parsed: 0,
                    cells_mapped: 0,
                    source_hash: hash,
                }
            }
            Ok(lib) => {
                let lowered = lower::lower(&lib, source, hash);
                Import {
                    library: lib.name,
                    elements: lowered.elements,
                    report: lowered.report,
                    cells_parsed: lowered.cells_parsed,
                    cells_mapped: lowered.cells_mapped,
                    source_hash: hash,
                }
            }
        },
    };

    global()
        .counter(
            "powerplay_liberty_cells_parsed_total",
            "Liberty cells seen across all imports",
        )
        .add(outcome.cells_parsed as u64);
    global()
        .counter(
            "powerplay_liberty_cells_mapped_total",
            "Liberty cells successfully lowered to EQ-1 elements",
        )
        .add(outcome.cells_mapped as u64);
    drop(t);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_becomes_e017_with_location() {
        let out = import_str("library (x) {\n  oops", "bad.lib");
        assert!(out.report.has_errors());
        let d = &out.report.diagnostics()[0];
        assert_eq!(d.code, codes::UNPARSABLE_LIBRARY);
        assert!(d.path.contains("bad.lib:2:"), "path was {}", d.path);
        assert!(out.elements.is_empty());
    }

    #[test]
    fn non_library_root_becomes_e017() {
        let out = import_str("cell (x) { }", "notlib.lib");
        assert!(out.report.has_errors());
        assert!(out.report.diagnostics()[0]
            .message
            .contains("not a library"));
    }

    #[test]
    fn happy_path_counts_and_hash_are_stable() {
        let src = r#"library (tiny) {
            cell (BUF) { pin (A) { direction : input; capacitance : 0.01; } }
        }"#;
        let a = import_str(src, "tiny.lib");
        let b = import_str(src, "tiny.lib");
        assert_eq!(a.cells_parsed, 1);
        assert_eq!(a.cells_mapped, 1);
        assert_eq!(a.source_hash, b.source_hash);
        assert!(!a.report.has_errors());
    }
}
