//! From-scratch Liberty (`.lib`) ingestion for the PowerPlay reproduction.
//!
//! The paper's element library assumes characterised power models; this
//! crate provides the real-world front door: it parses the industry
//! Liberty format (the grammar subset real NLDM libraries use — groups,
//! simple/complex attributes, `lu_table_template`s, cells with pins,
//! `internal_power`/`leakage_power`, comments and `\`-continuations) and
//! lowers every cell onto the paper's EQ-1 template
//! `P = C_sw · V² · f + I · V_DD`:
//!
//! * internal-power tables collapse to a representative-corner midpoint
//!   via the `crates/analysis` interval hull (reported per-table as I203),
//!   then fold into switched capacitance `C_sw = E / V_nom²`;
//! * input pin capacitance adds to `C_sw`;
//! * leakage becomes a static current `I = P_leak / V_DD`.
//!
//! All unit scaling flows through `powerplay-units` (`time_unit`,
//! `voltage_unit`, `leakage_power_unit`, `capacitive_load_unit`), and
//! everything suspicious surfaces as stable lint diagnostics: E017
//! unparsable-library, W119 unmappable-construct-skipped, W120
//! unit-mismatch, I203 table-collapsed.
//!
//! The parser is total: arbitrary input yields either a tree or a
//! positioned error — never a panic and never unbounded recursion.
//!
//! ```
//! let src = r#"library (demo) {
//!     capacitive_load_unit (1, pf);
//!     nom_voltage : 1.1;
//!     cell (INVX1) {
//!         cell_leakage_power : 0.5;
//!         pin (A) { direction : input; capacitance : 0.008; }
//!     }
//! }"#;
//! let import = powerplay_liberty::import_str(src, "demo.lib");
//! assert_eq!(import.cells_mapped, 1);
//! assert_eq!(import.elements[0].name(), "demo/INVX1");
//! ```

pub mod lexer;
pub mod lower;
pub mod model;
pub mod parse;

mod import;

pub use import::{import_str, source_hash, Import};
pub use lower::{lower, Lowered};
pub use model::{Cell, Library, Pin, TableTemplate, Units};
pub use parse::{parse, Group, ParseError, Value};
