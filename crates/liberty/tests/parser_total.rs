//! Totality of the Liberty front end: arbitrary input never panics,
//! never recurses unboundedly, and every rejection carries a position.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse` is total over arbitrary byte soup (lossily decoded, the
    /// same way a file read would arrive): a tree or a positioned error,
    /// never a panic.
    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        match powerplay_liberty::parse(&text) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.line >= 1, "line must be 1-based, got {}", e.line);
                prop_assert!(e.col >= 1, "col must be 1-based, got {}", e.col);
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    /// Structured-but-mangled input (Liberty-ish tokens in random order)
    /// exercises the parser deeper than raw bytes; same totality bar.
    #[test]
    fn parse_never_panics_on_token_soup(picks in prop::collection::vec(0usize..12, 0..64)) {
        let vocab = [
            "library", "(", ")", "{", "}", ":", ";", ",",
            "\"str\"", "1.5", "cell", "\\\n",
        ];
        let text: String = picks
            .iter()
            .map(|p| vocab[*p])
            .collect::<Vec<_>>()
            .join(" ");
        match powerplay_liberty::parse(&text) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.line >= 1 && e.col >= 1);
            }
        }
    }

    /// The end-to-end importer is just as total: any input yields a
    /// report (E017 on failure), never a panic.
    #[test]
    fn import_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let import = powerplay_liberty::import_str(&text, "fuzz.lib");
        if !import.parsed() {
            prop_assert!(import.elements.is_empty());
        }
    }
}
