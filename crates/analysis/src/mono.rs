//! Per-input monotonicity analysis.
//!
//! Alongside its interval, every abstract value carries one [`Mono`]
//! direction per *tracked input* (a top-level global or an explicitly
//! ranged parameter): does the expression provably not decrease
//! ([`Mono::Inc`]), not increase ([`Mono::Dec`]), not change at all
//! ([`Mono::Const`]) as that one input grows with the others held
//! fixed — or do we not know ([`Mono::Unknown`])?
//!
//! Directions compose by a sign algebra over the derivative of each
//! operation, using the operand *intervals* to settle signs where the
//! chain rule needs them (`d(x·y) = y·dx + x·dy` needs the sign of
//! `x` and `y`). Everything here over-approximates: `Unknown` is
//! always sound, and the analyzer only ever *reports* `Inc`/`Dec`/
//! `Const`, never relies on them for pruning decisions beyond what
//! the intervals already prove.

use crate::interval::Interval;

/// Direction of change with respect to one tracked input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mono {
    /// Provably independent of the input.
    Const,
    /// Provably non-decreasing in the input.
    Inc,
    /// Provably non-increasing in the input.
    Dec,
    /// No proof either way.
    Unknown,
}

impl Mono {
    /// Direction of `-e` given the direction of `e`.
    #[must_use]
    pub fn flip(self) -> Mono {
        match self {
            Mono::Inc => Mono::Dec,
            Mono::Dec => Mono::Inc,
            other => other,
        }
    }

    /// Least upper bound: agree exactly or give up (with `Const` as
    /// the identity — a constant branch never disturbs the other's
    /// direction).
    #[must_use]
    pub fn join(self, other: Mono) -> Mono {
        match (self, other) {
            (a, b) if a == b => a,
            (Mono::Const, b) => b,
            (a, Mono::Const) => a,
            _ => Mono::Unknown,
        }
    }

    /// Sign of the "derivative" this direction stands for: `Const` is
    /// exactly zero, `Inc`/`Dec` are `≥ 0` / `≤ 0`, `Unknown` is no
    /// information.
    fn sign(self) -> Option<i8> {
        match self {
            Mono::Const => Some(0),
            Mono::Inc => Some(1),
            Mono::Dec => Some(-1),
            Mono::Unknown => None,
        }
    }

    /// Scales a direction by the (known) sign of a multiplier.
    #[must_use]
    pub fn scale(self, sign: i8) -> Mono {
        if sign == 0 {
            return Mono::Const;
        }
        if sign > 0 {
            self
        } else {
            self.flip()
        }
    }
}

/// Sign of every value in `iv`, when definite. NaN admits no sign.
fn interval_sign(iv: &Interval) -> Option<i8> {
    if iv.nan || iv.is_numeric_empty() {
        return None;
    }
    if iv.lo >= 0.0 {
        Some(1)
    } else if iv.hi <= 0.0 {
        Some(-1)
    } else {
        None
    }
}

/// Sign of a product of a derivative sign and a value sign, treating
/// an exactly-zero derivative as absorbing (0 · unknown = 0).
fn term_sign(mono: Mono, value: &Interval) -> Option<i8> {
    match mono.sign() {
        Some(0) => Some(0),
        Some(m) => interval_sign(value).map(|v| m * v),
        None => None,
    }
}

/// Combines the two chain-rule terms `t1 + t2`: both `≥ 0` ⇒ `Inc`,
/// both `≤ 0` ⇒ `Dec`, both `= 0` ⇒ `Const`.
fn combine_terms(t1: Option<i8>, t2: Option<i8>) -> Mono {
    match (t1, t2) {
        (Some(0), Some(0)) => Mono::Const,
        (Some(a), Some(b)) if a >= 0 && b >= 0 => Mono::Inc,
        (Some(a), Some(b)) if a <= 0 && b <= 0 => Mono::Dec,
        _ => Mono::Unknown,
    }
}

/// `d(x + y)`: directions add.
#[must_use]
pub fn add(ma: Mono, mb: Mono) -> Mono {
    combine_terms(ma.sign(), mb.sign())
}

/// `d(x - y)`: directions subtract.
#[must_use]
pub fn sub(ma: Mono, mb: Mono) -> Mono {
    combine_terms(ma.sign(), mb.flip().sign())
}

/// `d(x · y) = y·dx + x·dy`: needs the operand value signs.
#[must_use]
pub fn mul(ma: Mono, ia: &Interval, mb: Mono, ib: &Interval) -> Mono {
    combine_terms(term_sign(ma, ib), term_sign(mb, ia))
}

/// `d(x / y)`: quotient rule, sound only when the denominator has a
/// definite sign (no pole crossing inside the range).
#[must_use]
pub fn div(ma: Mono, ia: &Interval, mb: Mono, ib: &Interval) -> Mono {
    if ma == Mono::Const && mb == Mono::Const {
        return Mono::Const;
    }
    if interval_sign(ib).is_none() || ib.contains_zero() {
        return Mono::Unknown;
    }
    // d(x/y) = dx/y − (x/y²)·dy: same shape as a product against
    // 1/y, whose sign matches y's.
    combine_terms(term_sign(ma, ib), term_sign(mb.flip(), ia))
}

/// `d(x ^ y)` for the shapes we can settle: constant exponent with a
/// nonnegative base, or constant base.
#[must_use]
pub fn pow(ma: Mono, ia: &Interval, mb: Mono, ib: &Interval) -> Mono {
    if ma == Mono::Const && mb == Mono::Const {
        return Mono::Const;
    }
    if mb == Mono::Const && !ia.nan && ia.lo >= 0.0 {
        // x^c on x ≥ 0: monotone with the sign of c.
        return match interval_sign(ib) {
            Some(s) => ma.scale(s),
            None => Mono::Unknown,
        };
    }
    if ma == Mono::Const && !ia.nan && !ia.is_numeric_empty() {
        // c^y: increasing in y when c ≥ 1, decreasing when 0 ≤ c ≤ 1.
        if ia.lo >= 1.0 {
            return mb;
        }
        if ia.lo >= 0.0 && ia.hi <= 1.0 {
            return mb.flip();
        }
    }
    Mono::Unknown
}

/// `d(|x|)`: preserved where the sign is definite.
#[must_use]
pub fn abs(ma: Mono, ia: &Interval) -> Mono {
    if ma == Mono::Const {
        return Mono::Const;
    }
    match interval_sign(ia) {
        Some(s) => ma.scale(s),
        None => Mono::Unknown,
    }
}

/// Directions through a monotone-increasing function on a restricted
/// domain (`sqrt`, `ln`, `log10`, `log2` on `x ≥ 0`).
#[must_use]
pub fn increasing_on_nonneg(ma: Mono, ia: &Interval) -> Mono {
    if ma == Mono::Const {
        return Mono::Const;
    }
    if !ia.nan && ia.lo >= 0.0 {
        ma
    } else {
        Mono::Unknown
    }
}

/// Directions through an everywhere-monotone-increasing function
/// (`exp`, `floor`, `ceil`, `round`).
#[must_use]
pub fn increasing(ma: Mono) -> Mono {
    ma
}

/// `d(min(x, y))` / `d(max(x, y))`: the active branch can switch, so
/// the directions must agree.
#[must_use]
pub fn min_max(ma: Mono, mb: Mono) -> Mono {
    ma.join(mb)
}

/// `d(hypot(x, y))`: increasing in each magnitude, so compose the
/// magnitudes' directions.
#[must_use]
pub fn hypot(ma: Mono, ia: &Interval, mb: Mono, ib: &Interval) -> Mono {
    combine_terms(abs(ma, ia).sign(), abs(mb, ib).sign())
}

/// `d(if(c, t, e))`: when only one branch is reachable, that branch's
/// direction; when the condition is provably constant, the join of the
/// branches; otherwise unknown (the selector may flip).
#[must_use]
pub fn if_branches(mc: Mono, can_then: bool, can_else: bool, mt: Mono, me: Mono) -> Mono {
    match (can_then, can_else) {
        (true, false) => mt,
        (false, true) => me,
        (false, false) => Mono::Const,
        (true, true) => {
            if mc == Mono::Const {
                mt.join(me)
            } else {
                Mono::Unknown
            }
        }
    }
}

/// Comparisons and `%`: step functions of their inputs — constant only
/// when both operands are.
#[must_use]
pub fn opaque(ma: Mono, mb: Mono) -> Mono {
    if ma == Mono::Const && mb == Mono::Const {
        Mono::Const
    } else {
        Mono::Unknown
    }
}

/// An abstract value: interval plus one direction per tracked input.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsValue {
    /// Reachable-value set.
    pub iv: Interval,
    /// Direction with respect to each tracked input, index-aligned
    /// with the analyzer's input list.
    pub mono: Vec<Mono>,
}

impl AbsValue {
    /// A value independent of every tracked input.
    #[must_use]
    pub fn constant(iv: Interval, inputs: usize) -> AbsValue {
        AbsValue {
            iv,
            mono: vec![Mono::Const; inputs],
        }
    }

    /// The tracked input at `index` itself: identity direction there,
    /// constant elsewhere.
    #[must_use]
    pub fn input(iv: Interval, index: usize, inputs: usize) -> AbsValue {
        let mut mono = vec![Mono::Const; inputs];
        mono[index] = Mono::Inc;
        AbsValue { iv, mono }
    }

    /// Snaps a provably single-valued result to `Const` in every
    /// direction — a point can't move.
    #[must_use]
    pub fn normalized(mut self) -> AbsValue {
        if self.iv.is_point() {
            for m in &mut self.mono {
                *m = Mono::Const;
            }
        }
        self
    }

    /// True when the value provably ignores every tracked input.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.mono.iter().all(|m| *m == Mono::Const)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos() -> Interval {
        Interval::new(1.0, 5.0)
    }

    #[test]
    fn product_of_increasing_positives_is_increasing() {
        assert_eq!(mul(Mono::Inc, &pos(), Mono::Inc, &pos()), Mono::Inc);
    }

    #[test]
    fn product_with_mixed_sign_operand_is_unknown() {
        let mixed = Interval::new(-1.0, 1.0);
        assert_eq!(mul(Mono::Inc, &mixed, Mono::Inc, &pos()), Mono::Unknown);
    }

    #[test]
    fn quotient_by_increasing_positive_denominator_decreases() {
        assert_eq!(div(Mono::Const, &pos(), Mono::Inc, &pos()), Mono::Dec);
    }

    #[test]
    fn square_of_nonnegative_increasing_is_increasing() {
        assert_eq!(
            pow(
                Mono::Inc,
                &Interval::new(0.0, 3.0),
                Mono::Const,
                &Interval::point(2.0)
            ),
            Mono::Inc
        );
    }

    #[test]
    fn join_requires_agreement() {
        assert_eq!(Mono::Inc.join(Mono::Inc), Mono::Inc);
        assert_eq!(Mono::Inc.join(Mono::Dec), Mono::Unknown);
        assert_eq!(Mono::Inc.join(Mono::Const), Mono::Inc);
    }

    #[test]
    fn point_normalizes_to_const() {
        let v = AbsValue {
            iv: Interval::point(3.0),
            mono: vec![Mono::Inc, Mono::Unknown],
        }
        .normalized();
        assert!(v.is_constant());
    }
}
