//! The interval abstract domain.
//!
//! An [`Interval`] describes the set of `f64` values a formula can
//! evaluate to: a closed numeric range `[lo, hi]` (endpoints may be
//! infinite) plus a flag recording whether `NaN` is also reachable.
//! Every transfer function here *over-approximates* the corresponding
//! concrete operation in `powerplay-expr` (`apply_binary` /
//! `apply_function`): if `x ∈ A` and `y ∈ B` then `op(x, y) ∈
//! op#(A, B)`. That containment is the soundness contract the
//! property tests in this crate hammer.
//!
//! Two IEEE-754 facts keep the endpoint arithmetic honest without a
//! rounding-mode dance:
//!
//! * Round-to-nearest is *monotone*, so for the algebraic operations
//!   (`+ - * / %`) evaluating the operation at interval endpoints
//!   yields endpoints that bound every interior result — no outward
//!   rounding needed.
//! * The libm transcendentals (`exp`, `ln`, `log10`, `log2`, `powf`,
//!   `hypot`) are *not* guaranteed correctly rounded or monotone, so
//!   their endpoint results are widened outward by a few ulps
//!   ([`ULP_SLOP`]) before use. `sqrt` is IEEE-exact and needs none.
//!
//! Signed zeros are deliberately ignored: `-0.0 == 0.0` numerically,
//! and every containment check here compares numerically, so an
//! interval endpoint of either zero covers both. The one place sign
//! of zero changes a *result* class (division) is handled by treating
//! any zero-containing denominator pessimistically.

/// How many ulps endpoint results of non-correctly-rounded libm calls
/// are widened outward. glibc's worst published errors for these
/// functions are ≤ 2 ulp; 4 leaves margin for other libms.
const ULP_SLOP: u32 = 4;

/// A set of `f64` values: the closed range `[lo, hi]` (empty when
/// `lo > hi`) unioned with `{NaN}` when `nan` is set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Numeric lower bound (may be `-inf`; `+inf` when the numeric
    /// part is empty).
    pub lo: f64,
    /// Numeric upper bound (may be `+inf`; `-inf` when the numeric
    /// part is empty).
    pub hi: f64,
    /// Whether `NaN` is a reachable value.
    pub nan: bool,
}

/// The empty numeric range used by [`Interval::BOTTOM`] and
/// [`Interval::NAN_ONLY`].
const EMPTY_LO: f64 = f64::INFINITY;
const EMPTY_HI: f64 = f64::NEG_INFINITY;

impl Interval {
    /// The empty set (no value reachable).
    pub const BOTTOM: Interval = Interval {
        lo: EMPTY_LO,
        hi: EMPTY_HI,
        nan: false,
    };

    /// Only `NaN` is reachable.
    pub const NAN_ONLY: Interval = Interval {
        lo: EMPTY_LO,
        hi: EMPTY_HI,
        nan: true,
    };

    /// Every value, including `NaN`.
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        nan: true,
    };

    /// The single value `v` (or [`Interval::NAN_ONLY`] when `v` is NaN).
    #[must_use]
    pub fn point(v: f64) -> Interval {
        if v.is_nan() {
            Interval::NAN_ONLY
        } else {
            Interval {
                lo: v,
                hi: v,
                nan: false,
            }
        }
    }

    /// The closed numeric range `[lo, hi]` without NaN.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or either endpoint is NaN.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi}]");
        Interval { lo, hi, nan: false }
    }

    /// True when the numeric part is empty (only NaN, or nothing, is
    /// reachable).
    // The negated form deliberately reads a NaN endpoint as empty,
    // should one ever slip in; `lo > hi` would read it as non-empty.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[must_use]
    pub fn is_numeric_empty(&self) -> bool {
        !(self.lo <= self.hi)
    }

    /// True when no value at all is reachable.
    #[must_use]
    pub fn is_bottom(&self) -> bool {
        self.is_numeric_empty() && !self.nan
    }

    /// True when exactly one numeric value is reachable.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi && !self.nan
    }

    /// True when `v` is a member of the set.
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        if v.is_nan() {
            self.nan
        } else {
            self.lo <= v && v <= self.hi
        }
    }

    /// True when zero lies in the numeric range.
    #[must_use]
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && 0.0 <= self.hi
    }

    /// True when either infinity lies in the numeric range.
    #[must_use]
    pub fn has_infinity(&self) -> bool {
        self.lo == f64::NEG_INFINITY || self.hi == f64::INFINITY
    }

    /// True when every reachable value is a finite number (no NaN, no
    /// infinities, numeric part nonempty).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        !self.nan && !self.is_numeric_empty() && self.lo.is_finite() && self.hi.is_finite()
    }

    /// The smallest interval containing both sets.
    #[must_use]
    pub fn union(self, other: Interval) -> Interval {
        let nan = self.nan || other.nan;
        match (self.is_numeric_empty(), other.is_numeric_empty()) {
            (true, true) => Interval {
                nan,
                ..Interval::BOTTOM
            },
            (true, false) => Interval { nan, ..other },
            (false, true) => Interval { nan, ..self },
            (false, false) => Interval {
                lo: self.lo.min(other.lo),
                hi: self.hi.max(other.hi),
                nan,
            },
        }
    }

    /// Intersects with `[lo, hi]` and drops NaN — the shape of "this
    /// value passed the engine's finite-and-nonnegative check".
    #[must_use]
    pub fn clamp_numeric(self, lo: f64, hi: f64) -> Interval {
        Interval {
            lo: self.lo.max(lo),
            hi: self.hi.min(hi),
            nan: false,
        }
    }

    /// Largest absolute numeric value reachable (0 for an empty range).
    #[must_use]
    fn abs_hi(&self) -> f64 {
        if self.is_numeric_empty() {
            0.0
        } else {
            self.lo.abs().max(self.hi.abs())
        }
    }

    /// Widens both endpoints outward by [`ULP_SLOP`] ulps, covering
    /// libm's rounding slack at the endpoint evaluations.
    #[must_use]
    fn widen_ulps(self) -> Interval {
        if self.is_numeric_empty() {
            return self;
        }
        let mut lo = self.lo;
        let mut hi = self.hi;
        for _ in 0..ULP_SLOP {
            lo = lo.next_down();
            hi = hi.next_up();
        }
        Interval {
            lo,
            hi,
            nan: self.nan,
        }
    }
}

/// Collects candidate endpoint values: non-NaN candidates extend the
/// hull, NaN candidates set the nan flag (a NaN produced by endpoint
/// arithmetic — `inf - inf`, `0 * inf`, `inf / inf` — is always a
/// genuinely reachable concrete result, because the endpoints
/// themselves are reachable values).
fn hull(candidates: &[f64], nan: bool) -> Interval {
    let mut lo = EMPTY_LO;
    let mut hi = EMPTY_HI;
    let mut saw_nan = nan;
    for &c in candidates {
        if c.is_nan() {
            saw_nan = true;
        } else {
            lo = lo.min(c);
            hi = hi.max(c);
        }
    }
    if lo > hi {
        Interval {
            nan: saw_nan,
            ..Interval::BOTTOM
        }
    } else {
        Interval {
            lo,
            hi,
            nan: saw_nan,
        }
    }
}

/// True when either operand is bottom — no concrete pair exists, so
/// every operation yields bottom.
fn either_bottom(a: Interval, b: Interval) -> bool {
    a.is_bottom() || b.is_bottom()
}

/// Shared prologue for binary transfers: the result's NaN flag starts
/// from operand NaN flags (NaN propagates through all arithmetic), and
/// a pure-NaN operand empties the numeric part.
fn numeric_pair(a: Interval, b: Interval) -> Option<(Interval, Interval)> {
    if a.is_numeric_empty() || b.is_numeric_empty() {
        None
    } else {
        Some((a, b))
    }
}

/// `x + y`.
#[must_use]
pub fn add(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let nan = a.nan || b.nan;
    match numeric_pair(a, b) {
        None => Interval {
            nan,
            ..Interval::BOTTOM
        },
        Some((a, b)) => hull(&[a.lo + b.lo, a.lo + b.hi, a.hi + b.lo, a.hi + b.hi], nan),
    }
}

/// `x - y`.
#[must_use]
pub fn sub(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let nan = a.nan || b.nan;
    match numeric_pair(a, b) {
        None => Interval {
            nan,
            ..Interval::BOTTOM
        },
        Some((a, b)) => hull(&[a.lo - b.lo, a.lo - b.hi, a.hi - b.lo, a.hi - b.hi], nan),
    }
}

/// `x * y`.
#[must_use]
pub fn mul(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let mut nan = a.nan || b.nan;
    match numeric_pair(a, b) {
        None => Interval {
            nan,
            ..Interval::BOTTOM
        },
        Some((a, b)) => {
            // 0 × ∞ with the zero strictly inside one range and the
            // infinity at the other's end is invisible to the corner
            // scan.
            if (a.contains_zero() && b.has_infinity()) || (b.contains_zero() && a.has_infinity()) {
                nan = true;
            }
            hull(&[a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi], nan)
        }
    }
}

/// `x / y` (IEEE semantics: division by zero yields ±inf, `0/0` and
/// `inf/inf` yield NaN — the expression evaluator never errors here).
#[must_use]
pub fn div(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let nan = a.nan || b.nan;
    match numeric_pair(a, b) {
        None => Interval {
            nan,
            ..Interval::BOTTOM
        },
        Some((a, b)) => {
            if b.contains_zero() {
                // The denominator can be a zero of either sign (the
                // endpoints cannot tell `0.0` from `-0.0`), so the
                // quotient can blow up toward either infinity.
                Interval {
                    lo: f64::NEG_INFINITY,
                    hi: f64::INFINITY,
                    nan: nan || a.contains_zero() || (a.has_infinity() && b.has_infinity()),
                }
            } else {
                hull(&[a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi], nan)
            }
        }
    }
}

/// `x % y` (Rust `%` on floats: `fmod` — result has the sign of `x`
/// and magnitude at most `min(|x|, |y|)`).
#[must_use]
pub fn rem(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let nan = a.nan || b.nan;
    match numeric_pair(a, b) {
        None => Interval {
            nan,
            ..Interval::BOTTOM
        },
        Some((a, b)) => {
            let nan = nan || a.has_infinity() || b.contains_zero();
            let m = a.abs_hi().min(b.abs_hi());
            let lo = if a.lo < 0.0 { -m } else { 0.0 };
            let hi = if a.hi > 0.0 { m } else { 0.0 };
            Interval { lo, hi, nan }
        }
    }
}

/// `x.powf(y)` — both the `^` operator and the `pow` builtin.
#[must_use]
pub fn pow(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    // powf(NaN, 0) == 1 and powf(1, NaN) == 1, so a NaN operand still
    // admits the numeric value 1; folding 1 into the hull whenever a
    // NaN operand is possible over-approximates both special cases.
    let operand_nan = a.nan || b.nan;

    // Constant integer exponent: the common `vdd^2` shape, kept tight.
    if b.is_point() && b.lo.fract() == 0.0 && b.lo.abs() <= 64.0 {
        let k = b.lo;
        let mut out = if a.is_numeric_empty() {
            Interval {
                nan: a.nan,
                ..Interval::BOTTOM
            }
        } else if k == 0.0 {
            // powf(x, 0) == 1 for every x, NaN included.
            return Interval::point(1.0);
        } else if (k as i64) % 2 == 0 {
            // Even powers depend on |x| only; powf(±inf, k) and
            // powf(0, k<0) land on the right infinities.
            let m_lo = if a.contains_zero() {
                0.0
            } else {
                a.lo.abs().min(a.hi.abs())
            };
            let m_hi = a.abs_hi();
            hull(&[m_lo.powf(k), m_hi.powf(k)], a.nan).widen_ulps()
        } else if k > 0.0 {
            // Odd positive powers are monotone over the whole line.
            hull(&[a.lo.powf(k), a.hi.powf(k)], a.nan).widen_ulps()
        } else if a.contains_zero() {
            // Odd negative power across zero: both infinities, with
            // the sign of the zero deciding which — give up precision.
            Interval {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
                nan: a.nan,
            }
        } else {
            // Odd negative power, sign-definite base: monotone
            // (decreasing) on the base's sign half.
            hull(&[a.lo.powf(k), a.hi.powf(k)], a.nan).widen_ulps()
        };
        if operand_nan {
            out = out.union(Interval::point(1.0));
            out.nan = true;
        }
        return out;
    }

    let mut out = if a.is_numeric_empty() || b.is_numeric_empty() {
        Interval {
            nan: a.nan || b.nan,
            ..Interval::BOTTOM
        }
    } else if a.lo >= 0.0 {
        // x^y = e^(y·ln x) on x ≥ 0: extremes over a box are at the
        // corners. powf never returns NaN for x ≥ 0, and always ≥ 0.
        let mut h = hull(
            &[
                a.lo.powf(b.lo),
                a.lo.powf(b.hi),
                a.hi.powf(b.lo),
                a.hi.powf(b.hi),
                1.0, // powf(x, 0) == 1: covers a zero interior to b
            ],
            false,
        )
        .widen_ulps();
        h.lo = h.lo.max(0.0);
        h
    } else if a.hi < 0.0 && b.is_point() && b.lo.fract() != 0.0 && b.lo.is_finite() {
        // Strictly negative base, provably non-integer exponent:
        // powf is NaN everywhere.
        Interval::NAN_ONLY
    } else {
        // Base may be negative with a varying exponent: integers in
        // the exponent range hit ±|x|^y, non-integers hit NaN.
        Interval::TOP
    };
    if operand_nan {
        out = out.union(Interval::point(1.0));
        out.nan = true;
    }
    out
}

/// Comparison outcomes as the 0/1 indicator interval the evaluator
/// produces.
fn indicator(can_false: bool, can_true: bool) -> Interval {
    match (can_false, can_true) {
        (false, false) => Interval::BOTTOM,
        (true, false) => Interval::point(0.0),
        (false, true) => Interval::point(1.0),
        (true, true) => Interval::new(0.0, 1.0),
    }
}

/// The six comparison operators. NaN compares false with everything
/// (which makes `!=` true).
#[must_use]
pub fn compare(op: CompareOp, a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let nan_pair = a.nan || b.nan;
    let nums = !a.is_numeric_empty() && !b.is_numeric_empty();
    let (can_true, can_false) = match op {
        CompareOp::Lt => (nums && a.lo < b.hi, (nums && a.hi >= b.lo) || nan_pair),
        CompareOp::Le => (nums && a.lo <= b.hi, (nums && a.hi > b.lo) || nan_pair),
        CompareOp::Gt => (nums && a.hi > b.lo, (nums && a.lo <= b.hi) || nan_pair),
        CompareOp::Ge => (nums && a.hi >= b.lo, (nums && a.lo < b.hi) || nan_pair),
        CompareOp::Eq => (
            nums && a.lo <= b.hi && b.lo <= a.hi,
            (nums && !(a.is_point() && b.is_point() && a.lo == b.lo)) || nan_pair,
        ),
        CompareOp::Ne => (
            (nums && !(a.is_point() && b.is_point() && a.lo == b.lo)) || nan_pair,
            nums && a.lo <= b.hi && b.lo <= a.hi,
        ),
    };
    indicator(can_false, can_true)
}

/// Which comparison [`compare`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// `-x`.
#[must_use]
pub fn neg(a: Interval) -> Interval {
    if a.is_numeric_empty() {
        a
    } else {
        Interval {
            lo: -a.hi,
            hi: -a.lo,
            nan: a.nan,
        }
    }
}

/// `x.abs()`.
#[must_use]
pub fn abs(a: Interval) -> Interval {
    if a.is_numeric_empty() {
        return a;
    }
    let lo = if a.contains_zero() {
        0.0
    } else {
        a.lo.abs().min(a.hi.abs())
    };
    Interval {
        lo,
        hi: a.abs_hi(),
        nan: a.nan,
    }
}

/// `x.sqrt()` — IEEE-correctly-rounded and monotone, so endpoints are
/// exact. Negative inputs yield NaN.
#[must_use]
pub fn sqrt(a: Interval) -> Interval {
    if a.is_numeric_empty() {
        return a;
    }
    let nan = a.nan || a.lo < 0.0;
    if a.hi < 0.0 {
        return Interval {
            nan,
            ..Interval::BOTTOM
        };
    }
    Interval {
        lo: a.lo.max(0.0).sqrt(),
        hi: a.hi.sqrt(),
        nan,
    }
}

/// Applies a monotone-nondecreasing libm function at the endpoints and
/// widens for rounding slack.
fn monotone_libm(a: Interval, f: impl Fn(f64) -> f64) -> Interval {
    Interval {
        lo: f(a.lo),
        hi: f(a.hi),
        nan: a.nan,
    }
    .widen_ulps()
}

/// `x.exp()`.
#[must_use]
pub fn exp(a: Interval) -> Interval {
    if a.is_numeric_empty() {
        return a;
    }
    let mut out = monotone_libm(a, f64::exp);
    out.lo = out.lo.max(0.0);
    out
}

/// `ln`/`log10`/`log2`: monotone on `[0, ∞)`, `-inf` at zero, NaN on
/// negatives.
fn log_like(a: Interval, f: impl Fn(f64) -> f64) -> Interval {
    if a.is_numeric_empty() {
        return a;
    }
    let nan = a.nan || a.lo < 0.0;
    if a.hi < 0.0 {
        return Interval {
            nan,
            ..Interval::BOTTOM
        };
    }
    let clamped = Interval {
        lo: a.lo.max(0.0),
        hi: a.hi,
        nan: false,
    };
    let mut out = monotone_libm(clamped, f);
    out.nan = nan;
    out
}

/// `x.ln()`.
#[must_use]
pub fn ln(a: Interval) -> Interval {
    log_like(a, f64::ln)
}

/// `x.log10()`.
#[must_use]
pub fn log10(a: Interval) -> Interval {
    log_like(a, f64::log10)
}

/// `x.log2()`.
#[must_use]
pub fn log2(a: Interval) -> Interval {
    log_like(a, f64::log2)
}

/// `x.floor()` — exact and monotone.
#[must_use]
pub fn floor(a: Interval) -> Interval {
    if a.is_numeric_empty() {
        return a;
    }
    Interval {
        lo: a.lo.floor(),
        hi: a.hi.floor(),
        nan: a.nan,
    }
}

/// `x.ceil()` — exact and monotone.
#[must_use]
pub fn ceil(a: Interval) -> Interval {
    if a.is_numeric_empty() {
        return a;
    }
    Interval {
        lo: a.lo.ceil(),
        hi: a.hi.ceil(),
        nan: a.nan,
    }
}

/// `x.round()` — exact and monotone (half away from zero).
#[must_use]
pub fn round(a: Interval) -> Interval {
    if a.is_numeric_empty() {
        return a;
    }
    Interval {
        lo: a.lo.round(),
        hi: a.hi.round(),
        nan: a.nan,
    }
}

/// `f64::min(x, y)`: ignores a NaN operand (returns the other), NaN
/// only when both are NaN.
#[must_use]
pub fn min(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let mut out = match numeric_pair(a, b) {
        Some((a, b)) => Interval {
            lo: a.lo.min(b.lo),
            hi: a.hi.min(b.hi),
            nan: false,
        },
        None => Interval::BOTTOM,
    };
    // When one side may be NaN, min returns the other side verbatim.
    if a.nan {
        out = out.union(Interval { nan: false, ..b });
    }
    if b.nan {
        out = out.union(Interval { nan: false, ..a });
    }
    out.nan = a.nan && b.nan;
    out
}

/// `f64::max(x, y)`: same NaN behaviour as [`min`].
#[must_use]
pub fn max(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let mut out = match numeric_pair(a, b) {
        Some((a, b)) => Interval {
            lo: a.lo.max(b.lo),
            hi: a.hi.max(b.hi),
            nan: false,
        },
        None => Interval::BOTTOM,
    };
    if a.nan {
        out = out.union(Interval { nan: false, ..b });
    }
    if b.nan {
        out = out.union(Interval { nan: false, ..a });
    }
    out.nan = a.nan && b.nan;
    out
}

/// `x.hypot(y)`: `√(x² + y²)`, monotone in each magnitude. Infinite
/// operands dominate NaN ones (`hypot(inf, NaN) == inf`), but the NaN
/// flag is kept pessimistic.
#[must_use]
pub fn hypot(a: Interval, b: Interval) -> Interval {
    if either_bottom(a, b) {
        return Interval::BOTTOM;
    }
    let nan = a.nan || b.nan;
    match numeric_pair(a, b) {
        None => {
            // One side pure NaN: hypot(NaN, ±inf) is still inf.
            let other = if a.is_numeric_empty() { b } else { a };
            if !other.is_numeric_empty() && other.has_infinity() {
                Interval {
                    lo: f64::INFINITY,
                    hi: f64::INFINITY,
                    nan,
                }
            } else {
                Interval {
                    nan,
                    ..Interval::BOTTOM
                }
            }
        }
        Some((a, b)) => {
            let ma = abs(Interval { nan: false, ..a });
            let mb = abs(Interval { nan: false, ..b });
            Interval {
                lo: ma.lo.hypot(mb.lo),
                hi: ma.hi.hypot(mb.hi),
                nan,
            }
            .widen_ulps()
        }
    }
}

/// Truthiness of an `if` condition (`c != 0.0`; NaN is truthy).
/// Returns `(can_take_then, can_take_else)`.
#[must_use]
pub fn condition_outcomes(c: Interval) -> (bool, bool) {
    let can_true = c.nan || !(c.is_numeric_empty() || c == Interval::point(0.0));
    let can_false = c.contains_zero();
    (can_true, can_false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic_is_exact() {
        let a = Interval::point(1.5);
        let b = Interval::point(2.25);
        assert_eq!(add(a, b), Interval::point(3.75));
        assert_eq!(mul(a, b), Interval::point(1.5 * 2.25));
        assert_eq!(div(a, b), Interval::point(1.5 / 2.25));
    }

    #[test]
    fn division_by_zero_containing_interval_is_wide_and_nan_aware() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 1.0);
        let q = div(a, b);
        assert_eq!(q.lo, f64::NEG_INFINITY);
        assert_eq!(q.hi, f64::INFINITY);
        assert!(!q.nan, "numerator excludes zero");
        let q = div(Interval::new(0.0, 2.0), b);
        assert!(q.nan, "0/0 reachable");
    }

    #[test]
    fn division_by_negative_zero_endpoint_covers_both_infinities() {
        // [−3, 0] as a denominator admits both 0.0 and −0.0.
        let q = div(Interval::point(1.0), Interval::new(-3.0, 0.0));
        assert!(q.contains(f64::NEG_INFINITY));
        assert!(q.contains(f64::INFINITY));
        assert!(q.contains(1.0 / -0.5));
    }

    #[test]
    fn mul_zero_times_infinity_sets_nan() {
        let q = mul(Interval::new(-1.0, 1.0), Interval::point(f64::INFINITY));
        assert!(q.nan);
        assert!(q.contains(f64::INFINITY));
        assert!(q.contains(f64::NEG_INFINITY));
    }

    #[test]
    fn min_ignores_one_sided_nan() {
        let a = Interval {
            lo: 1.0,
            hi: 2.0,
            nan: true,
        };
        let b = Interval::new(5.0, 6.0);
        let m = min(a, b);
        // x NaN → min(NaN, y) = y ∈ [5, 6]; x numeric → min ∈ [1, 2].
        assert!(m.contains(5.5));
        assert!(m.contains(1.0));
        assert!(!m.nan);
    }

    #[test]
    fn pow_constant_even_exponent_is_tight() {
        let q = pow(Interval::new(-2.0, 3.0), Interval::point(2.0));
        assert!(q.lo <= 0.0 && q.lo >= -1e-300);
        assert!(q.contains(9.0));
        assert!(q.contains(4.0));
        assert!(!q.nan);
    }

    #[test]
    fn pow_negative_base_fractional_exponent_is_nan() {
        let q = pow(Interval::new(-2.0, -1.0), Interval::point(0.5));
        assert!(q.nan);
        assert!(q.is_numeric_empty());
    }

    #[test]
    fn compare_decides_disjoint_intervals() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(compare(CompareOp::Lt, a, b), Interval::point(1.0));
        assert_eq!(compare(CompareOp::Gt, a, b), Interval::point(0.0));
        let c = Interval::new(0.5, 2.5);
        assert_eq!(compare(CompareOp::Lt, a, c), Interval::new(0.0, 1.0));
    }

    #[test]
    fn nan_compares_false_except_ne() {
        let a = Interval::NAN_ONLY;
        let b = Interval::point(1.0);
        assert_eq!(compare(CompareOp::Lt, a, b), Interval::point(0.0));
        assert_eq!(compare(CompareOp::Eq, a, b), Interval::point(0.0));
        assert_eq!(compare(CompareOp::Ne, a, b), Interval::point(1.0));
    }

    #[test]
    fn sqrt_of_mixed_sign_keeps_numeric_part_and_flags_nan() {
        let q = sqrt(Interval::new(-4.0, 9.0));
        assert!(q.nan);
        assert_eq!(q.lo, 0.0);
        assert_eq!(q.hi, 3.0);
    }

    #[test]
    fn condition_outcomes_match_truthiness() {
        assert_eq!(condition_outcomes(Interval::point(0.0)), (false, true));
        assert_eq!(condition_outcomes(Interval::point(2.0)), (true, false));
        assert_eq!(condition_outcomes(Interval::new(-1.0, 1.0)), (true, true));
        assert_eq!(condition_outcomes(Interval::NAN_ONLY), (true, false));
    }
}
