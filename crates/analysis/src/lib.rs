//! Abstract interpretation over compiled PowerPlay plans.
//!
//! The paper's spreadsheet answers "what *is* the power at this
//! operating point?" one play at a time. This crate answers the
//! complementary static question: "what *can* the power be over a
//! whole region of operating points?" — without replaying a single
//! point. It walks a [`CompiledSheet`](powerplay_sheet::CompiledSheet)
//! in the engine's own evaluation order, carrying an interval (plus
//! NaN-reachability) and a per-input monotonicity direction through
//! every formula, and produces:
//!
//! * **[`SheetBounds`]** — proven per-row and total power intervals,
//!   unit-tagged input ranges, and the inputs power is provably
//!   monotone in;
//! * **diagnostics** — new stable lint codes for possible division by
//!   zero (`W114`), reachable NaN (`W115`), dead branches and rows
//!   (`W116`/`W117`), constant-foldable rows (`W118`), and provably
//!   negative or NaN model values (`E015`/`E016`), rendered through
//!   the existing `powerplay-lint` reporters;
//! * **bound-guided pruning** — [`sweep_constrained`] skips sweep
//!   points a proof puts outside a power window (bit-identical reports
//!   on the survivors), and [`min_vdd_meeting_timing_seeded`] narrows
//!   the min-supply bisection bracket before any concrete replay.
//!
//! Soundness is the load-bearing property: every concrete play whose
//! inputs lie inside the declared ranges lands inside the reported
//! intervals. `tests/soundness.rs` property-checks this against
//! randomly generated sheets; the interval transfer functions widen
//! libm endpoint evaluations by a few ulps so not-correctly-rounded
//! transcendentals cannot leak a concrete value past an endpoint.
//!
//! ```
//! use powerplay_analysis::{analyze_with_ranges, Interval};
//! use powerplay_library::builtin::ucb_library;
//! use powerplay_sheet::{CompiledSheet, Sheet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = ucb_library();
//! let mut sheet = Sheet::new("demo");
//! sheet.set_global("vdd", "1.5")?;
//! sheet.set_global("f", "2MHz")?;
//! sheet.add_element_row("Datapath", "ucb/multiplier", [("bw_a", "8"), ("bw_b", "8")])?;
//! let plan = CompiledSheet::compile(&sheet, &lib);
//!
//! // Prove bounds over a supply range without replaying.
//! let ranges = vec![("vdd".to_string(), Interval::new(1.0, 3.3))];
//! let bounds = analyze_with_ranges(&plan, &ranges)?;
//! let concrete = plan.play_with(&[("vdd", 2.0)])?;
//! assert!(bounds.total_power.contains(concrete.total_power().value()));
//! assert!(bounds.monotone.iter().any(|m| m.name == "vdd"));
//! # Ok(())
//! # }
//! ```

pub mod analyzer;
pub mod bounds;
pub mod interval;
pub mod mono;
pub mod prune;

pub use analyzer::{analyze, analyze_with_ranges};
pub use bounds::{Direction, InputBound, MonotoneInput, RowBounds, SheetBounds};
pub use interval::{CompareOp, Interval};
pub use mono::{AbsValue, Mono};
pub use prune::{
    min_vdd_meeting_timing_seeded, sweep_constrained, ConstrainedSweep, PointOutcome,
    PowerConstraint,
};
