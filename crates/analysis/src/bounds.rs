//! The `SheetBounds` artifact: what an analysis proves about a plan.

use powerplay_json::Json;
use powerplay_lint::LintReport;
use powerplay_units::dim::Dim;
use powerplay_units::format;

use crate::interval::Interval;

/// One tracked input: its analyzed range and unit dimension.
#[derive(Debug, Clone)]
pub struct InputBound {
    /// Global (or appended override) name.
    pub name: String,
    /// The range the analysis covered.
    pub range: Interval,
    /// Unit dimension, when the naming convention or formula settles it.
    pub dim: Option<Dim>,
}

/// Proven bounds for one top-level row.
#[derive(Debug, Clone)]
pub struct RowBounds {
    /// Row display name.
    pub name: String,
    /// The `P_<ident>` reference identifier.
    pub ident: String,
    /// Proven power interval, watts.
    pub power: Interval,
    /// Proven area interval, when the row models area.
    pub area: Option<Interval>,
    /// Proven delay interval, when the row models delay.
    pub delay: Option<Interval>,
    /// The row's access-rate interval, when `f` is in scope.
    pub rate: Option<Interval>,
    /// Power is a single provable value over the analyzed ranges.
    pub constant: bool,
    /// Power is provably exactly zero.
    pub dead: bool,
}

/// Direction of total power with respect to one input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Provably non-decreasing.
    Increasing,
    /// Provably non-increasing.
    Decreasing,
    /// Provably independent.
    Constant,
}

impl Direction {
    /// Stable lower-case identifier used in JSON and text output.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Direction::Increasing => "increasing",
            Direction::Decreasing => "decreasing",
            Direction::Constant => "constant",
        }
    }
}

/// An input total power is provably monotone in.
#[derive(Debug, Clone)]
pub struct MonotoneInput {
    /// The input's name.
    pub name: String,
    /// Proven direction.
    pub direction: Direction,
}

/// Everything one analysis run proves about a compiled plan.
#[derive(Debug, Clone)]
pub struct SheetBounds {
    /// The analyzed sheet's name.
    pub name: String,
    /// Tracked inputs with their ranges.
    pub inputs: Vec<InputBound>,
    /// Per-row bounds, in declaration order.
    pub rows: Vec<RowBounds>,
    /// Proven total-power interval, watts.
    pub total_power: Interval,
    /// Inputs with a proven monotone direction for total power.
    pub monotone: Vec<MonotoneInput>,
    /// Reachability and value diagnostics found along the way.
    pub diagnostics: LintReport,
    /// Whether some valuation inside the ranges can make a concrete
    /// play fail (bad model value, missing operating point on a
    /// reachable path). Pruning decisions must refuse when set.
    pub may_fail: bool,
}

impl SheetBounds {
    /// True when the analysis produced error-severity diagnostics.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.has_errors()
    }

    /// JSON shape for the CLI's `--json` and the web analyze endpoint.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object([
            ("sheet", Json::String(self.name.clone())),
            (
                "inputs",
                Json::Array(
                    self.inputs
                        .iter()
                        .map(|i| {
                            Json::object([
                                ("name", Json::String(i.name.clone())),
                                ("range", interval_json(&i.range)),
                                (
                                    "dim",
                                    match &i.dim {
                                        Some(d) => Json::String(d.to_string()),
                                        None => Json::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::object([
                                ("name", Json::String(r.name.clone())),
                                ("ident", Json::String(r.ident.clone())),
                                ("power", interval_json(&r.power)),
                                ("area", r.area.as_ref().map_or(Json::Null, interval_json)),
                                ("delay", r.delay.as_ref().map_or(Json::Null, interval_json)),
                                ("constant", Json::Bool(r.constant)),
                                ("dead", Json::Bool(r.dead)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_power", interval_json(&self.total_power)),
            (
                "monotone",
                Json::Array(
                    self.monotone
                        .iter()
                        .map(|m| {
                            Json::object([
                                ("name", Json::String(m.name.clone())),
                                ("direction", Json::String(m.direction.id().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("may_fail", Json::Bool(self.may_fail)),
            ("diagnostics", self.diagnostics.to_json()),
        ])
    }

    /// The terminal rendering: a bounds table in the same spirit as the
    /// play report's spreadsheet page.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Bounds for sheet `{}`\n", self.name));
        if !self.inputs.is_empty() {
            out.push_str("  inputs:\n");
            for i in &self.inputs {
                let dim = i
                    .dim
                    .as_ref()
                    .map(|d| format!(" [{d}]"))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "    {:<16} {}{dim}\n",
                    i.name,
                    render_interval(&i.range)
                ));
            }
        }
        out.push_str("  rows:\n");
        for r in &self.rows {
            let mut marks = String::new();
            if r.dead {
                marks.push_str(" (dead)");
            } else if r.constant {
                marks.push_str(" (constant)");
            }
            out.push_str(&format!(
                "    {:<20} P ∈ {}{marks}\n",
                r.name,
                render_power_interval(&r.power)
            ));
        }
        out.push_str(&format!(
            "  total power ∈ {}\n",
            render_power_interval(&self.total_power)
        ));
        if !self.monotone.is_empty() {
            let dirs: Vec<String> = self
                .monotone
                .iter()
                .map(|m| format!("{} ({})", m.name, m.direction.id()))
                .collect();
            out.push_str(&format!("  monotone in: {}\n", dirs.join(", ")));
        }
        if self.may_fail {
            out.push_str("  note: some valuations in range can fail to evaluate\n");
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
            out.push_str(&self.diagnostics.render_text());
        }
        out
    }
}

/// Interval as JSON. JSON has no infinities or NaN, so unbounded
/// endpoints render as `null` and NaN-reachability is its own flag.
fn interval_json(iv: &Interval) -> Json {
    let endpoint = |v: f64| {
        if v.is_finite() {
            Json::Number(v)
        } else {
            Json::Null
        }
    };
    if iv.is_numeric_empty() {
        return Json::object([
            ("empty", Json::Bool(true)),
            ("nan_possible", Json::Bool(iv.nan)),
        ]);
    }
    Json::object([
        ("lo", endpoint(iv.lo)),
        ("hi", endpoint(iv.hi)),
        ("nan_possible", Json::Bool(iv.nan)),
    ])
}

fn render_interval(iv: &Interval) -> String {
    if iv.is_numeric_empty() {
        return if iv.nan {
            "{NaN}".to_string()
        } else {
            "∅".to_string()
        };
    }
    let nan = if iv.nan { " ∪ {NaN}" } else { "" };
    if iv.is_point() {
        format!("{{{}}}", iv.lo)
    } else {
        format!("[{}, {}]{nan}", iv.lo, iv.hi)
    }
}

/// Power intervals render through the unit formatter (`1.24 mW`).
fn render_power_interval(iv: &Interval) -> String {
    if iv.is_numeric_empty() {
        return if iv.nan {
            "{NaN}".to_string()
        } else {
            "∅".to_string()
        };
    }
    let fmt = |v: f64| {
        if v.is_finite() {
            format::eng(v, "W")
        } else {
            format!("{v}")
        }
    };
    let nan = if iv.nan { " ∪ {NaN}" } else { "" };
    if iv.is_point() {
        fmt(iv.lo)
    } else {
        format!("[{}, {}]{nan}", fmt(iv.lo), fmt(iv.hi))
    }
}
