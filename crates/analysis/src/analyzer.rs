//! The abstract interpreter over compiled plans.
//!
//! [`analyze`] walks a [`CompiledSheet`] in exactly the order a
//! concrete play would — globals in dependency order, then rows in the
//! compiled toposort, publishing `P_<ident>`/`A_<ident>` into a power
//! layer — but carries an [`AbsValue`] (interval + per-input
//! monotonicity) through every formula instead of an `f64`. The result
//! is a [`SheetBounds`]: proven per-row and total power intervals,
//! reachability diagnostics, and the list of inputs power is provably
//! monotone in.
//!
//! Soundness contract: for any concrete play of the same plan whose
//! (overridden) inputs lie inside the declared ranges, every reported
//! value lies inside the corresponding interval. The property tests in
//! `tests/soundness.rs` check exactly that against random sheets.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use powerplay_expr::{BinaryOp, Builtin, EvalError, Expr, UnaryOp};
use powerplay_library::{ElementModel, EvaluateElementError, LibraryElement};
use powerplay_lint::{codes, convention_dim, infer_dims, Diagnostic, DimInfo, LintReport};
use powerplay_sheet::{toposort, CompiledSheet, EvaluateSheetError, RowKindView, RowView};
use powerplay_telemetry::{Counter, Histogram};

use crate::bounds::{Direction, InputBound, MonotoneInput, RowBounds, SheetBounds};
use crate::interval::{self, CompareOp, Interval};
use crate::mono::{self, AbsValue, Mono};

/// Metrics for analysis runs (`powerplay_analysis_*`).
pub(crate) struct AnalysisMetrics {
    pub runs_total: Counter,
    pub seconds: Histogram,
    pub sweep_points_pruned_total: Counter,
    pub sweep_points_played_total: Counter,
    pub prunes_total: Counter,
    pub minvdd_narrowed_total: Counter,
}

pub(crate) fn analysis_metrics() -> &'static AnalysisMetrics {
    static METRICS: OnceLock<AnalysisMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = powerplay_telemetry::global();
        AnalysisMetrics {
            runs_total: g.counter(
                "powerplay_analysis_runs_total",
                "Abstract-interpretation analyses of compiled plans",
            ),
            seconds: g.histogram(
                "powerplay_analysis_seconds",
                "Time per plan analysis (interval + monotonicity pass)",
            ),
            sweep_points_pruned_total: g.counter(
                "powerplay_analysis_sweep_points_pruned_total",
                "Sweep points skipped because bounds proved them outside the constraint",
            ),
            sweep_points_played_total: g.counter(
                "powerplay_analysis_sweep_points_played_total",
                "Sweep points actually replayed after bound-guided pruning",
            ),
            prunes_total: g.counter(
                "powerplay_analysis_prunes_total",
                "Constrained sweeps that pruned at least one point",
            ),
            minvdd_narrowed_total: g.counter(
                "powerplay_analysis_minvdd_narrowed_total",
                "Min-vdd searches whose bracket was narrowed by proven bounds",
            ),
        }
    })
}

/// A lexically-layered abstract environment mirroring the engine's
/// `Scope` chain.
struct Env<'p> {
    parent: Option<&'p Env<'p>>,
    vars: BTreeMap<String, AbsValue>,
}

impl<'p> Env<'p> {
    fn root() -> Env<'static> {
        Env {
            parent: None,
            vars: BTreeMap::new(),
        }
    }

    fn child(&self) -> Env<'_> {
        Env {
            parent: Some(self),
            vars: BTreeMap::new(),
        }
    }

    fn get(&self, name: &str) -> Option<&AbsValue> {
        match self.vars.get(name) {
            Some(v) => Some(v),
            None => self.parent.and_then(|p| p.get(name)),
        }
    }

    fn set(&mut self, name: &str, val: AbsValue) {
        self.vars.insert(name.to_string(), val);
    }
}

/// Where diagnostics from the current walk land. `enabled` is dropped
/// inside provably dead branches: their computations can't reach the
/// result, so warnings there would be noise.
struct Sink<'a> {
    report: &'a mut LintReport,
    enabled: bool,
    /// Set when any formula can fail a concrete evaluation (bad value,
    /// missing operating point on a reachable path, …).
    may_fail: &'a mut bool,
}

impl Sink<'_> {
    fn push(&mut self, d: Diagnostic) {
        if self.enabled {
            self.report.push(d);
        }
    }
}

/// Abstract evaluation of one expression. Mirrors `Expr::eval`
/// case-for-case; an `Err` here means a concrete evaluation fails for
/// *every* valuation (unknown variable/function/arity are
/// value-independent).
fn abs_eval(
    expr: &Expr,
    env: &Env<'_>,
    ninputs: usize,
    path: &str,
    sink: &mut Sink<'_>,
) -> Result<AbsValue, EvalError> {
    match expr {
        Expr::Number(v) => Ok(AbsValue::constant(Interval::point(*v), ninputs)),
        Expr::Variable(name) => match env.get(name) {
            Some(v) => Ok(v.clone()),
            None => Err(EvalError::UnknownVariable(name.clone())),
        },
        Expr::Unary(UnaryOp::Neg, inner) => {
            let v = abs_eval(inner, env, ninputs, path, sink)?;
            Ok(AbsValue {
                iv: interval::neg(v.iv),
                mono: v.mono.iter().map(|m| m.flip()).collect(),
            })
        }
        Expr::Binary(op, lhs, rhs) => {
            let a = abs_eval(lhs, env, ninputs, path, sink)?;
            let b = abs_eval(rhs, env, ninputs, path, sink)?;
            if *op == BinaryOp::Div && !b.iv.is_bottom() && b.iv.contains_zero() {
                sink.push(
                    Diagnostic::warning(
                        codes::POSSIBLE_DIV_ZERO,
                        path,
                        format!(
                            "denominator of `{}` can be zero (range [{}, {}])",
                            rhs, b.iv.lo, b.iv.hi
                        ),
                    )
                    .with_suggestion("guard the denominator or tighten the input range"),
                );
            }
            Ok(apply_binary_abs(*op, &a, &b))
        }
        Expr::Call(name, args) => {
            let Some(builtin) = Builtin::lookup(name) else {
                return Err(EvalError::UnknownFunction(name.clone()));
            };
            let expected = builtin.arity();
            if args.len() != expected {
                return Err(EvalError::WrongArity {
                    function: name.clone(),
                    expected,
                    found: args.len(),
                });
            }
            if builtin == Builtin::If {
                return abs_if(args, env, ninputs, path, sink);
            }
            let vals: Vec<AbsValue> = args
                .iter()
                .map(|a| abs_eval(a, env, ninputs, path, sink))
                .collect::<Result<_, _>>()?;
            Ok(apply_function_abs(builtin, &vals, path, sink))
        }
    }
}

/// `if(c, t, e)`: the concrete evaluator computes *all three*
/// arguments eagerly and then selects, so both branches must still be
/// walked for value-independent errors — but only reachable branches
/// contribute values or diagnostics.
fn abs_if(
    args: &[Expr],
    env: &Env<'_>,
    ninputs: usize,
    path: &str,
    sink: &mut Sink<'_>,
) -> Result<AbsValue, EvalError> {
    let c = abs_eval(&args[0], env, ninputs, path, sink)?;
    let (can_then, can_else) = interval::condition_outcomes(c.iv);
    let was_enabled = sink.enabled;

    sink.enabled = was_enabled && can_then;
    let t = abs_eval(&args[1], env, ninputs, path, sink);
    sink.enabled = was_enabled && can_else;
    let e = abs_eval(&args[2], env, ninputs, path, sink);
    sink.enabled = was_enabled;
    let (t, e) = (t?, e?);

    match (can_then, can_else) {
        (true, false) | (false, true) => {
            let (dead, live) = if can_then { ("else", t) } else { ("then", e) };
            sink.push(
                Diagnostic::warning(
                    codes::DEAD_BRANCH,
                    path,
                    format!(
                        "`if` condition is provably {}: the {dead} branch is unreachable",
                        if can_then { "true" } else { "false" }
                    ),
                )
                .with_suggestion("replace the `if` with the live branch"),
            );
            Ok(live)
        }
        (false, false) => Ok(AbsValue::constant(Interval::BOTTOM, ninputs)),
        (true, true) => Ok(AbsValue {
            iv: t.iv.union(e.iv),
            mono: t
                .mono
                .iter()
                .zip(&e.mono)
                .enumerate()
                .map(|(k, (mt, me))| mono::if_branches(c.mono[k], true, true, *mt, *me))
                .collect(),
        }),
    }
}

/// Zips two mono vectors through a pointwise rule.
fn zip_mono(a: &AbsValue, b: &AbsValue, f: impl Fn(Mono, Mono) -> Mono) -> Vec<Mono> {
    a.mono.iter().zip(&b.mono).map(|(x, y)| f(*x, *y)).collect()
}

/// Zips through an interval-aware rule.
fn zip_mono_iv(
    a: &AbsValue,
    b: &AbsValue,
    f: impl Fn(Mono, &Interval, Mono, &Interval) -> Mono,
) -> Vec<Mono> {
    a.mono
        .iter()
        .zip(&b.mono)
        .map(|(x, y)| f(*x, &a.iv, *y, &b.iv))
        .collect()
}

/// The abstract counterpart of `apply_binary`.
fn apply_binary_abs(op: BinaryOp, a: &AbsValue, b: &AbsValue) -> AbsValue {
    match op {
        BinaryOp::Add => AbsValue {
            iv: interval::add(a.iv, b.iv),
            mono: zip_mono(a, b, mono::add),
        },
        BinaryOp::Sub => AbsValue {
            iv: interval::sub(a.iv, b.iv),
            mono: zip_mono(a, b, mono::sub),
        },
        BinaryOp::Mul => AbsValue {
            iv: interval::mul(a.iv, b.iv),
            mono: zip_mono_iv(a, b, mono::mul),
        },
        BinaryOp::Div => AbsValue {
            iv: interval::div(a.iv, b.iv),
            mono: zip_mono_iv(a, b, mono::div),
        },
        BinaryOp::Rem => AbsValue {
            iv: interval::rem(a.iv, b.iv),
            mono: zip_mono(a, b, mono::opaque),
        },
        BinaryOp::Pow => AbsValue {
            iv: interval::pow(a.iv, b.iv),
            mono: zip_mono_iv(a, b, mono::pow),
        },
        BinaryOp::Lt => cmp_abs(CompareOp::Lt, a, b),
        BinaryOp::Le => cmp_abs(CompareOp::Le, a, b),
        BinaryOp::Gt => cmp_abs(CompareOp::Gt, a, b),
        BinaryOp::Ge => cmp_abs(CompareOp::Ge, a, b),
        BinaryOp::Eq => cmp_abs(CompareOp::Eq, a, b),
        BinaryOp::Ne => cmp_abs(CompareOp::Ne, a, b),
    }
}

fn cmp_abs(op: CompareOp, a: &AbsValue, b: &AbsValue) -> AbsValue {
    AbsValue {
        iv: interval::compare(op, a.iv, b.iv),
        mono: zip_mono(a, b, mono::opaque),
    }
}

/// The abstract counterpart of `apply_function` (sans `if`, handled in
/// [`abs_if`]).
fn apply_function_abs(
    builtin: Builtin,
    vals: &[AbsValue],
    path: &str,
    sink: &mut Sink<'_>,
) -> AbsValue {
    let unary = |iv: fn(Interval) -> Interval, m: &dyn Fn(Mono, &Interval) -> Mono| {
        let a = &vals[0];
        AbsValue {
            iv: iv(a.iv),
            mono: a.mono.iter().map(|x| m(*x, &a.iv)).collect(),
        }
    };
    match builtin {
        Builtin::Abs => unary(interval::abs, &mono::abs),
        Builtin::Sqrt => {
            let out = unary(interval::sqrt, &mono::increasing_on_nonneg);
            nan_domain_warning(out.iv, vals[0].iv, builtin.name(), path, sink);
            out
        }
        Builtin::Exp => unary(interval::exp, &|m, _| mono::increasing(m)),
        Builtin::Ln => {
            let out = unary(interval::ln, &mono::increasing_on_nonneg);
            nan_domain_warning(out.iv, vals[0].iv, builtin.name(), path, sink);
            out
        }
        Builtin::Log10 => {
            let out = unary(interval::log10, &mono::increasing_on_nonneg);
            nan_domain_warning(out.iv, vals[0].iv, builtin.name(), path, sink);
            out
        }
        Builtin::Log2 => {
            let out = unary(interval::log2, &mono::increasing_on_nonneg);
            nan_domain_warning(out.iv, vals[0].iv, builtin.name(), path, sink);
            out
        }
        Builtin::Floor => unary(interval::floor, &|m, _| mono::increasing(m)),
        Builtin::Ceil => unary(interval::ceil, &|m, _| mono::increasing(m)),
        Builtin::Round => unary(interval::round, &|m, _| mono::increasing(m)),
        Builtin::Min => AbsValue {
            iv: interval::min(vals[0].iv, vals[1].iv),
            mono: zip_mono(&vals[0], &vals[1], mono::min_max),
        },
        Builtin::Max => AbsValue {
            iv: interval::max(vals[0].iv, vals[1].iv),
            mono: zip_mono(&vals[0], &vals[1], mono::min_max),
        },
        Builtin::Pow => AbsValue {
            iv: interval::pow(vals[0].iv, vals[1].iv),
            mono: zip_mono_iv(&vals[0], &vals[1], mono::pow),
        },
        Builtin::Hypot => AbsValue {
            iv: interval::hypot(vals[0].iv, vals[1].iv),
            mono: zip_mono_iv(&vals[0], &vals[1], mono::hypot),
        },
        Builtin::If => unreachable!("`if` is handled by abs_if"),
    }
}

/// Flags a newly-NaN-able result from a domain edge (`sqrt`/`ln` of a
/// possibly-negative argument).
fn nan_domain_warning(out: Interval, arg: Interval, func: &str, path: &str, sink: &mut Sink<'_>) {
    if out.nan && !arg.nan {
        sink.push(
            Diagnostic::warning(
                codes::NAN_REACHABLE,
                path,
                format!(
                    "`{func}` argument can be negative (range [{}, {}]): NaN is reachable",
                    arg.lo, arg.hi
                ),
            )
            .with_suggestion("clamp the argument or tighten the input range"),
        );
    }
}

/// Result of analyzing one sheet level (top or nested).
struct LevelResult {
    rows: Vec<RowBounds>,
    total: AbsValue,
    /// Whether any row models area (mirrors `SheetReport::total_area`
    /// returning `Some`).
    has_area: bool,
}

/// Analysis of one row's element model at its parameter environment —
/// the abstract mirror of `LibraryElement::evaluate`.
struct ElementAbs {
    power: AbsValue,
    area: Option<AbsValue>,
    delay: Option<Interval>,
}

/// Evaluates one model formula, applying the engine's
/// finite-and-nonnegative success filter: diagnostics describe the
/// *raw* reachable set, the returned value is conditioned on success
/// (the only evaluations that continue).
fn eval_formula_abs(
    formula: &'static str,
    expr: &Expr,
    env: &Env<'_>,
    ninputs: usize,
    path_prefix: &str,
    row: &str,
    sink: &mut Sink<'_>,
) -> Result<AbsValue, EvaluateSheetError> {
    let path = format!("{path_prefix}model/{formula}");
    let raw = abs_eval(expr, env, ninputs, &path, sink).map_err(|source| {
        EvaluateSheetError::Element {
            row: row.to_string(),
            source: EvaluateElementError::Eval { formula, source },
        }
    })?;

    let iv = raw.iv;
    let numeric_ok = !iv.is_numeric_empty() && iv.lo <= f64::MAX && iv.hi >= 0.0;
    if !numeric_ok {
        // Every reachable value fails the `finite && >= 0` check: the
        // row provably cannot evaluate.
        *sink.may_fail = true;
        let (code, what) = if iv.is_numeric_empty() && iv.nan {
            (codes::PROVABLY_NAN_VALUE, "is always NaN".to_string())
        } else if iv.hi < 0.0 {
            (
                codes::PROVABLY_NEGATIVE_VALUE,
                format!("is provably negative (range [{}, {}])", iv.lo, iv.hi),
            )
        } else {
            (
                codes::PROVABLY_NEGATIVE_VALUE,
                "is provably non-finite".to_string(),
            )
        };
        sink.push(
            Diagnostic::error(code, &path, format!("`{formula}` {what}: every play fails"))
                .with_suggestion("fix the formula or the input ranges it reads"),
        );
        return Ok(AbsValue::constant(Interval::BOTTOM, ninputs));
    }

    if iv.nan {
        *sink.may_fail = true;
        sink.push(
            Diagnostic::warning(
                codes::NAN_REACHABLE,
                &path,
                format!("`{formula}` can evaluate to NaN: those plays fail"),
            )
            .with_suggestion("guard divisions and domain edges in the formula"),
        );
    }
    if iv.lo < 0.0 || iv.hi > f64::MAX {
        // Some (but not all) valuations produce a rejected value.
        *sink.may_fail = true;
    }

    Ok(AbsValue {
        iv: iv.clamp_numeric(0.0, f64::MAX),
        mono: raw.mono,
    })
}

fn v_add(a: &AbsValue, b: &AbsValue) -> AbsValue {
    AbsValue {
        iv: interval::add(a.iv, b.iv),
        mono: zip_mono(a, b, mono::add),
    }
}

fn v_mul(a: &AbsValue, b: &AbsValue) -> AbsValue {
    AbsValue {
        iv: interval::mul(a.iv, b.iv),
        mono: zip_mono_iv(a, b, mono::mul),
    }
}

fn v_union(a: &AbsValue, b: &AbsValue) -> AbsValue {
    AbsValue {
        iv: a.iv.union(b.iv),
        mono: zip_mono(a, b, |x, y| x.join(y)),
    }
}

/// The abstract mirror of `LibraryElement::evaluate` at `env`.
#[allow(clippy::too_many_arguments)]
fn analyze_element(
    element: &LibraryElement,
    env: &Env<'_>,
    ninputs: usize,
    path_prefix: &str,
    row: &str,
    sink: &mut Sink<'_>,
) -> Result<ElementAbs, EvaluateSheetError> {
    let model: &ElementModel = element.model();
    let zero = AbsValue::constant(Interval::point(0.0), ninputs);

    // Switched-capacitance terms, in the concrete push order
    // (cap_full, then cap_partial); energy sums from 0.0 exactly as
    // `PowerComponents::energy_per_op` folds.
    let lookup = |name: &str| env.get(name).cloned();
    let vdd = lookup("vdd");

    let mut energy = zero.clone();
    let has_switched = model.cap_full.is_some() || model.cap_partial.is_some();
    if has_switched && vdd.is_none() {
        // The rate/supply lookup happens after the formulas evaluate,
        // but a missing `vdd` fails every valuation that gets there.
        return Err(EvaluateSheetError::Element {
            row: row.to_string(),
            source: EvaluateElementError::MissingOperatingPoint("vdd"),
        });
    }
    if let Some(e) = &model.cap_full {
        let cap = eval_formula_abs("cap_full", e, env, ninputs, path_prefix, row, sink)?;
        let vdd = vdd.as_ref().expect("checked above");
        // full-rail swing: cap * vdd * vdd, left-associated.
        energy = v_add(&energy, &v_mul(&v_mul(&cap, vdd), vdd));
    }
    if let Some((cap_e, swing_e)) = &model.cap_partial {
        let cap = eval_formula_abs("cap_partial", cap_e, env, ninputs, path_prefix, row, sink)?;
        let swing = eval_formula_abs(
            "cap_partial swing",
            swing_e,
            env,
            ninputs,
            path_prefix,
            row,
            sink,
        )?;
        let vdd = vdd.as_ref().expect("checked above");
        energy = v_add(&energy, &v_mul(&v_mul(&cap, &swing), vdd));
    }

    let static_current = match &model.static_current {
        Some(e) => Some(eval_formula_abs(
            "static_current",
            e,
            env,
            ninputs,
            path_prefix,
            row,
            sink,
        )?),
        None => None,
    };

    // `has_template_terms` is structural for switched caps but
    // *value-dependent* for static current (a current that folds to
    // exactly zero disables the template path, and with it the `vdd`
    // requirement).
    let static_definitely_zero = static_current
        .as_ref()
        .is_none_or(|s| s.iv == Interval::point(0.0));
    let static_possibly_zero = static_current
        .as_ref()
        .is_none_or(|s| s.iv.contains_zero() || s.iv.is_bottom());
    let template_definite = has_switched || !static_possibly_zero;
    let template_possible = has_switched || !static_definitely_zero;

    let freq = lookup("f");
    let static_v = static_current.unwrap_or_else(|| zero.clone());
    let template_power = || -> Result<AbsValue, EvaluateSheetError> {
        let vdd = match &vdd {
            Some(v) => v.clone(),
            None => {
                return Err(EvaluateSheetError::Element {
                    row: row.to_string(),
                    source: EvaluateElementError::MissingOperatingPoint("vdd"),
                })
            }
        };
        let freq = match &freq {
            Some(f) => f.clone(),
            None if !has_switched => zero.clone(),
            None => {
                return Err(EvaluateSheetError::Element {
                    row: row.to_string(),
                    source: EvaluateElementError::MissingOperatingPoint("f"),
                })
            }
        };
        // components.power(op) = energy * freq + vdd * static.
        Ok(v_add(&v_mul(&energy, &freq), &v_mul(&vdd, &static_v)))
    };

    let mut power = zero.clone();
    if template_definite {
        power = v_add(&power, &template_power()?);
    } else if template_possible {
        match template_power() {
            Ok(p) => {
                // Either path can be taken depending on the folded
                // current: union "template active" with "template
                // skipped".
                power = v_union(&v_add(&power, &p), &zero);
            }
            Err(_) => {
                // The template path needs an operating point the scope
                // lacks; only valuations where the current folds to
                // zero survive. Condition on that.
                *sink.may_fail = true;
            }
        }
    }

    let direct = match &model.power_direct {
        Some(e) => Some(eval_formula_abs(
            "power_direct",
            e,
            env,
            ninputs,
            path_prefix,
            row,
            sink,
        )?),
        None => None,
    };
    if let Some(d) = &direct {
        power = v_add(&power, d);
    }

    let area = match &model.area {
        Some(e) => Some(eval_formula_abs(
            "area",
            e,
            env,
            ninputs,
            path_prefix,
            row,
            sink,
        )?),
        None => None,
    };
    let delay = match &model.delay {
        Some(e) => Some(eval_formula_abs("delay", e, env, ninputs, path_prefix, row, sink)?.iv),
        None => None,
    };

    Ok(ElementAbs { power, area, delay })
}

/// Analyzes the rows of one sheet level against `outer` (globals plus
/// any enclosing sub-sheet parameters), mirroring `eval_rows_full`.
fn analyze_rows(
    plan: &CompiledSheet,
    outer: &Env<'_>,
    ninputs: usize,
    path_prefix: &str,
    sink: &mut Sink<'_>,
) -> Result<LevelResult, EvaluateSheetError> {
    let rows = plan.rows_view().map_err(Clone::clone)?;
    let mut power_layer = outer.child();
    let mut out: Vec<Option<RowBounds>> = (0..rows.len()).map(|_| None).collect();
    let mut abs_powers: Vec<Option<AbsValue>> = (0..rows.len()).map(|_| None).collect();
    let mut has_area = false;

    for &i in rows.order() {
        let row = rows.row(i);
        let (bounds, power) = analyze_row(&row, &power_layer, ninputs, path_prefix, sink)?;
        if let Some(power_ref) = row.power_ref() {
            // Publish P_/A_ exactly like `set_row_outputs`.
            power_layer.set(power_ref, power.clone());
            if let (Some(area_ref), Some(area)) = (row.area_ref(), &bounds.area) {
                power_layer.set(
                    area_ref,
                    AbsValue {
                        iv: *area,
                        mono: power.mono.clone(),
                    },
                );
            }
        }
        has_area = has_area || bounds.area.is_some();
        abs_powers[i] = Some(power);
        out[i] = Some(bounds);
    }

    // Total power sums row powers in declaration order, exactly as
    // `SheetReport::total_power`.
    let mut total = AbsValue::constant(Interval::point(0.0), ninputs);
    for p in abs_powers.iter() {
        let p = p.as_ref().expect("every row analyzed");
        total = v_add(&total, p);
    }

    Ok(LevelResult {
        rows: out
            .into_iter()
            .map(|r| r.expect("every row analyzed"))
            .collect(),
        total,
        has_area,
    })
}

/// Analyzes one row (element or nested sub-sheet), mirroring
/// `evaluate_compiled_row`.
fn analyze_row(
    row: &RowView<'_>,
    outer: &Env<'_>,
    ninputs: usize,
    path_prefix: &str,
    sink: &mut Sink<'_>,
) -> Result<(RowBounds, AbsValue), EvaluateSheetError> {
    if let RowKindView::Missing(path) = row.kind() {
        return Err(EvaluateSheetError::UnknownElement {
            row: row.name().to_string(),
            element: path.to_string(),
        });
    }

    let row_path = format!("{path_prefix}rows/{}/", row.name());

    // Defaults seed the parameter scope; bindings shadow them in
    // declaration order and can read earlier ones.
    let mut param_env = outer.child();
    for (name, value) in row.param_defaults() {
        param_env.set(name, AbsValue::constant(Interval::point(value), ninputs));
    }
    for (param, expr) in row.bindings() {
        let path = format!("{row_path}params/{param}");
        let val = abs_eval(expr, &param_env, ninputs, &path, sink).map_err(|source| {
            EvaluateSheetError::Binding {
                row: row.name().to_string(),
                param: param.to_string(),
                source,
            }
        })?;
        param_env.set(param, val);
    }

    let (power, area, delay, rate) = match row.kind() {
        RowKindView::Element(element) => {
            let abs = analyze_element(element, &param_env, ninputs, &row_path, row.name(), sink)?;
            let rate = param_env.get("f").map(|v| v.iv);
            (abs.power, abs.area.map(|a| a.iv), abs.delay, rate)
        }
        RowKindView::SubSheet(sub) => {
            // `play_impl(&param_scope, &[])`: sub globals evaluate in a
            // child of the row's parameter scope, then sub rows.
            let sub_result =
                analyze_nested(sub, &param_env, ninputs, &row_path, sink).map_err(|source| {
                    EvaluateSheetError::Nested {
                        row: row.name().to_string(),
                        source: Box::new(source),
                    }
                })?;
            let area = if sub_result.has_area {
                Some(
                    sub_result
                        .rows
                        .iter()
                        .filter_map(|r| r.area)
                        .fold(Interval::point(0.0), interval::add),
                )
            } else {
                None
            };
            // Sub-sheet rows report no delay/rate at this level
            // (`RowReport::for_subsheet`).
            (sub_result.total, area, None, None)
        }
        RowKindView::Missing(_) => unreachable!("rejected above"),
    };

    let iv = power.iv;
    let dead = iv == Interval::point(0.0);
    let constant = iv.is_point();
    if dead {
        sink.push(
            Diagnostic::warning(
                codes::DEAD_ROW,
                format!("{row_path}power"),
                "row power is provably zero over the analyzed ranges",
            )
            .with_suggestion("remove the row or check its bindings"),
        );
    }

    let bounds = RowBounds {
        name: row.name().to_string(),
        ident: row.ident().to_string(),
        power: iv,
        area,
        delay,
        rate,
        constant,
        dead,
    };
    Ok((bounds, power))
}

/// Analyzes a nested sub-sheet: globals (base plan order) then rows.
fn analyze_nested(
    sub: &CompiledSheet,
    param_env: &Env<'_>,
    ninputs: usize,
    path_prefix: &str,
    sink: &mut Sink<'_>,
) -> Result<LevelResult, EvaluateSheetError> {
    let order = sub.global_order().map_err(Clone::clone)?;
    let globals: Vec<_> = sub.globals_view().collect();
    let mut env = param_env.child();
    for &k in order {
        let g = &globals[k];
        let path = format!("{path_prefix}globals/{}", g.name());
        let val = abs_eval(g.expr(), &env, ninputs, &path, sink).map_err(|source| {
            EvaluateSheetError::Global {
                name: g.name().to_string(),
                source,
            }
        })?;
        env.set(g.name(), val);
    }
    analyze_rows(sub, &env, ninputs, path_prefix, sink)
}

/// Analyzes a compiled plan at its declared operating point (every
/// global at its formula value).
///
/// # Errors
///
/// Exactly the structural/value-independent failures a concrete
/// [`CompiledSheet::play`] would report: unknown elements, circular or
/// unevaluable globals, unknown variables in bindings, missing
/// operating points.
pub fn analyze(plan: &CompiledSheet) -> Result<SheetBounds, EvaluateSheetError> {
    analyze_with_ranges(plan, &[])
}

/// Analyzes a compiled plan with `ranges` overriding globals (or
/// introducing new override variables) as whole intervals.
///
/// Every concrete `play_with` whose override values lie inside the
/// declared ranges is covered by the returned bounds.
///
/// # Errors
///
/// See [`analyze`].
pub fn analyze_with_ranges(
    plan: &CompiledSheet,
    ranges: &[(String, Interval)],
) -> Result<SheetBounds, EvaluateSheetError> {
    let metrics = analysis_metrics();
    metrics.runs_total.inc();
    let _timer = metrics.seconds.start_timer();

    let globals: Vec<_> = plan.globals_view().collect();
    let overridden: BTreeMap<&str, Interval> =
        ranges.iter().map(|(n, iv)| (n.as_str(), *iv)).collect();

    // Tracked inputs: every global that is independently settable (a
    // range override, or a constant formula), then range names that
    // are not globals, in declaration order.
    let mut inputs: Vec<(String, Interval, DimInfo)> = Vec::new();
    for g in &globals {
        if let Some(iv) = overridden.get(g.name()) {
            inputs.push((g.name().to_string(), *iv, global_dim(g.name(), g.expr())));
        } else if let Some(v) = g.expr().constant_value() {
            inputs.push((
                g.name().to_string(),
                Interval::point(v),
                global_dim(g.name(), g.expr()),
            ));
        }
    }
    let global_names: Vec<&str> = globals.iter().map(|g| g.name()).collect();
    for (name, iv) in ranges {
        if !global_names.contains(&name.as_str()) {
            inputs.push((
                name.clone(),
                *iv,
                convention_dim(name).map_or(DimInfo::Any, DimInfo::Known),
            ));
        }
    }
    let ninputs = inputs.len();
    let input_index: BTreeMap<&str, usize> = inputs
        .iter()
        .enumerate()
        .map(|(k, (n, _, _))| (n.as_str(), k))
        .collect();

    let mut report = LintReport::new();
    let mut may_fail = false;
    let mut sink = Sink {
        report: &mut report,
        enabled: true,
        may_fail: &mut may_fail,
    };

    // Appended override names enter the environment before globals
    // evaluate (a global's formula may read them).
    let mut env = Env::root();
    for (name, iv, _) in &inputs {
        if !global_names.contains(&name.as_str()) {
            let idx = input_index[name.as_str()];
            env.set(name, AbsValue::input(*iv, idx, ninputs));
        }
    }

    // Globals in dependency order. With overrides in play the base
    // order may be broken (an override can cut a cycle), so rebuild
    // the order whenever ranges touch a global.
    let overrides_globals = globals.iter().any(|g| overridden.contains_key(g.name()));
    let order: Vec<usize> = if overrides_globals {
        global_order_with_overrides(&globals, &overridden)?
    } else {
        plan.global_order().map_err(Clone::clone)?.to_vec()
    };

    for &k in &order {
        let g = &globals[k];
        let name = g.name();
        let path = format!("globals/{name}");
        let val = if let Some(&idx) = input_index.get(name) {
            if !overridden.contains_key(name) {
                // A constant-formula input: the concrete engine still
                // evaluates the formula, so its diagnostics (dead
                // branches, …) still apply — only the value is taken
                // from the input identity.
                abs_eval(g.expr(), &env, ninputs, &path, &mut sink).map_err(|source| {
                    EvaluateSheetError::Global {
                        name: name.to_string(),
                        source,
                    }
                })?;
            }
            AbsValue::input(inputs[idx].1, idx, ninputs)
        } else {
            abs_eval(g.expr(), &env, ninputs, &path, &mut sink).map_err(|source| {
                EvaluateSheetError::Global {
                    name: name.to_string(),
                    source,
                }
            })?
        };
        env.set(name, val);
    }

    let level = analyze_rows(plan, &env, ninputs, "", &mut sink)?;

    // Constant-foldable rows are only worth flagging when something
    // actually varies — under pure point inputs every row is trivially
    // constant.
    let any_range = inputs.iter().any(|(_, iv, _)| !iv.is_point());
    if any_range {
        for r in &level.rows {
            if r.constant && !r.dead {
                sink.push(
                    Diagnostic::warning(
                        codes::CONSTANT_FOLDABLE_ROW,
                        format!("rows/{}/power", r.name),
                        "row power is a single provable value over the analyzed ranges",
                    )
                    .with_suggestion("fold the row into a direct-power entry"),
                );
            }
        }
    }

    let monotone = inputs
        .iter()
        .enumerate()
        .filter_map(|(k, (name, _, _))| {
            let dir = match level.total.mono[k] {
                Mono::Inc => Direction::Increasing,
                Mono::Dec => Direction::Decreasing,
                Mono::Const => Direction::Constant,
                Mono::Unknown => return None,
            };
            Some(MonotoneInput {
                name: name.clone(),
                direction: dir,
            })
        })
        .collect();

    Ok(SheetBounds {
        name: plan.plan_name().to_string(),
        inputs: inputs
            .into_iter()
            .map(|(name, iv, dim)| InputBound {
                name,
                range: iv,
                dim: dim.known(),
            })
            .collect(),
        rows: level.rows,
        total_power: level.total.iv,
        monotone,
        diagnostics: report,
        may_fail,
    })
}

/// The dimension tag for a global: naming convention first, formula
/// inference second (inference diagnostics are the linter's job, not
/// ours — they are discarded here).
fn global_dim(name: &str, expr: &Expr) -> DimInfo {
    if let Some(d) = convention_dim(name) {
        return DimInfo::Known(d);
    }
    let mut scratch = LintReport::new();
    infer_dims(
        expr,
        name,
        &|n| convention_dim(n).map_or(DimInfo::Any, DimInfo::Known),
        &mut scratch,
    )
}

/// Dependency order over globals when overrides may have cut edges.
fn global_order_with_overrides(
    globals: &[powerplay_sheet::GlobalView<'_>],
    overridden: &BTreeMap<&str, Interval>,
) -> Result<Vec<usize>, EvaluateSheetError> {
    let index: BTreeMap<&str, usize> = globals
        .iter()
        .enumerate()
        .map(|(k, g)| (g.name(), k))
        .collect();
    let mut deps: BTreeMap<usize, std::collections::BTreeSet<usize>> = BTreeMap::new();
    for (k, g) in globals.iter().enumerate() {
        let mut set = std::collections::BTreeSet::new();
        if !overridden.contains_key(g.name()) {
            for free in g.expr().free_variables() {
                if let Some(&d) = index.get(free.as_str()) {
                    set.insert(d);
                }
            }
        }
        deps.insert(k, set);
    }
    toposort(globals.len(), &deps).map_err(|cycle| {
        EvaluateSheetError::CircularGlobals(
            cycle
                .iter()
                .map(|&k| globals[k].name().to_string())
                .collect(),
        )
    })
}
