//! Bound-guided what-if pruning.
//!
//! A constrained sweep wants only the points whose total power lands
//! inside a window. The analyzer can often *prove* a whole segment of
//! sweep values lands outside it — those points are skipped without a
//! replay, and the skip is sound: the proof covers every concrete
//! play in the segment, and pruning only happens when the analysis
//! also proves no play in the segment can fail (so the concrete
//! sweep's error semantics are preserved). Surviving points go
//! through [`whatif::sweep_compiled`] unchanged, so their reports are
//! bit-identical to an unconstrained sweep's.

use powerplay_library::Registry;
use powerplay_sheet::{whatif, CompiledSheet, EvaluateSheetError, Sheet, SheetReport};
use powerplay_units::Voltage;

use crate::analyzer::{analysis_metrics, analyze_with_ranges};
use crate::bounds::SheetBounds;
use crate::interval::Interval;

/// A window total power must land in: `min_w <= P <= max_w`, either
/// side optional.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConstraint {
    /// Lower bound, watts (inclusive).
    pub min_w: Option<f64>,
    /// Upper bound, watts (inclusive).
    pub max_w: Option<f64>,
}

impl PowerConstraint {
    /// Only an upper bound: `P <= max_w`.
    #[must_use]
    pub fn at_most(max_w: f64) -> PowerConstraint {
        PowerConstraint {
            min_w: None,
            max_w: Some(max_w),
        }
    }

    /// Only a lower bound: `P >= min_w`.
    #[must_use]
    pub fn at_least(min_w: f64) -> PowerConstraint {
        PowerConstraint {
            min_w: Some(min_w),
            max_w: None,
        }
    }

    /// True when a concrete total power satisfies the window.
    #[must_use]
    pub fn admits(&self, power: f64) -> bool {
        self.min_w.is_none_or(|m| power >= m) && self.max_w.is_none_or(|m| power <= m)
    }

    /// True when the proven interval lies entirely outside the window
    /// (every play in it would be rejected). NaN-reachability defeats
    /// the proof.
    #[must_use]
    pub fn excludes(&self, iv: &Interval) -> bool {
        if iv.nan || iv.is_numeric_empty() {
            return false;
        }
        self.min_w.is_some_and(|m| iv.hi < m) || self.max_w.is_some_and(|m| iv.lo > m)
    }

    /// True when the proven interval lies entirely inside the window.
    #[must_use]
    pub fn contains(&self, iv: &Interval) -> bool {
        if iv.nan || iv.is_numeric_empty() {
            return false;
        }
        self.min_w.is_none_or(|m| iv.lo >= m) && self.max_w.is_none_or(|m| iv.hi <= m)
    }
}

/// What happened to one sweep point.
#[derive(Debug, Clone)]
pub enum PointOutcome {
    /// Skipped: the proven total-power interval for its segment lies
    /// outside the constraint.
    Pruned(Interval),
    /// Replayed; the report is bit-identical to an unconstrained
    /// sweep's at this value.
    Played(SheetReport),
}

/// The result of a constrained, bound-pruned sweep.
#[derive(Debug, Clone)]
pub struct ConstrainedSweep {
    /// One outcome per input value, in input order.
    pub outcomes: Vec<(f64, PointOutcome)>,
    /// Points skipped by proof.
    pub pruned: usize,
    /// Points actually replayed.
    pub played: usize,
    /// Abstract analyses performed during segment bisection.
    pub analyses: usize,
}

impl ConstrainedSweep {
    /// The played points that satisfy the constraint, in input order —
    /// the sweep's useful output.
    #[must_use]
    pub fn admitted(&self, constraint: &PowerConstraint) -> Vec<(f64, &SheetReport)> {
        self.outcomes
            .iter()
            .filter_map(|(v, o)| match o {
                PointOutcome::Played(r) if constraint.admits(r.total_power().value()) => {
                    Some((*v, r))
                }
                _ => None,
            })
            .collect()
    }
}

/// Segment verdicts from the bisection.
enum SegmentPlan {
    PruneAll(Interval),
    PlayAll,
}

/// Sweeps `global` over `values`, skipping points the analyzer proves
/// outside `constraint`.
///
/// # Errors
///
/// Exactly the errors [`whatif::sweep_compiled`] reports on the
/// surviving points. Pruned points are proven unable to fail, so the
/// first error (in input order) is unchanged from an unconstrained
/// sweep.
pub fn sweep_constrained(
    plan: &CompiledSheet,
    global: &str,
    values: &[f64],
    constraint: &PowerConstraint,
) -> Result<ConstrainedSweep, EvaluateSheetError> {
    let metrics = analysis_metrics();
    let mut plans: Vec<Option<SegmentPlan>> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut analyses = 0usize;

    // Bisect index segments; each analysis covers the segment's value
    // hull, so unordered sweeps still work.
    let mut stack: Vec<(usize, usize)> = if values.is_empty() {
        Vec::new()
    } else {
        vec![(0, values.len())]
    };
    while let Some((a, b)) = stack.pop() {
        let seg = &values[a..b];
        let lo = seg.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = seg.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let verdict = if lo.is_nan() || hi.is_nan() || lo > hi {
            // NaN sweep values admit no range proof; play them.
            Some(SegmentPlan::PlayAll)
        } else {
            analyses += 1;
            match analyze_with_ranges(plan, &[(global.to_string(), Interval::new(lo, hi))]) {
                Ok(bounds) if !bounds.may_fail && constraint.excludes(&bounds.total_power) => {
                    Some(SegmentPlan::PruneAll(bounds.total_power))
                }
                Ok(bounds) if !bounds.may_fail && constraint.contains(&bounds.total_power) => {
                    // Provably inside: no deeper analysis can prune
                    // anything, stop bisecting.
                    Some(SegmentPlan::PlayAll)
                }
                _ if b - a == 1 => Some(SegmentPlan::PlayAll),
                _ => None,
            }
        };
        match verdict {
            Some(p) => {
                spans.push((a, b));
                plans.push(Some(p));
            }
            None => {
                let mid = a + (b - a) / 2;
                stack.push((mid, b));
                stack.push((a, mid));
            }
        }
    }

    // Survivors keep input order for the replay.
    let mut keep = vec![false; values.len()];
    let mut pruned_iv: Vec<Option<Interval>> = vec![None; values.len()];
    for ((a, b), p) in spans.iter().zip(&plans) {
        match p.as_ref().expect("every span planned") {
            SegmentPlan::PlayAll => keep[*a..*b].iter_mut().for_each(|k| *k = true),
            SegmentPlan::PruneAll(iv) => {
                for slot in &mut pruned_iv[*a..*b] {
                    *slot = Some(*iv);
                }
            }
        }
    }

    let survivors: Vec<f64> = values
        .iter()
        .zip(&keep)
        .filter_map(|(v, k)| k.then_some(*v))
        .collect();
    let played = survivors.len();
    let pruned = values.len() - played;

    metrics.sweep_points_pruned_total.add(pruned as u64);
    metrics.sweep_points_played_total.add(played as u64);
    if pruned > 0 {
        metrics.prunes_total.inc();
    }

    let mut reports = whatif::sweep_compiled(plan, global, &survivors)?.into_iter();
    let outcomes = values
        .iter()
        .zip(&keep)
        .enumerate()
        .map(|(i, (&v, &k))| {
            let outcome = if k {
                let (_, report) = reports.next().expect("one report per survivor");
                PointOutcome::Played(report)
            } else {
                PointOutcome::Pruned(pruned_iv[i].expect("pruned points carry their proof"))
            };
            (v, outcome)
        })
        .collect();

    Ok(ConstrainedSweep {
        outcomes,
        pruned,
        played,
        analyses,
    })
}

/// Timing verdicts the bounds can prove at one operating point.
fn provably_meets_timing(bounds: &SheetBounds) -> bool {
    !bounds.may_fail
        && bounds.rows.iter().all(|r| match (&r.delay, &r.rate) {
            (Some(delay), Some(rate)) => {
                if delay.nan || rate.nan || delay.is_numeric_empty() || rate.is_numeric_empty() {
                    false
                } else if rate.hi <= 0.0 {
                    // No positive rate reachable: the concrete check
                    // skips the row.
                    true
                } else {
                    delay.hi <= 1.0 / rate.hi
                }
            }
            _ => true,
        })
}

fn provably_violates_timing(bounds: &SheetBounds) -> bool {
    !bounds.may_fail
        && bounds.rows.iter().any(|r| match (&r.delay, &r.rate) {
            (Some(delay), Some(rate)) => {
                !delay.nan
                    && !rate.nan
                    && !delay.is_numeric_empty()
                    && !rate.is_numeric_empty()
                    && rate.lo > 0.0
                    && delay.lo > 1.0 / rate.lo
            }
            _ => false,
        })
}

/// [`whatif::min_vdd_meeting_timing`] seeded by proven bounds: the
/// bracket is first narrowed by abstract analyses at probe supplies
/// (no replays), then the concrete bisection runs on the narrowed
/// bracket.
///
/// When the analyzer cannot prove anything (or some play in the
/// bracket can fail), the bracket is left untouched and this is
/// exactly the unseeded search.
///
/// # Errors
///
/// Those of [`whatif::min_vdd_meeting_timing`] on the (possibly
/// narrowed) bracket.
pub fn min_vdd_meeting_timing_seeded(
    sheet: &Sheet,
    registry: &Registry,
    vdd_min: Voltage,
    vdd_max: Voltage,
) -> Result<Option<(Voltage, SheetReport)>, EvaluateSheetError> {
    let metrics = analysis_metrics();
    let plan = CompiledSheet::compile(sheet, registry);
    let probe =
        |vdd: f64| analyze_with_ranges(&plan, &[("vdd".to_string(), Interval::point(vdd))]).ok();

    let mut lo = vdd_min.value();
    let mut hi = vdd_max.value();

    // The ceiling provably failing means the whole search fails —
    // settled without a single replay.
    if let Some(bounds) = probe(hi) {
        if provably_violates_timing(&bounds) {
            metrics.minvdd_narrowed_total.inc();
            return Ok(None);
        }
    }

    let mut narrowed = false;
    for _ in 0..6 {
        let mid = lo + (hi - lo) / 2.0;
        if mid <= lo || mid >= hi {
            break;
        }
        match probe(mid) {
            Some(bounds) if provably_meets_timing(&bounds) => {
                hi = mid;
                narrowed = true;
            }
            Some(bounds) if provably_violates_timing(&bounds) => {
                lo = mid;
                narrowed = true;
            }
            _ => break,
        }
    }
    if narrowed {
        metrics.minvdd_narrowed_total.inc();
    }

    whatif::min_vdd_meeting_timing(sheet, registry, Voltage::new(lo), Voltage::new(hi))
}
