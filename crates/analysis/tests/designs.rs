//! Every shipped example design must analyze cleanly: zero
//! error-severity diagnostics, finite proven bounds, and bounds that
//! bracket both a live play and the reference total power recorded in
//! `BENCH_engine_latency.json`.

use powerplay_analysis::{analyze, analyze_with_ranges, Interval};
use powerplay_json::Json;
use powerplay_library::builtin::ucb_library;
use powerplay_sheet::{CompiledSheet, Sheet};

const DESIGNS: &[&str] = &["infopad", "luminance_direct_lut", "luminance_grouped_lut"];

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn load_plan(name: &str) -> CompiledSheet {
    let path = repo_path(&format!("examples/designs/{name}.json"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let json = Json::parse(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"));
    let sheet = Sheet::from_json(&json).unwrap_or_else(|e| panic!("decode {name}: {e}"));
    CompiledSheet::compile(&sheet, &ucb_library())
}

fn reference_power(name: &str) -> f64 {
    let path = repo_path("BENCH_engine_latency.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let json = Json::parse(&text).expect("bench json parses");
    let refs = json
        .get("reference_total_power_w")
        .expect("bench json records reference_total_power_w");
    refs.get(name)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("reference power for {name}"))
}

#[test]
fn example_designs_analyze_clean_with_finite_bounds() {
    for name in DESIGNS {
        let plan = load_plan(name);
        let bounds = analyze(&plan).unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        assert!(
            !bounds.has_errors(),
            "{name}: analysis reported errors:\n{}",
            bounds.diagnostics.render_text()
        );
        assert!(!bounds.may_fail, "{name}: analysis marked may_fail");
        assert!(
            bounds.total_power.is_finite(),
            "{name}: total power bound not finite: {:?}",
            bounds.total_power
        );
        assert!(
            !bounds.total_power.nan,
            "{name}: NaN reachable in total power"
        );
        for row in &bounds.rows {
            assert!(
                row.power.is_finite() && !row.power.nan,
                "{name}/{}: row power bound not finite: {:?}",
                row.name,
                row.power
            );
        }
    }
}

#[test]
fn bounds_bracket_live_play_and_recorded_reference() {
    for name in DESIGNS {
        let plan = load_plan(name);
        let bounds = analyze(&plan).unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        let live = plan
            .play()
            .unwrap_or_else(|e| panic!("{name}: play failed: {e}"))
            .total_power()
            .value();
        assert!(
            bounds.total_power.contains(live),
            "{name}: live total {live} outside proven {:?}",
            bounds.total_power
        );
        let reference = reference_power(name);
        assert!(
            bounds.total_power.contains(reference),
            "{name}: recorded reference {reference} outside proven {:?}",
            bounds.total_power
        );
        // The reference file itself must match a live play closely —
        // bit-for-bit on this toolchain.
        assert_eq!(
            live, reference,
            "{name}: recorded reference drifted from live play"
        );
    }
}

#[test]
fn vdd_ranged_bounds_bracket_sampled_plays() {
    for name in DESIGNS {
        let plan = load_plan(name);
        let ranges = vec![("vdd".to_string(), Interval::new(1.0, 3.3))];
        let bounds = analyze_with_ranges(&plan, &ranges)
            .unwrap_or_else(|e| panic!("{name}: ranged analysis failed: {e}"));
        assert!(
            !bounds.has_errors(),
            "{name}: ranged analysis reported errors:\n{}",
            bounds.diagnostics.render_text()
        );
        for vdd in [1.0, 1.5, 2.2, 3.3] {
            let report = plan
                .play_with(&[("vdd", vdd)])
                .unwrap_or_else(|e| panic!("{name}: play at vdd={vdd} failed: {e}"));
            let total = report.total_power().value();
            assert!(
                bounds.total_power.contains(total),
                "{name}: play at vdd={vdd} gave {total}, outside {:?}",
                bounds.total_power
            );
        }
    }
}
