//! The soundness contract: every concrete play whose inputs lie inside
//! the declared ranges lands inside the statically proven intervals.
//!
//! Random sheets (random formulas over the ranged globals, random
//! library rows) are analyzed once, then played at random points
//! sampled from the same ranges. A play that succeeds must land inside
//! the bounds; a play that fails must have been predicted (`may_fail`
//! or an analysis error).

use proptest::prelude::*;

use powerplay_analysis::{analyze_with_ranges, Interval, SheetBounds};
use powerplay_expr::Expr;
use powerplay_library::builtin::ucb_library;
use powerplay_library::{ElementClass, ElementModel, LibraryElement, ParamDecl, Registry};
use powerplay_sheet::{CompiledSheet, EvaluateSheetError, Sheet};

const VDD_RANGE: (f64, f64) = (0.9, 3.3);
const F_RANGE: (f64, f64) = (1e5, 1e7);

/// A random formula over `vdd`, `f` (scaled to O(1) via `f / 1e6`),
/// and literals — rendered as source text so it goes through the same
/// parser the engine uses.
fn formula(depth: u32) -> BoxedStrategy<String> {
    let atom = prop_oneof![
        Just("vdd".to_string()),
        Just("(f / 1e6)".to_string()),
        (0.1f64..4.0).prop_map(|k| format!("{k:.3}")),
        (-2.0f64..2.0).prop_map(|k| format!("({k:.3})")),
    ];
    if depth == 0 {
        return atom.boxed();
    }
    let sub = formula(depth - 1);
    prop_oneof![
        atom,
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("({a} / {b})")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("min({a}, {b})")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("max({a}, {b})")),
        sub.clone().prop_map(|a| format!("sqrt(abs({a}))")),
        sub.clone().prop_map(|a| format!("abs({a})")),
        sub.clone().prop_map(|a| format!("({a} ^ 2)")),
        (sub.clone(), sub.clone(), sub.clone())
            .prop_map(|(c, t, e)| format!("if({c} > 1, {t}, {e})")),
    ]
    .boxed()
}

/// Library rows to sample from (all parameterless here; parameters are
/// exercised through the custom element below).
const UCB_ROWS: [&str; 5] = [
    "ucb/multiplier",
    "ucb/sram",
    "ucb/register",
    "ucb/ctrl_pla",
    "ucb/rom",
];

/// A registry with one extra element whose model formulas read a
/// caller-supplied parameter directly — the hook that lets random
/// formulas reach `cap_full`/`power_direct` evaluation.
fn registry_with_probe() -> Registry {
    let mut registry = ucb_library();
    let model = ElementModel {
        cap_full: Some(Expr::parse("knob * 1e-12").unwrap()),
        power_direct: Some(Expr::parse("bias * 1e-3").unwrap()),
        ..ElementModel::default()
    };
    registry.insert(LibraryElement::new(
        "test/probe",
        ElementClass::Computation,
        "soundness probe: cap and direct power from parameters",
        vec![
            ParamDecl::new("knob", 1.0, "switched cap scale, pF"),
            ParamDecl::new("bias", 0.5, "direct power, mW"),
        ],
        model,
    ));
    registry
}

/// Asserts one concrete play against the proven bounds.
fn check_play(
    plan: &CompiledSheet,
    bounds: &Result<SheetBounds, EvaluateSheetError>,
    vdd: f64,
    f: f64,
) {
    let played = plan.play_with(&[("vdd", vdd), ("f", f)]);
    match (played, bounds) {
        (Ok(report), Ok(bounds)) => {
            let total = report.total_power().value();
            prop_assert!(
                bounds.total_power.contains(total),
                "total {total} outside proven [{}, {}] (nan={}) at vdd={vdd}, f={f}",
                bounds.total_power.lo,
                bounds.total_power.hi,
                bounds.total_power.nan,
            );
            for (row_report, row_bounds) in report.rows().iter().zip(&bounds.rows) {
                let p = row_report.power().value();
                prop_assert!(
                    row_bounds.power.contains(p),
                    "row `{}` power {p} outside proven [{}, {}] at vdd={vdd}, f={f}",
                    row_bounds.name,
                    row_bounds.power.lo,
                    row_bounds.power.hi,
                );
            }
        }
        (Ok(_), Err(err)) => {
            panic!("analysis rejected a playable sheet: {err}");
        }
        (Err(_), Ok(bounds)) => {
            prop_assert!(
                bounds.may_fail,
                "a play failed but the analysis claimed no play can (vdd={vdd}, f={f})"
            );
        }
        (Err(_), Err(_)) => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random library rows, ranged supply and rate: plays stay inside
    /// the proven intervals across the whole box.
    #[test]
    fn library_rows_within_bounds(
        rows in prop::collection::vec(0usize..UCB_ROWS.len(), 1..4),
        samples in prop::collection::vec(
            ((VDD_RANGE.0)..VDD_RANGE.1, (F_RANGE.0)..F_RANGE.1),
            4..5,
        ),
    ) {
        let registry = ucb_library();
        let mut sheet = Sheet::new("random-library");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        for (i, pick) in rows.iter().enumerate() {
            sheet.add_element_row(&format!("Row{i}"), UCB_ROWS[*pick], []).unwrap();
        }
        let plan = CompiledSheet::compile(&sheet, &registry);
        let ranges = vec![
            ("vdd".to_string(), Interval::new(VDD_RANGE.0, VDD_RANGE.1)),
            ("f".to_string(), Interval::new(F_RANGE.0, F_RANGE.1)),
        ];
        let bounds = analyze_with_ranges(&plan, &ranges);
        for (vdd, f) in samples {
            check_play(&plan, &bounds, vdd, f);
        }
    }

    /// Random formulas reach the model through a probe element's
    /// parameters; negative/NaN excursions must be predicted, in-range
    /// plays must stay inside the intervals.
    #[test]
    fn random_formulas_within_bounds(
        knob in formula(3),
        bias in formula(2),
        derived in formula(3),
        samples in prop::collection::vec(
            ((VDD_RANGE.0)..VDD_RANGE.1, (F_RANGE.0)..F_RANGE.1),
            4..5,
        ),
    ) {
        let registry = registry_with_probe();
        let mut sheet = Sheet::new("random-formulas");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        sheet.set_global("g_mix", &derived).unwrap();
        sheet
            .add_element_row(
                "Probe",
                "test/probe",
                [("knob", knob.as_str()), ("bias", bias.as_str())],
            )
            .unwrap();
        sheet.add_element_row("Anchor", "ucb/register", []).unwrap();
        let plan = CompiledSheet::compile(&sheet, &registry);
        let ranges = vec![
            ("vdd".to_string(), Interval::new(VDD_RANGE.0, VDD_RANGE.1)),
            ("f".to_string(), Interval::new(F_RANGE.0, F_RANGE.1)),
        ];
        let bounds = analyze_with_ranges(&plan, &ranges);
        for (vdd, f) in samples {
            check_play(&plan, &bounds, vdd, f);
        }
    }

    /// Point analysis (no ranges) brackets the plain play exactly.
    #[test]
    fn point_analysis_brackets_the_declared_play(
        rows in prop::collection::vec(0usize..UCB_ROWS.len(), 1..4),
        vdd in (VDD_RANGE.0)..VDD_RANGE.1,
    ) {
        let registry = ucb_library();
        let mut sheet = Sheet::new("point");
        sheet.set_global_value("vdd", vdd);
        sheet.set_global_value("f", 2e6);
        for (i, pick) in rows.iter().enumerate() {
            sheet.add_element_row(&format!("Row{i}"), UCB_ROWS[*pick], []).unwrap();
        }
        let plan = CompiledSheet::compile(&sheet, &registry);
        let bounds = powerplay_analysis::analyze(&plan).unwrap();
        let report = plan.play().unwrap();
        let total = report.total_power().value();
        prop_assert!(bounds.total_power.contains(total));
        // Supply scaling is the paper's first-class knob: the analyzer
        // must prove total power rises with vdd at the operating point.
        prop_assert!(
            bounds
                .monotone
                .iter()
                .any(|m| m.name == "vdd"),
            "no monotone verdict for vdd"
        );
    }
}

/// Deterministic diagnostics: each new code fires on its canonical
/// trigger.
mod diagnostics {
    use super::*;
    use powerplay_lint::codes;

    fn codes_of(bounds: &SheetBounds) -> Vec<&str> {
        bounds
            .diagnostics
            .diagnostics()
            .iter()
            .map(|d| d.code.as_str())
            .collect()
    }

    #[test]
    fn possible_div_zero_fires_w114() {
        let registry = ucb_library();
        let mut sheet = Sheet::new("divzero");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        sheet.set_global("scale", "1 / (vdd - 2)").unwrap();
        sheet.add_element_row("Core", "ucb/register", []).unwrap();
        let plan = CompiledSheet::compile(&sheet, &registry);
        let ranges = vec![("vdd".to_string(), Interval::new(1.0, 3.0))];
        let bounds = analyze_with_ranges(&plan, &ranges).unwrap();
        assert!(codes_of(&bounds).contains(&codes::POSSIBLE_DIV_ZERO));
    }

    #[test]
    fn dead_branch_fires_w116_and_dead_row_w117() {
        let registry = registry_with_probe();
        let mut sheet = Sheet::new("deadcode");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        sheet.set_global("sel", "if(2 > 1, 1, 0)").unwrap();
        sheet
            .add_element_row("Idle", "test/probe", [("knob", "0"), ("bias", "0")])
            .unwrap();
        let plan = CompiledSheet::compile(&sheet, &registry);
        let bounds = powerplay_analysis::analyze(&plan).unwrap();
        let codes = codes_of(&bounds);
        assert!(
            codes.contains(&codes::DEAD_BRANCH),
            "missing W116 in {codes:?}"
        );
        assert!(
            codes.contains(&codes::DEAD_ROW),
            "missing W117 in {codes:?}"
        );
        assert!(bounds.rows[0].dead);
    }

    #[test]
    fn provably_negative_model_value_fires_e015() {
        let registry = registry_with_probe();
        let mut sheet = Sheet::new("negative");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        sheet
            .add_element_row("Bad", "test/probe", [("knob", "1"), ("bias", "-3")])
            .unwrap();
        let plan = CompiledSheet::compile(&sheet, &registry);
        let bounds = powerplay_analysis::analyze(&plan).unwrap();
        assert!(codes_of(&bounds).contains(&codes::PROVABLY_NEGATIVE_VALUE));
        assert!(bounds.has_errors());
        assert!(bounds.may_fail);
        // The concrete play indeed fails.
        assert!(plan.play().is_err());
    }

    #[test]
    fn provably_nan_model_value_fires_e016() {
        let registry = registry_with_probe();
        let mut sheet = Sheet::new("nan");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        sheet
            .add_element_row(
                "Bad",
                "test/probe",
                [("knob", "sqrt(0 - 1)"), ("bias", "1")],
            )
            .unwrap();
        let plan = CompiledSheet::compile(&sheet, &registry);
        let bounds = powerplay_analysis::analyze(&plan).unwrap();
        assert!(codes_of(&bounds).contains(&codes::PROVABLY_NAN_VALUE));
        assert!(plan.play().is_err());
    }

    #[test]
    fn nan_reachable_fires_w115_without_condemning_the_row() {
        let registry = registry_with_probe();
        let mut sheet = Sheet::new("maybe-nan");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        sheet
            .add_element_row(
                "Edgy",
                "test/probe",
                [("knob", "sqrt(vdd - 2)"), ("bias", "1")],
            )
            .unwrap();
        let plan = CompiledSheet::compile(&sheet, &registry);
        let ranges = vec![("vdd".to_string(), Interval::new(1.0, 3.0))];
        let bounds = analyze_with_ranges(&plan, &ranges).unwrap();
        assert!(codes_of(&bounds).contains(&codes::NAN_REACHABLE));
        assert!(bounds.may_fail);
        assert!(!bounds.has_errors());
        // In-range plays on the good side still land inside the bounds.
        let report = plan.play_with(&[("vdd", 3.0)]).unwrap();
        assert!(bounds.total_power.contains(report.total_power().value()));
    }

    #[test]
    fn constant_foldable_row_fires_w118_under_ranges() {
        let registry = registry_with_probe();
        let mut sheet = Sheet::new("foldable");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        // The probe row's power ignores both ranged inputs.
        sheet
            .add_element_row("Fixed", "test/probe", [("knob", "0"), ("bias", "2")])
            .unwrap();
        sheet.add_element_row("Live", "ucb/register", []).unwrap();
        let plan = CompiledSheet::compile(&sheet, &registry);
        let ranges = vec![("vdd".to_string(), Interval::new(1.0, 3.0))];
        let bounds = analyze_with_ranges(&plan, &ranges).unwrap();
        assert!(codes_of(&bounds).contains(&codes::CONSTANT_FOLDABLE_ROW));
        assert!(bounds.rows[0].constant);
        assert!(!bounds.rows[1].constant);
    }

    #[test]
    fn monotone_directions_over_ranges() {
        let registry = ucb_library();
        let mut sheet = Sheet::new("monotone");
        sheet.set_global_value("vdd", 1.5);
        sheet.set_global_value("f", 2e6);
        sheet.add_element_row("Core", "ucb/multiplier", []).unwrap();
        let plan = CompiledSheet::compile(&sheet, &registry);
        let ranges = vec![
            ("vdd".to_string(), Interval::new(1.0, 3.3)),
            ("f".to_string(), Interval::new(1e5, 1e7)),
        ];
        let bounds = analyze_with_ranges(&plan, &ranges).unwrap();
        for name in ["vdd", "f"] {
            let dir = bounds
                .monotone
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("no direction proven for {name}"));
            assert_eq!(
                dir.direction,
                powerplay_analysis::Direction::Increasing,
                "{name} should raise power"
            );
        }
    }
}
