//! Satellite check: the built-in reference designs lint clean.
//!
//! Every diagnostic the linter raises on the shipped designs is either
//! fixed or explicitly allowed here with its code — nothing is silently
//! tolerated. If a new lint pass starts flagging these sheets, this
//! test is where the triage decision gets recorded.

use powerplay::designs::{infopad, luminance};
use powerplay::{PowerPlay, Severity};
use powerplay_lint::codes;

/// The per-row `f` overrides in the luminance designs (the paper's
/// Figure 1/3 memory banks run at `f/4` etc.) intentionally shadow the
/// sheet global, so I201 is expected there and allowed.
const ALLOWED: &[&str] = &[codes::SHADOWED_GLOBAL];

fn assert_lints_clean(name: &str, sheet: &powerplay::Sheet) {
    let pp = PowerPlay::new();
    let report = pp.lint(sheet);
    assert_eq!(
        report.count(Severity::Error),
        0,
        "{name} has lint errors:\n{}",
        report.render_text()
    );
    assert_eq!(
        report.count(Severity::Warning),
        0,
        "{name} has lint warnings:\n{}",
        report.render_text()
    );
    let residue = report.allow(ALLOWED);
    assert!(
        residue.is_empty(),
        "{name} has unreviewed diagnostics:\n{}",
        residue.render_text()
    );
}

#[test]
fn luminance_direct_lut_lints_clean() {
    assert_lints_clean(
        "luminance (Figure 1)",
        &luminance::sheet(luminance::LuminanceArch::DirectLut),
    );
}

#[test]
fn luminance_grouped_lut_lints_clean() {
    assert_lints_clean(
        "luminance (Figure 3)",
        &luminance::sheet(luminance::LuminanceArch::GroupedLut),
    );
}

#[test]
fn infopad_lints_clean() {
    assert_lints_clean("infopad", &infopad::sheet());
}

#[test]
fn luminance_shadowing_infos_are_the_expected_ones() {
    // Document exactly which I201s we allow: the deliberate per-row
    // clock overrides.
    let report = PowerPlay::new().lint(&luminance::sheet(luminance::LuminanceArch::DirectLut));
    let paths: Vec<&str> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == codes::SHADOWED_GLOBAL)
        .map(|d| d.path.as_str())
        .collect();
    assert_eq!(
        paths,
        ["rows/Read Bank/bindings/f", "rows/Write Bank/bindings/f",]
    );
}

#[test]
fn registry_of_builtins_lints_without_errors() {
    let pp = PowerPlay::new();
    let report = powerplay_lint::lint_registry(pp.registry());
    assert_eq!(
        report.count(Severity::Error),
        0,
        "built-in library has lint errors:\n{}",
        report.render_text()
    );
}
