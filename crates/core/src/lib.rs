//! **PowerPlay** — early power exploration, after Lidsky & Rabaey,
//! *"Early Power Exploration — A World Wide Web Application"*, DAC 1996.
//!
//! Exploration at the earliest stages of design needs four enablers
//! (paper §1): a characterized model library, easy model authoring, a
//! spreadsheet-like worksheet with instant what-if recomputation, and a
//! universally accessible front end. This crate is the facade over the
//! workspace that provides all four:
//!
//! * models of every class in the paper (EQ 1–20) —
//!   `powerplay_models`;
//! * the shared, serializable library with the UCB built-ins —
//!   `powerplay_library`;
//! * the hierarchical design spreadsheet with macro lumping and
//!   sweeps — `powerplay_sheet`;
//! * the two reference designs the paper evaluates — [`designs`]: the VQ
//!   luminance decompression chip (Figures 1–3) and the InfoPad portable
//!   terminal (Figure 5);
//! * the silicon stand-in used to check the "within an octave" accuracy
//!   claim — `powerplay_vqsim` with [`accuracy`]
//!   helpers.
//!
//! (The WWW front end lives in `powerplay-web`, which depends on this
//! stack; run `cargo run --example webserver`.)
//!
//! # Quickstart
//!
//! ```
//! use powerplay::PowerPlay;
//! use powerplay::designs::luminance::{self, LuminanceArch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pp = PowerPlay::new();
//! let report = pp.play(&luminance::sheet(LuminanceArch::DirectLut))?;
//! println!("{report}");
//! // The paper's Figure 1 architecture lands near 0.75 mW.
//! assert!(report.total_power().value() > 0.5e-3);
//! # Ok(())
//! # }
//! ```

pub mod accuracy;
pub mod backannotate;
pub mod designs;

pub use powerplay_expr::{Expr, Scope};
pub use powerplay_library::{builtin::ucb_library, LibraryElement, Registry};
pub use powerplay_lint::{Diagnostic, LintReport, Severity};
pub use powerplay_models::{OperatingPoint, PowerModel};
pub use powerplay_sheet::{whatif, CompiledSheet, Row, RowModel, Sheet, SheetReport};
pub use powerplay_units::{Capacitance, Current, Energy, Frequency, Power, Time, Voltage};

use powerplay_sheet::EvaluateSheetError;

/// A PowerPlay session: a model registry plus convenience entry points.
///
/// The 1996 tool kept this state on the server; library code keeps it in
/// a value you own.
#[derive(Debug, Clone, Default)]
pub struct PowerPlay {
    registry: Registry,
}

impl PowerPlay {
    /// A session preloaded with the built-in UC Berkeley-style library.
    pub fn new() -> PowerPlay {
        PowerPlay {
            registry: ucb_library(),
        }
    }

    /// A session over a caller-supplied registry.
    pub fn with_registry(registry: Registry) -> PowerPlay {
        PowerPlay { registry }
    }

    /// The model registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access (register user models, merge remote
    /// libraries).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Evaluates a design — the *Play* button.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluateSheetError`] for unknown elements, circular
    /// definitions, or formula failures.
    pub fn play(&self, sheet: &Sheet) -> Result<SheetReport, EvaluateSheetError> {
        sheet.play(&self.registry)
    }

    /// Compiles a design against this session's registry for repeated
    /// what-if evaluation: pay the dependency analysis once, then call
    /// [`CompiledSheet::play_with`] per point.
    pub fn compile(&self, sheet: &Sheet) -> CompiledSheet {
        CompiledSheet::compile(sheet, &self.registry)
    }

    /// Statically analyzes a design: unit-dimension inference, name
    /// analysis, and plausibility checks, without evaluating anything.
    pub fn lint(&self, sheet: &Sheet) -> LintReport {
        powerplay_lint::lint_sheet(sheet, &self.registry)
    }

    /// [`PowerPlay::compile`] plus the [`LintReport`] for the same
    /// sheet, so callers can surface diagnostics alongside the plan.
    pub fn compile_with_diagnostics(&self, sheet: &Sheet) -> (CompiledSheet, LintReport) {
        (self.compile(sheet), self.lint(sheet))
    }

    /// Lumps a design into a reusable macro and registers it.
    ///
    /// # Errors
    ///
    /// Returns [`powerplay_sheet::Sheet::to_macro`]'s error on
    /// non-template-shaped designs.
    pub fn lump(
        &mut self,
        sheet: &Sheet,
        name: &str,
    ) -> Result<&LibraryElement, Box<dyn std::error::Error>> {
        let element = sheet.to_macro(name, &self.registry)?;
        self.registry.insert(element);
        Ok(self.registry.get(name).expect("just inserted"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_defaults_to_builtin_library() {
        let pp = PowerPlay::new();
        assert!(pp.registry().get("ucb/multiplier").is_some());
        assert_eq!(PowerPlay::default().registry().len(), 0);
    }

    #[test]
    fn play_and_lump_through_the_facade() {
        let mut pp = PowerPlay::new();
        let mut sheet = Sheet::new("demo");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "1MHz").unwrap();
        sheet.add_element_row("R", "ucb/register", []).unwrap();
        let report = pp.play(&sheet).unwrap();
        assert!(report.total_power().value() > 0.0);

        let lumped = pp.lump(&sheet, "macros/demo").unwrap();
        assert_eq!(lumped.name(), "macros/demo");
        assert!(pp.registry().get("macros/demo").is_some());
    }
}
