//! Accuracy bookkeeping for estimate-versus-reference comparisons.
//!
//! "At this level of abstraction, accuracy should be within an octave of
//! the actual value" — these helpers quantify that claim against the
//! cycle-level simulator's "measurement".

use powerplay_units::Power;

/// The ratio `estimate / reference`, always ≥ 1 would mean conservative;
/// values in `[0.5, 2.0]` are "within an octave".
///
/// # Panics
///
/// Panics if `reference` is zero or either value is non-finite.
pub fn accuracy_ratio(estimate: Power, reference: Power) -> f64 {
    assert!(
        estimate.is_finite() && reference.is_finite(),
        "powers must be finite"
    );
    assert!(reference.value() != 0.0, "reference power must be nonzero");
    estimate / reference
}

/// True when `estimate` is within a factor of two of `reference` in
/// either direction — the paper's accuracy target for this abstraction
/// level.
///
/// ```
/// use powerplay::accuracy::within_octave;
/// use powerplay_units::Power;
///
/// // The paper's own numbers: 150 uW estimated, 100 uW measured.
/// assert!(within_octave(Power::new(150e-6), Power::new(100e-6)));
/// assert!(!within_octave(Power::new(450e-6), Power::new(100e-6)));
/// ```
pub fn within_octave(estimate: Power, reference: Power) -> bool {
    let ratio = accuracy_ratio(estimate, reference);
    (0.5..=2.0).contains(&ratio)
}

/// A comparison record used by the experiment harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// The spreadsheet estimate.
    pub estimate: Power,
    /// The reference ("measured"/simulated) value.
    pub reference: Power,
}

impl Comparison {
    /// Builds a comparison.
    pub fn new(estimate: Power, reference: Power) -> Comparison {
        Comparison {
            estimate,
            reference,
        }
    }

    /// `estimate / reference`.
    pub fn ratio(&self) -> f64 {
        accuracy_ratio(self.estimate, self.reference)
    }

    /// Whether the octave target is met.
    pub fn within_octave(&self) -> bool {
        within_octave(self.estimate, self.reference)
    }

    /// Whether the estimate errs high (the safe direction for budgeting).
    pub fn is_conservative(&self) -> bool {
        self.ratio() >= 1.0
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "estimate {} vs reference {} (ratio {:.2}x, {})",
            self.estimate,
            self.reference,
            self.ratio(),
            if self.within_octave() {
                "within an octave"
            } else {
                "OUTSIDE the octave target"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octave_boundaries() {
        let r = Power::new(100e-6);
        assert!(within_octave(Power::new(50e-6), r));
        assert!(within_octave(Power::new(200e-6), r));
        assert!(!within_octave(Power::new(49e-6), r));
        assert!(!within_octave(Power::new(201e-6), r));
    }

    #[test]
    fn ratio_and_conservatism() {
        let c = Comparison::new(Power::new(150e-6), Power::new(100e-6));
        assert!((c.ratio() - 1.5).abs() < 1e-12);
        assert!(c.is_conservative());
        assert!(c.within_octave());
        let text = c.to_string();
        assert!(text.contains("1.50x"));
        assert!(text.contains("within an octave"));
    }

    #[test]
    fn underestimates_can_still_be_within_octave() {
        let c = Comparison::new(Power::new(70e-6), Power::new(100e-6));
        assert!(!c.is_conservative());
        assert!(c.within_octave());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_reference_panics() {
        let _ = accuracy_ratio(Power::new(1e-6), Power::ZERO);
    }
}
