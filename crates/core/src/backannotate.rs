//! Back-annotation: feeding measured activity into the spreadsheet.
//!
//! "As the user gets further along in the design process, architectural
//! estimators may be used to improve accuracy. As the design process is
//! iterated, these values should be back-annotated to the design to give
//! more accurate results."
//!
//! Here the "architectural estimator" is the cycle-level simulator
//! ([`powerplay_vqsim`]): its per-component toggles-per-access statistics
//! become `alpha` bindings on the matching spreadsheet rows, collapsing
//! the conservative correlations-neglected estimate onto the measured
//! activity.

use std::error::Error;
use std::fmt;

use powerplay_sheet::Sheet;
use powerplay_vqsim::SimReport;

/// Error produced by [`backannotate_activity`].
#[derive(Debug, Clone, PartialEq)]
pub enum BackannotateError {
    /// A mapping names a spreadsheet row that does not exist.
    UnknownRow(String),
    /// A mapping names a simulator component that does not exist.
    UnknownComponent(String),
    /// The row's resolved parameters lack a `bits` width to normalize
    /// toggles against.
    NoBitWidth(String),
    /// The design failed to evaluate while resolving parameters.
    Evaluate(String),
}

impl fmt::Display for BackannotateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackannotateError::UnknownRow(row) => write!(f, "no spreadsheet row `{row}`"),
            BackannotateError::UnknownComponent(c) => {
                write!(f, "no simulated component `{c}`")
            }
            BackannotateError::NoBitWidth(row) => {
                write!(
                    f,
                    "row `{row}` has no `bits` parameter to normalize toggles"
                )
            }
            BackannotateError::Evaluate(e) => write!(f, "design evaluation failed: {e}"),
        }
    }
}

impl Error for BackannotateError {}

/// Binds each mapped row's `alpha` to the simulator's measured
/// toggles-per-access divided by the row's bit width, returning the
/// `(row, alpha)` pairs applied.
///
/// `mapping` pairs spreadsheet row names with simulator component names,
/// e.g. `("Look Up Table", "LUT 4096x6")`.
///
/// # Errors
///
/// Returns [`BackannotateError`] when a name on either side is unknown,
/// a row lacks a `bits` parameter, or the design fails to evaluate.
pub fn backannotate_activity(
    sheet: &mut Sheet,
    sim: &SimReport,
    registry: &crate::Registry,
    mapping: &[(&str, &str)],
) -> Result<Vec<(String, f64)>, BackannotateError> {
    // Resolve each row's bit width from a pre-annotation evaluation.
    let report = sheet
        .play(registry)
        .map_err(|e| BackannotateError::Evaluate(e.to_string()))?;

    let mut applied = Vec::with_capacity(mapping.len());
    for &(row_name, component_name) in mapping {
        let row_report = report
            .row(row_name)
            .ok_or_else(|| BackannotateError::UnknownRow(row_name.to_owned()))?;
        let component = sim
            .component(component_name)
            .ok_or_else(|| BackannotateError::UnknownComponent(component_name.to_owned()))?;
        let bits = row_report
            .params()
            .iter()
            .find(|(name, _)| &**name == "bits")
            .map(|(_, v)| *v)
            .filter(|&b| b > 0.0)
            .ok_or_else(|| BackannotateError::NoBitWidth(row_name.to_owned()))?;
        let alpha = (component.toggles_per_access() / bits).min(1.0);
        sheet
            .row_mut(row_name)
            .expect("row existed in the report")
            .bind("alpha", &format!("{alpha}"))
            .expect("numeric literal parses");
        applied.push((row_name.to_owned(), alpha));
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::Comparison;
    use crate::designs::luminance::{sheet, LuminanceArch};
    use crate::PowerPlay;
    use powerplay_vqsim::{simulate, Architecture, SimConfig, VideoSource};

    /// Row ↔ component mapping for the Figure 1 architecture.
    const DIRECT_MAPPING: [(&str, &str); 4] = [
        ("Read Bank", "read bank"),
        ("Write Bank", "write bank"),
        ("Look Up Table", "LUT 4096x6"),
        ("Output Register", "output register"),
    ];

    #[test]
    fn backannotation_converges_estimate_onto_measurement() {
        let pp = PowerPlay::new();
        let video = VideoSource::synthetic(42, 4);
        let sim = simulate(Architecture::DirectLut, &video, SimConfig::paper());

        let mut design = sheet(LuminanceArch::DirectLut);
        let before = pp.play(&design).unwrap().total_power();
        let applied =
            backannotate_activity(&mut design, &sim, pp.registry(), &DIRECT_MAPPING).unwrap();
        assert_eq!(applied.len(), 4);
        let after = pp.play(&design).unwrap().total_power();

        let measured = sim.total_power();
        let pre = Comparison::new(before, measured);
        let post = Comparison::new(after, measured);
        assert!(pre.ratio() > 1.3, "pre-annotation is conservative: {pre}");
        // After back-annotation the memory rows share the simulator's
        // coefficient structure, so agreement tightens dramatically.
        assert!(
            (post.ratio() - 1.0).abs() < 0.05,
            "post-annotation must track the measurement: {post}"
        );
        assert!(after < before);
    }

    #[test]
    fn annotated_alphas_are_physical() {
        let pp = PowerPlay::new();
        let video = VideoSource::synthetic(7, 3);
        let sim = simulate(Architecture::DirectLut, &video, SimConfig::paper());
        let mut design = sheet(LuminanceArch::DirectLut);
        let applied =
            backannotate_activity(&mut design, &sim, pp.registry(), &DIRECT_MAPPING).unwrap();
        for (row, alpha) in &applied {
            assert!((0.0..=1.0).contains(alpha), "row {row} got alpha {alpha}");
        }
        // The LUT sees correlated luminance: far below random.
        let lut_alpha = applied
            .iter()
            .find(|(row, _)| row == "Look Up Table")
            .map(|(_, a)| *a)
            .unwrap();
        assert!(lut_alpha < 0.45, "LUT alpha {lut_alpha}");
    }

    #[test]
    fn unknown_names_are_errors() {
        let pp = PowerPlay::new();
        let video = VideoSource::synthetic(1, 2);
        let sim = simulate(Architecture::DirectLut, &video, SimConfig::paper());
        let mut design = sheet(LuminanceArch::DirectLut);
        assert!(matches!(
            backannotate_activity(&mut design, &sim, pp.registry(), &[("Nope", "read bank")]),
            Err(BackannotateError::UnknownRow(_))
        ));
        assert!(matches!(
            backannotate_activity(&mut design, &sim, pp.registry(), &[("Read Bank", "nope")]),
            Err(BackannotateError::UnknownComponent(_))
        ));
    }

    #[test]
    fn rows_without_bit_widths_are_rejected() {
        let pp = PowerPlay::new();
        let video = VideoSource::synthetic(1, 2);
        let sim = simulate(Architecture::DirectLut, &video, SimConfig::paper());
        let mut design = crate::Sheet::new("odd");
        design.set_global("vdd", "1.5").unwrap();
        design.set_global("f", "1MHz").unwrap();
        design.add_element_row("M", "ucb/multiplier", []).unwrap(); // bw_a/bw_b, no `bits`
        let err = backannotate_activity(&mut design, &sim, pp.registry(), &[("M", "read bank")])
            .unwrap_err();
        assert!(matches!(err, BackannotateError::NoBitWidth(_)));
        assert!(err.to_string().contains("bits"));
    }
}
