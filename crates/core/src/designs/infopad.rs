//! The InfoPad portable multimedia terminal (paper Figure 5).
//!
//! The system-level case study: seven subsystems spanning digital custom
//! hardware, an RF radio, LCD panels, an embedded processor, analog
//! support electronics and commodity I/O, fed through 80%-efficient DC-DC
//! converters whose dissipation is a formula over the other rows' powers
//! (EQ 19 intermodel interaction). The measured total in Figure 5 is
//! ≈ 10.9 W; the subsystem values here are calibrated to reproduce that
//! breakdown (see `EXPERIMENTS.md`).

use powerplay_library::Registry;
use powerplay_sheet::{CompiledSheet, Sheet};

use super::luminance::{self, LuminanceArch};

/// Builds the full InfoPad system sheet.
///
/// The "Custom Hardware" row is a *sub-sheet* containing the luminance
/// decoder of Figure 3 (hyperlinked in the web view, exactly as the paper
/// describes: "the luminance chip discussed earlier is a subcircuit of
/// the custom hardware subsection"), plus its chrominance companions and
/// a video controller.
///
/// ```
/// use powerplay::designs::infopad;
/// use powerplay::PowerPlay;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pp = PowerPlay::new();
/// let report = pp.play(&infopad::sheet())?;
/// let total = report.total_power().value();
/// assert!((9.0..12.0).contains(&total), "InfoPad totals ~10.9 W");
/// # Ok(())
/// # }
/// ```
pub fn sheet() -> Sheet {
    let mut system = Sheet::new("InfoPad System");
    system.set_global("vdd", "1.5").expect("literal parses");
    system.set_global("f", "2MHz").expect("literal parses");
    // Transmit duty cycle as a system knob: turning it dirties exactly
    // the radio row (and the converters fed by it), which is the
    // narrow-delta workload the incremental replay benchmarks exercise.
    // (Deliberately not named `duty_tx` — a global shadowed by an
    // element parameter default would never reach the model.)
    system
        .set_global("radio_duty", "0.5")
        .expect("literal parses");

    // --- Custom Hardware: the low-power chipset, as nested sub-designs.
    let mut custom = Sheet::new("Custom Hardware");
    {
        // The luminance decoder of Figure 3 (its own vdd/f come from the
        // sub-sheet globals we strip so the system's apply).
        let mut luminance_sub = luminance::sheet(LuminanceArch::GroupedLut);
        let keep: Vec<(String, String)> = luminance_sub
            .globals()
            .iter()
            .filter(|(n, _)| n != "vdd" && n != "f")
            .map(|(n, e)| (n.clone(), e.to_string()))
            .collect();
        let mut stripped = Sheet::new("Luminance Chip");
        for (n, src) in keep {
            stripped.set_global(n, &src).expect("reparse");
        }
        for row in luminance_sub.rows_mut() {
            stripped.add_row(row.clone());
        }
        custom.add_subsheet_row("Luminance Chip", stripped.clone());
        // Two chrominance channels decode at half resolution: half the
        // pixel rate of the luminance chip.
        let mut chroma = stripped;
        custom
            .add_subsheet_row("Chrominance Chips", {
                let mut s = Sheet::new("Chrominance Chips");
                for row in chroma.rows_mut() {
                    s.add_row(row.clone());
                }
                s
            })
            .bind("f", "f / 2")
            .expect("binding parses");
        custom
            .add_element_row(
                "Video Controller",
                "ucb/ctrl_rom",
                [("n_i", "8"), ("n_o", "16")],
            )
            .expect("bindings parse");
    }
    system.add_subsheet_row("Custom Hardware", custom);

    // --- Radio subsystem: TX/RX duty-cycled transceiver.
    system
        .add_element_row(
            "Radio Subsystem",
            "ucb/radio",
            [("p_tx", "3.0"), ("p_rx", "0.7"), ("duty_tx", "radio_duty")],
        )
        .expect("bindings parse");

    // --- Display: two LCD panels, power from measurement.
    system
        .add_element_row(
            "Display LCDs",
            "ucb/lcd_display",
            [("p_panel", "2.23"), ("n_panels", "2")],
        )
        .expect("bindings parse");

    // --- Embedded processor subsystem (EQ 11 duty-cycle model).
    system
        .add_element_row(
            "Processor Subsystem",
            "ucb/processor_avg",
            [("p_avg", "1.72"), ("duty", "0.5")],
        )
        .expect("bindings parse");

    // --- Support electronics: analog/glue, data-sheet numbers.
    system
        .add_element_row("Support Electronics", "ucb/io_device", [("p_avg", "0.75")])
        .expect("bindings parse");

    // --- Other I/O devices (pen, speech codec, speaker).
    system
        .add_element_row("Other IO Devices", "ucb/io_device", [("p_avg", "0.80")])
        .expect("bindings parse");

    // --- Voltage converters: EQ 19 over the connected modules' powers.
    system
        .add_element_row(
            "Voltage Converters",
            "ucb/dcdc",
            [
                (
                    "p_load",
                    "P_custom_hardware + P_radio_subsystem + P_display_lcds \
                     + P_processor_subsystem + P_support_electronics \
                     + P_other_io_devices",
                ),
                ("eta", "0.8"),
            ],
        )
        .expect("bindings parse");

    system
}

/// The InfoPad system, compiled against `registry` — the sweep and
/// Monte-Carlo workloads replay this plan instead of re-deriving the
/// whole hierarchy (nested sub-sheets included) per point.
pub fn compiled(registry: &Registry) -> CompiledSheet {
    CompiledSheet::compile(&sheet(), registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerPlay;

    #[test]
    fn total_matches_figure5() {
        let pp = PowerPlay::new();
        let report = pp.play(&sheet()).unwrap();
        let total = report.total_power().value();
        assert!(
            (10.0..11.5).contains(&total),
            "expected ~10.9 W, got {total:.2} W"
        );
    }

    #[test]
    fn converters_dissipate_a_quarter_of_the_load() {
        // eta = 0.8 -> P_diss = load/4; converter row must equal exactly
        // 20% of the system total (diss = total - load, load = 0.8 total).
        let pp = PowerPlay::new();
        let report = pp.play(&sheet()).unwrap();
        let conv = report.row("Voltage Converters").unwrap().power().value();
        let total = report.total_power().value();
        let load = total - conv;
        assert!((conv - load * 0.25).abs() < 1e-9);
    }

    #[test]
    fn display_dominates_the_breakdown() {
        // The classic InfoPad result: the display path, not computation,
        // is the major consumer.
        let pp = PowerPlay::new();
        let report = pp.play(&sheet()).unwrap();
        let breakdown = report.breakdown();
        assert_eq!(breakdown[0].0, "Display LCDs");
        // Custom hardware is a negligible slice (the low-power chipset).
        let custom = report.row("Custom Hardware").unwrap().power().value();
        assert!(
            custom < 0.01 * report.total_power().value(),
            "custom hardware should be <1% of the system"
        );
    }

    #[test]
    fn custom_hardware_drills_down_to_the_luminance_chip() {
        let pp = PowerPlay::new();
        let report = pp.play(&sheet()).unwrap();
        let custom = report.row("Custom Hardware").unwrap();
        let sub = custom.sub_report().expect("custom hardware is a sub-sheet");
        let luminance = sub.row("Luminance Chip").expect("nested row");
        // The Figure 3 decoder runs at the system's globals: ~150 uW.
        let uw = luminance.power().value() * 1e6;
        assert!((100.0..200.0).contains(&uw), "luminance at {uw:.0} uW");
        // And the chrominance row decodes at half rate -> less power.
        let chroma = sub.row("Chrominance Chips").unwrap();
        assert!(chroma.power() < luminance.power());
    }

    #[test]
    fn compiled_replay_matches_full_play() {
        // The acceptance sheet for the compiled engine: replaying the
        // plan (with and without overrides) is bit-identical to the
        // clone-mutate-play path through the full hierarchy.
        let pp = PowerPlay::new();
        let plan = compiled(pp.registry());
        assert_eq!(plan.play().unwrap(), pp.play(&sheet()).unwrap());
        let mut hot = sheet();
        hot.set_global_value("vdd", 3.0);
        assert_eq!(
            plan.play_with(&[("vdd", 3.0)]).unwrap(),
            pp.play(&hot).unwrap()
        );
    }

    #[test]
    fn radio_duty_delta_replays_incrementally() {
        use powerplay_sheet::{DeltaOutcome, ReplayState};
        // The knob the incremental benchmarks turn: a radio_duty change
        // must re-evaluate only the radio row and the converters fed by
        // its power, not the whole system.
        let pp = PowerPlay::new();
        let plan = compiled(pp.registry());
        let mut state = ReplayState::new();
        plan.replay_delta(&mut state, &[]).unwrap();
        let delta = plan
            .replay_delta(&mut state, &[("radio_duty", 0.25)])
            .unwrap();
        assert_eq!(state.last_outcome(), DeltaOutcome::Incremental);
        let dirty = state.last_dirty_rows().unwrap();
        assert!(
            dirty < plan.row_count(),
            "{dirty} of {} rows dirty",
            plan.row_count()
        );
        assert_eq!(delta, plan.play_with(&[("radio_duty", 0.25)]).unwrap());
    }

    #[test]
    fn mixed_supply_subsystems_coexist() {
        // Changing the digital supply reprices the custom hardware but
        // leaves data-sheet rows (LCD, radio, IO) untouched.
        let pp = PowerPlay::new();
        let base = pp.play(&sheet()).unwrap();
        let mut hot = sheet();
        hot.set_global("vdd", "3.0").unwrap();
        let scaled = pp.play(&hot).unwrap();
        let lcd_base = base.row("Display LCDs").unwrap().power();
        let lcd_scaled = scaled.row("Display LCDs").unwrap().power();
        assert_eq!(lcd_base, lcd_scaled);
        let custom_base = base.row("Custom Hardware").unwrap().power();
        let custom_scaled = scaled.row("Custom Hardware").unwrap().power();
        assert!((custom_scaled / custom_base - 4.0).abs() < 1e-9);
    }
}
