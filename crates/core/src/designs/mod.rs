//! The paper's two worked designs, as library code.
//!
//! * [`luminance`] — the VQ video-decompression chip of Figures 1–3, the
//!   paper's architectural-comparison case study;
//! * [`infopad`] — the InfoPad portable multimedia terminal of Figure 5,
//!   the paper's system-level, mixed-mode case study.

pub mod infopad;
pub mod luminance;
