//! The luminance VQ decompression chip (paper Figures 1–3).
//!
//! Requirements fixed by the paper: a 256 × 128 screen refreshed at
//! 60 frames/s from a 30 frames/s source sets the pixel rate `f` to
//! 2 MHz, the read-buffer access rate to `f/16` and the write-buffer
//! rate to `f/32`. Two architectures decode the stream:
//!
//! * **Figure 1** ([`LuminanceArch::DirectLut`]): the 4096 × 6 look-up
//!   table is addressed once per pixel;
//! * **Figure 3** ([`LuminanceArch::GroupedLut`]): a 1024 × 24
//!   organization exploits locality of reference — each access yields
//!   four pixels, so the memory runs at `f/4` and only one multiplexer
//!   and register switch at the full 2 MHz.

use powerplay_library::Registry;
use powerplay_sheet::{CompiledSheet, Sheet};

/// Which decoder architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LuminanceArch {
    /// Figure 1: per-pixel LUT access.
    DirectLut,
    /// Figure 3: grouped (4-word) LUT access.
    GroupedLut,
}

/// Builds the decoder design sheet for `arch` at the paper's operating
/// point (1.5 V, 2 MHz).
///
/// ```
/// use powerplay::designs::luminance::{sheet, LuminanceArch};
/// use powerplay::PowerPlay;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pp = PowerPlay::new();
/// let a = pp.play(&sheet(LuminanceArch::DirectLut))?.total_power();
/// let b = pp.play(&sheet(LuminanceArch::GroupedLut))?.total_power();
/// assert!(a / b > 4.0, "grouping wins ~5x");
/// # Ok(())
/// # }
/// ```
pub fn sheet(arch: LuminanceArch) -> Sheet {
    let mut sheet = Sheet::new(match arch {
        LuminanceArch::DirectLut => "Luminance (Figure 1)",
        LuminanceArch::GroupedLut => "Luminance (Figure 3)",
    });
    // Globals exactly as in the paper's Figure 2 footer rows.
    sheet.set_global("vdd", "1.5").expect("literal parses");
    sheet.set_global("f", "2MHz").expect("literal parses");

    // Ping-pong frame buffers: 2048 8-bit codes; a buffer is read twice
    // as often as it is written.
    sheet
        .add_element_row(
            "Read Bank",
            "ucb/sram",
            [("words", "2048"), ("bits", "8"), ("f", "f / 16")],
        )
        .expect("bindings parse");
    sheet
        .add_element_row(
            "Write Bank",
            "ucb/sram",
            [("words", "2048"), ("bits", "8"), ("f", "f / 32")],
        )
        .expect("bindings parse");

    match arch {
        LuminanceArch::DirectLut => {
            sheet
                .add_element_row(
                    "Look Up Table",
                    "ucb/sram",
                    [("words", "4096"), ("bits", "6")],
                )
                .expect("bindings parse");
        }
        LuminanceArch::GroupedLut => {
            sheet
                .add_element_row(
                    "Look Up Table",
                    "ucb/sram",
                    [("words", "1024"), ("bits", "24"), ("f", "f / 4")],
                )
                .expect("bindings parse");
            sheet
                .add_element_row(
                    "Holding Register",
                    "ucb/register",
                    [("bits", "24"), ("f", "f / 4")],
                )
                .expect("bindings parse");
            sheet
                .add_element_row("Output Mux", "ucb/mux", [("inputs", "4"), ("bits", "6")])
                .expect("bindings parse");
        }
    }
    sheet
        .add_element_row("Output Register", "ucb/register", [("bits", "6")])
        .expect("bindings parse");
    sheet
}

/// The decoder for `arch`, compiled against `registry` and ready for
/// repeated what-if evaluation (`plan.play_with(&[("vdd", v)])`).
///
/// ```
/// use powerplay::designs::luminance::{compiled, LuminanceArch};
/// use powerplay::PowerPlay;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pp = PowerPlay::new();
/// let plan = compiled(LuminanceArch::GroupedLut, pp.registry());
/// let base = plan.play()?.total_power();
/// let hot = plan.play_with(&[("vdd", 3.0)])?.total_power();
/// assert!((hot / base - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn compiled(arch: LuminanceArch, registry: &Registry) -> CompiledSheet {
    CompiledSheet::compile(&sheet(arch), registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::Comparison;
    use crate::PowerPlay;
    use powerplay_vqsim::{simulate, Architecture, SimConfig, VideoSource};

    #[test]
    fn figure2_estimate_magnitude() {
        // The paper's original architecture totals ~0.75 mW ("~1/5 that of
        // the original design" with the alternative at ~150 uW).
        let pp = PowerPlay::new();
        let report = pp.play(&sheet(LuminanceArch::DirectLut)).unwrap();
        let total = report.total_power().value();
        assert!(
            (0.5e-3..1.0e-3).contains(&total),
            "Figure 1 total {total} W, expected ~0.75 mW"
        );
        // The per-pixel LUT dominates, as the architecture comparison
        // requires.
        let breakdown = report.breakdown();
        assert_eq!(breakdown[0].0, "Look Up Table");
        assert!(breakdown[0].1 > 0.8);
    }

    #[test]
    fn figure3_estimate_magnitude_and_ratio() {
        let pp = PowerPlay::new();
        let a = pp
            .play(&sheet(LuminanceArch::DirectLut))
            .unwrap()
            .total_power();
        let b = pp
            .play(&sheet(LuminanceArch::GroupedLut))
            .unwrap()
            .total_power();
        let b_uw = b.value() * 1e6;
        assert!(
            (100.0..200.0).contains(&b_uw),
            "Figure 3 total {b_uw:.1} uW, expected ~150 uW"
        );
        let ratio = a / b;
        assert!(
            (4.0..6.5).contains(&ratio),
            "expected ~5x improvement, got {ratio:.2}"
        );
    }

    #[test]
    fn row_rates_match_paper() {
        let pp = PowerPlay::new();
        let report = pp.play(&sheet(LuminanceArch::DirectLut)).unwrap();
        assert_eq!(report.row("Read Bank").unwrap().rate(), Some(125e3));
        assert_eq!(report.row("Write Bank").unwrap().rate(), Some(62.5e3));
        assert_eq!(report.row("Look Up Table").unwrap().rate(), Some(2e6));
    }

    #[test]
    fn estimate_within_octave_of_simulated_measurement() {
        // The headline accuracy claim, with the cycle-level simulator
        // standing in for the measured chip (150 uW est vs 100 uW meas).
        let pp = PowerPlay::new();
        let video = VideoSource::synthetic(42, 4);
        for (arch, sim_arch) in [
            (LuminanceArch::DirectLut, Architecture::DirectLut),
            (LuminanceArch::GroupedLut, Architecture::GroupedLut),
        ] {
            let estimate = pp.play(&sheet(arch)).unwrap().total_power();
            let measured = simulate(sim_arch, &video, SimConfig::paper()).total_power();
            let comparison = Comparison::new(estimate, measured);
            assert!(comparison.within_octave(), "{arch:?}: {comparison}");
            assert!(
                comparison.is_conservative(),
                "{arch:?}: neglecting correlations must overestimate: {comparison}"
            );
        }
    }

    #[test]
    fn voltage_scaling_exploration_works_on_the_design() {
        // Dropping the supply from 1.5 V to 1.1 V (still meeting 2 MHz)
        // saves roughly (1.5/1.1)^2.
        let pp = PowerPlay::new();
        let mut low = sheet(LuminanceArch::GroupedLut);
        low.set_global("vdd", "1.1").unwrap();
        let p_hi = pp
            .play(&sheet(LuminanceArch::GroupedLut))
            .unwrap()
            .total_power();
        let p_lo = pp.play(&low).unwrap().total_power();
        let expected = (1.5f64 / 1.1).powi(2);
        assert!((p_hi / p_lo - expected).abs() < 1e-9);
    }
}
