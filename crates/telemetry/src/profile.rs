//! Lightweight tracing spans forming a per-thread tree.
//!
//! Spans are RAII guards. Outside a [`capture`] they cost one
//! thread-local flag read — cheap enough to leave in the replay hot
//! path. Inside a capture, each span records its wall time and nests
//! under the enclosing span, producing a [`ProfileNode`] tree the CLI's
//! `profile` verb renders:
//!
//! ```text
//! play InfoPad                           214.0 µs  100.0%
//!   row Custom Hardware                  112.1 µs   52.4%
//!     row Luminance Chip                  41.9 µs   19.6%
//! ```
//!
//! Captures are per-thread: spans on other threads (e.g. what-if pool
//! workers) are not attributed to a capture started here.

use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

use powerplay_json::Json;

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static STACK: RefCell<Vec<PendingNode>> = const { RefCell::new(Vec::new()) };
}

struct PendingNode {
    name: String,
    children: Vec<ProfileNode>,
}

/// One node of a captured span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span name.
    pub name: String,
    /// Wall time between span creation and drop.
    pub duration: Duration,
    /// Nested spans, in completion order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Renders the tree as indented text with durations and the share
    /// of the root's wall time.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.duration.as_secs_f64().max(f64::MIN_POSITIVE);
        self.render_into(&mut out, 0, total);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, total: f64) {
        let label = format!("{}{}", "  ".repeat(depth), self.name);
        let share = 100.0 * self.duration.as_secs_f64() / total;
        out.push_str(&format!(
            "{label:<48} {:>12}  {share:>5.1}%\n",
            format_duration(self.duration)
        ));
        for child in &self.children {
            child.render_into(out, depth + 1, total);
        }
    }

    /// The tree as JSON (`{name, seconds, children}`).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.as_str())),
            ("seconds", Json::from(self.duration.as_secs_f64())),
            (
                "children",
                self.children.iter().map(ProfileNode::to_json).collect(),
            ),
        ])
    }

    /// Total span count, the root included.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProfileNode::span_count)
            .sum::<usize>()
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Whether a [`capture`] is active on this thread.
pub fn is_capturing() -> bool {
    CAPTURING.with(Cell::get)
}

/// Runs `f` with span capture enabled on this thread and returns its
/// result together with the span tree rooted at `name`.
pub fn capture<R>(name: &str, f: impl FnOnce() -> R) -> (R, ProfileNode) {
    let was = CAPTURING.with(|c| c.replace(true));
    STACK.with(|s| {
        s.borrow_mut().push(PendingNode {
            name: name.to_owned(),
            children: Vec::new(),
        })
    });
    let start = Instant::now();
    let result = f();
    let duration = start.elapsed();
    let root = STACK.with(|s| s.borrow_mut().pop().expect("capture root present"));
    CAPTURING.with(|c| c.set(was));
    (
        result,
        ProfileNode {
            name: root.name,
            duration,
            children: root.children,
        },
    )
}

/// An RAII span: records wall time under the enclosing span while a
/// capture is active, and is a no-op (one flag read) otherwise.
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    /// Stack depth right after this span's node was pushed; the drop
    /// only pops when the depth still matches, so a span escaping its
    /// capture (or dropped out of order) discards its record instead of
    /// corrupting another tree.
    depth: usize,
}

/// Opens a span named `name`.
pub fn span(name: &str) -> Span {
    span_lazy(|| name.to_owned())
}

/// Opens a span whose name is only computed when a capture is active —
/// use this in hot paths where the name needs a `format!`.
pub fn span_lazy(name: impl FnOnce() -> String) -> Span {
    if !is_capturing() {
        return Span {
            start: None,
            depth: 0,
        };
    }
    let depth = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(PendingNode {
            name: name(),
            children: Vec::new(),
        });
        stack.len()
    });
    Span {
        start: Some(Instant::now()),
        depth,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration = start.elapsed();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.len() != self.depth {
                return;
            }
            if let Some(node) = stack.pop() {
                let finished = ProfileNode {
                    name: node.name,
                    duration,
                    children: node.children,
                };
                if let Some(parent) = stack.last_mut() {
                    parent.children.push(finished);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_outside_capture_are_noops() {
        assert!(!is_capturing());
        let s = span("ignored");
        drop(s);
        STACK.with(|st| assert!(st.borrow().is_empty()));
    }

    #[test]
    fn capture_builds_a_nested_tree() {
        let ((), tree) = capture("root", || {
            let _a = span("a");
            {
                let _b = span("b");
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert_eq!(tree.name, "root");
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].name, "a");
        assert_eq!(tree.children[0].children[0].name, "b");
        assert!(tree.duration >= tree.children[0].duration);
        assert!(tree.children[0].duration >= tree.children[0].children[0].duration);
        assert_eq!(tree.span_count(), 3);
    }

    #[test]
    fn sibling_spans_stay_siblings() {
        let ((), tree) = capture("root", || {
            drop(span("first"));
            drop(span("second"));
        });
        let names: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["first", "second"]);
    }

    #[test]
    fn lazy_names_are_not_computed_outside_captures() {
        let mut computed = false;
        drop(span_lazy(|| {
            computed = true;
            "x".into()
        }));
        assert!(!computed);
    }

    #[test]
    fn render_contains_percentages() {
        let ((), tree) = capture("root", || {
            let _x = span("leaf");
            std::thread::sleep(Duration::from_millis(1));
        });
        let text = tree.render();
        assert!(text.contains("root"), "{text}");
        assert!(text.contains("leaf"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn to_json_mirrors_the_tree() {
        let ((), tree) = capture("root", || drop(span("leaf")));
        let json = tree.to_json();
        assert_eq!(json["name"].as_str(), Some("root"));
        assert_eq!(json["children"][0]["name"].as_str(), Some("leaf"));
    }

    #[test]
    fn captures_restore_prior_state() {
        let ((), _outer) = capture("outer", || {
            let ((), inner) = capture("inner", || drop(span("leaf")));
            assert_eq!(inner.children.len(), 1);
            assert!(is_capturing());
        });
        assert!(!is_capturing());
    }
}
