//! The metric registry: named handles, exposition, snapshots.
//!
//! The registry is only touched when a metric is *registered* (a
//! write-locked map insert, once per process per series) or *scraped*
//! (a read-locked walk). The instruments it hands out are `Arc` handles
//! whose updates never come back here — that is what keeps the hot path
//! lock-free.

use std::collections::BTreeMap;
use std::sync::{OnceLock, RwLock};

use crate::metrics::{
    Counter, CounterCore, Gauge, GaugeCore, Histogram, HistogramCore, HistogramUnit, BUCKETS,
};
use crate::snapshot::{HistogramSnapshot, TelemetrySnapshot};

/// What a family's series are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn exposition(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Series {
    Counter(std::sync::Arc<CounterCore>),
    Gauge(std::sync::Arc<GaugeCore>),
    Histogram(std::sync::Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the rendered label set (`""` or `{k="v",...}`), so
    /// exposition is deterministic.
    series: BTreeMap<String, Series>,
}

/// A collection of named metrics.
///
/// Most code uses the process-wide [`global()`] registry; tests that
/// need isolation can create their own with [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

/// The process-global registry every layer reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Renders a label set as Prometheus text, `{k="v",k2="v2"}` or `""`.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        kind: Kind,
        make: impl FnOnce() -> Series,
        get: impl Fn(&Series) -> Option<T>,
    ) -> T {
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name `{name}`"
        );
        let label_key = render_labels(labels);
        let mut families = self.families.write().expect("registry poisoned");
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered twice with different kinds"
        );
        let series = family.series.entry(label_key).or_insert_with(make);
        get(series).expect("kind checked above")
    }

    /// Registers (or fetches) a counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or fetches) a labelled counter series.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.register(
            name,
            labels,
            help,
            Kind::Counter,
            || Series::Counter(std::sync::Arc::default()),
            |s| match s {
                Series::Counter(core) => Some(Counter(core.clone())),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or fetches) a labelled gauge series.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.register(
            name,
            labels,
            help,
            Kind::Gauge,
            || Series::Gauge(std::sync::Arc::default()),
            |s| match s {
                Series::Gauge(core) => Some(Gauge(core.clone())),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Registers (or fetches) a labelled histogram series.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        self.register(
            name,
            labels,
            help,
            Kind::Histogram,
            || Series::Histogram(std::sync::Arc::default()),
            |s| match s {
                Series::Histogram(core) => Some(Histogram(core.clone())),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a histogram whose observations are plain
    /// counts (rows, items) rather than nanoseconds; its bucket bounds
    /// and sum render verbatim on exposition instead of in seconds.
    pub fn value_histogram(&self, name: &str, help: &str) -> Histogram {
        self.value_histogram_with(name, &[], help)
    }

    /// Registers (or fetches) a labelled count-valued histogram series.
    pub fn value_histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Histogram {
        self.register(
            name,
            labels,
            help,
            Kind::Histogram,
            || {
                Series::Histogram(std::sync::Arc::new(HistogramCore::with_unit(
                    HistogramUnit::Count,
                )))
            },
            |s| match s {
                Series::Histogram(core) => Some(Histogram(core.clone())),
                _ => None,
            },
        )
    }

    /// Renders every registered series in the Prometheus text exposition
    /// format (version 0.0.4) — the body of `GET /metrics`.
    ///
    /// Histograms are emitted as cumulative `_bucket{le=...}` series in
    /// seconds, trimmed to the occupied bucket range (cumulative counts
    /// stay exact; Prometheus allows any subset of bounds as long as
    /// `+Inf` is present).
    pub fn prometheus(&self) -> String {
        let families = self.families.read().expect("registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.exposition()));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(core) => {
                        let v = Counter(core.clone()).get();
                        out.push_str(&format!("{name}{labels} {v}\n"));
                    }
                    Series::Gauge(core) => {
                        let v = Gauge(core.clone()).get();
                        out.push_str(&format!("{name}{labels} {v}\n"));
                    }
                    Series::Histogram(core) => {
                        let h = Histogram(core.clone());
                        let unit = h.unit();
                        let (buckets, overflow) = h.bucket_counts();
                        let first = buckets.iter().position(|&c| c > 0).unwrap_or(BUCKETS);
                        let last = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
                        let mut cumulative = 0u64;
                        for (i, &count) in buckets.iter().enumerate() {
                            cumulative += count;
                            if i < first || i > last {
                                continue;
                            }
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                merge_le(labels, unit.bucket_le(i)),
                            ));
                        }
                        let _ = overflow; // +Inf == count, by construction
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            merge_le_inf(labels),
                            h.count()
                        ));
                        out.push_str(&format!("{name}_sum{labels} {:e}\n", h.sum_in_unit()));
                        out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }

    /// A point-in-time snapshot of every registered series.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let families = self.families.read().expect("registry poisoned");
        let mut snap = TelemetrySnapshot::default();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                let series_name = format!("{name}{labels}");
                match series {
                    Series::Counter(core) => {
                        snap.counters
                            .push((series_name, Counter(core.clone()).get()));
                    }
                    Series::Gauge(core) => {
                        snap.gauges.push((series_name, Gauge(core.clone()).get()));
                    }
                    Series::Histogram(core) => {
                        let h = Histogram(core.clone());
                        let unit = h.unit();
                        let (buckets, overflow) = h.bucket_counts();
                        let mut cumulative = Vec::with_capacity(BUCKETS + 1);
                        let mut acc = 0u64;
                        for (i, &count) in buckets.iter().enumerate() {
                            acc += count;
                            cumulative.push((unit.bucket_le(i), acc));
                        }
                        acc += overflow;
                        cumulative.push((f64::INFINITY, acc));
                        snap.histograms.push(HistogramSnapshot {
                            name: series_name,
                            count: h.count(),
                            sum_seconds: h.sum_in_unit(),
                            buckets: cumulative,
                        });
                    }
                }
            }
        }
        snap
    }
}

/// Inserts `le="<bound>"` into a rendered label set.
fn merge_le(labels: &str, le_seconds: f64) -> String {
    let le = format!("le=\"{le_seconds:e}\"");
    if labels.is_empty() {
        format!("{{{le}}}")
    } else {
        format!("{}, {le}}}", &labels[..labels.len() - 1])
    }
}

fn merge_le_inf(labels: &str) -> String {
    if labels.is_empty() {
        "{le=\"+Inf\"}".to_owned()
    } else {
        format!("{}, le=\"+Inf\"}}", &labels[..labels.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ENABLED_TEST_LOCK;

    #[test]
    fn handles_are_shared_per_name() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let r = Registry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let r = Registry::new();
        let ok = r.counter_with("req_total", &[("class", "2xx")], "requests");
        let bad = r.counter_with("req_total", &[("class", "5xx")], "requests");
        ok.add(3);
        bad.inc();
        let text = r.prometheus();
        assert!(text.contains("req_total{class=\"2xx\"} 3"), "{text}");
        assert!(text.contains("req_total{class=\"5xx\"} 1"), "{text}");
        // One HELP/TYPE header for the family.
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "as counter");
        r.gauge("m", "as gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("has space", "nope");
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency");
        h.observe_ns(100); // bucket 7 (128 ns)
        h.observe_ns(100);
        h.observe_ns(1_000_000); // bucket 20
        let text = r.prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_count 3"));
        // Cumulative: the last finite bucket already counts everything.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn value_histogram_buckets_render_as_counts() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let r = Registry::new();
        let h = r.value_histogram("dirty_rows", "rows touched per delta");
        h.observe_value(3); // bucket 2 (le 4)
        h.observe_value(100); // bucket 7 (le 128)
        let text = r.prometheus();
        assert!(text.contains("# TYPE dirty_rows histogram"), "{text}");
        // Bounds are raw counts, not 1e-9-scaled seconds.
        assert!(text.contains("dirty_rows_bucket{le=\"4e0\"} 1"), "{text}");
        assert!(
            text.contains("dirty_rows_bucket{le=\"1.28e2\"} 2"),
            "{text}"
        );
        assert!(text.contains("dirty_rows_sum 1.03e2"), "{text}");
        let snap = r.snapshot();
        let hist = snap.histogram("dirty_rows").unwrap();
        assert_eq!(hist.sum_seconds, 103.0);
        assert_eq!(hist.buckets[2], (4.0, 1));
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let r = Registry::new();
        r.counter("c_total", "c").add(7);
        r.gauge("g", "g").set(-2);
        r.histogram("h_seconds", "h").observe_ns(50);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c_total"), Some(7));
        assert_eq!(snap.gauge("g"), Some(-2));
        let h = snap.histogram("h_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets.last().unwrap().1, 1);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let a = global().counter("singleton_probe_total", "probe");
        let b = global().counter("singleton_probe_total", "probe");
        a.inc();
        assert!(b.get() >= 1);
    }
}
