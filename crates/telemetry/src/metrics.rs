//! The three instruments: counter, gauge, log2-bucketed histogram.
//!
//! All updates are relaxed atomics. The instruments are handles
//! (`Arc`-shared with the registry that created them), so cloning one
//! into a hot loop costs a reference-count bump once, and every update
//! after that is a single `fetch_add`.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Global kill switch. Instruments check it with one relaxed load; when
/// off, updates (and timer `Instant::now` calls) are skipped entirely.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the whole telemetry pipeline on or off (default: on).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// --- counter ---------------------------------------------------------------

#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    value: AtomicU64,
}

/// A monotonically increasing counter (`*_total` series).
#[derive(Debug, Clone)]
pub struct Counter(pub(crate) Arc<CounterCore>);

impl Counter {
    /// A counter detached from any registry (tests, scratch use).
    pub fn detached() -> Counter {
        Counter(Arc::new(CounterCore::default()))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

// --- gauge -----------------------------------------------------------------

#[derive(Debug, Default)]
pub(crate) struct GaugeCore {
    value: AtomicI64,
}

/// A value that goes up and down (queue depths, in-flight requests).
#[derive(Debug, Clone)]
pub struct Gauge(pub(crate) Arc<GaugeCore>);

impl Gauge {
    /// A gauge detached from any registry (tests, scratch use).
    pub fn detached() -> Gauge {
        Gauge(Arc::new(GaugeCore::default()))
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        if enabled() {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

// --- histogram -------------------------------------------------------------

/// Number of finite log2 buckets. Bucket `i` holds observations of at
/// most `2^i` nanoseconds; `2^39 ns` ≈ 9.2 minutes, far beyond any
/// request this server should survive. Larger values land in the
/// overflow (`+Inf`) bucket.
pub const BUCKETS: usize = 40;

/// What a histogram's raw `u64` observations mean, which fixes how its
/// bucket bounds and sum are rendered on exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistogramUnit {
    /// Observations are nanoseconds; bounds and sums render in seconds.
    #[default]
    Seconds,
    /// Observations are plain counts (rows, items); bounds and sums
    /// render verbatim.
    Count,
}

impl HistogramUnit {
    /// Upper bound of finite bucket `i`, in this unit's rendered scale.
    pub(crate) fn bucket_le(self, i: usize) -> f64 {
        match self {
            HistogramUnit::Seconds => (1u64 << i) as f64 * 1e-9,
            HistogramUnit::Count => (1u64 << i) as f64,
        }
    }

    /// A raw observation sum in this unit's rendered scale.
    pub(crate) fn scale_sum(self, raw: u64) -> f64 {
        match self {
            HistogramUnit::Seconds => raw as f64 * 1e-9,
            HistogramUnit::Count => raw as f64,
        }
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_ns: AtomicU64,
    pub(crate) unit: HistogramUnit,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore::with_unit(HistogramUnit::Seconds)
    }
}

impl HistogramCore {
    pub(crate) fn with_unit(unit: HistogramUnit) -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            unit,
        }
    }
}

/// A latency histogram with log2-of-nanoseconds buckets.
///
/// `observe` costs one `leading_zeros` and three relaxed `fetch_add`s;
/// there is no lock and no allocation. Exposed to Prometheus as a
/// classic cumulative `_bucket{le=...}` family in seconds.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl Histogram {
    /// A histogram detached from any registry (tests, scratch use).
    pub fn detached() -> Histogram {
        Histogram(Arc::new(HistogramCore::default()))
    }

    /// A detached histogram whose observations are plain counts.
    pub fn detached_values() -> Histogram {
        Histogram(Arc::new(HistogramCore::with_unit(HistogramUnit::Count)))
    }

    /// Index of the finite bucket for `ns`, or `BUCKETS` for overflow.
    pub(crate) fn bucket_index(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            // ceil(log2(ns)): values in (2^(i-1), 2^i] share bucket i.
            (64 - (ns - 1).leading_zeros()) as usize
        }
    }

    /// Records a raw nanosecond observation.
    pub fn observe_ns(&self, ns: u64) {
        if !enabled() {
            return;
        }
        let idx = Self::bucket_index(ns);
        if idx < BUCKETS {
            self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.0.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records a duration.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a plain-count observation (same bucketing as
    /// [`Histogram::observe_ns`]; the unit only changes how bounds and
    /// sums render on exposition).
    pub fn observe_value(&self, v: u64) {
        self.observe_ns(v);
    }

    /// Starts an RAII timer that observes its elapsed time on drop.
    /// When telemetry is disabled the timer never reads the clock.
    pub fn start_timer(&self) -> Timer {
        Timer {
            histogram: self.clone(),
            start: enabled().then(Instant::now),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.0.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Sum of observations in the histogram's rendered unit (seconds
    /// for latency histograms, raw counts for value histograms).
    pub fn sum_in_unit(&self) -> f64 {
        self.0.unit.scale_sum(self.0.sum_ns.load(Ordering::Relaxed))
    }

    /// The unit this histogram renders in.
    pub(crate) fn unit(&self) -> HistogramUnit {
        self.0.unit
    }

    /// Non-cumulative per-bucket counts plus the overflow count.
    pub(crate) fn bucket_counts(&self) -> ([u64; BUCKETS], u64) {
        let counts = std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed));
        (counts, self.0.overflow.load(Ordering::Relaxed))
    }
}

/// RAII timer from [`Histogram::start_timer`].
#[derive(Debug)]
pub struct Timer {
    histogram: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Stops the timer early, recording now instead of at drop.
    pub fn stop(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.observe(start.elapsed());
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.record();
    }
}

/// Tests toggling the global [`ENABLED`] switch write-lock this; tests
/// that record observations read-lock it, so a parallel test run never
/// observes the switch mid-flip.
#[cfg(test)]
pub(crate) static ENABLED_TEST_LOCK: std::sync::RwLock<()> = std::sync::RwLock::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let c = Counter::detached();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let g = Gauge::detached();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 11);
        assert!(Histogram::bucket_index(u64::MAX) >= BUCKETS);
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let h = Histogram::detached();
        h.observe_ns(1_000);
        h.observe_ns(3_000);
        h.observe(Duration::from_micros(2));
        assert_eq!(h.count(), 3);
        assert!((h.sum_seconds() - 6e-6).abs() < 1e-12);
        let (buckets, overflow) = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>() + overflow, 3);
    }

    #[test]
    fn oversized_observation_lands_in_overflow() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let h = Histogram::detached();
        h.observe_ns(u64::MAX);
        let (buckets, overflow) = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 0);
        assert_eq!(overflow, 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn timer_observes_on_drop() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let h = Histogram::detached();
        {
            let _t = h.start_timer();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum_seconds() >= 1e-3);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let _off = ENABLED_TEST_LOCK.write().unwrap();
        let c = Counter::detached();
        let h = Histogram::detached();
        set_enabled(false);
        c.inc();
        h.observe_ns(5);
        let t = h.start_timer();
        drop(t);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let c = Counter::detached();
        let h = Histogram::detached();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1_000u64 {
                        c.inc();
                        h.observe_ns(i + 1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8_000);
        assert_eq!(h.count(), 8_000);
    }
}
