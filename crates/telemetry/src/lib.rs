//! `powerplay-telemetry` — measurement from inside the running system.
//!
//! The paper's pitch is *instant* what-if recomputation served over the
//! web; serving that at scale is impossible to tune or trust without
//! numbers from the live serving path, not just offline criterion runs.
//! This crate is the plumbing every other layer reports through:
//!
//! * [`Counter`], [`Gauge`], [`Histogram`] — lock-free instruments.
//!   Updates are single relaxed atomic operations; histograms bucket
//!   latencies by log2 of nanoseconds, so `observe` is a shift, a
//!   `leading_zeros`, and three `fetch_add`s. No locks anywhere on the
//!   hot path.
//! * [`Registry`] — named handles. Registration (a lock-guarded map
//!   insert) happens once per process per metric; after that the handle
//!   is an `Arc` clone and updates never touch the registry again.
//!   [`global()`] is the process-wide instance every layer shares.
//! * [`profile`] — lightweight RAII spans forming a tree. When no
//!   capture is active a span is one thread-local flag read; under
//!   [`profile::capture`] it records wall time into a [`profile::ProfileNode`]
//!   tree (the CLI's `profile` verb prints it).
//! * [`TelemetrySnapshot`] — a point-in-time JSON export of every
//!   registered series (histograms summarized by count/sum/quantiles),
//!   which benches write into `BENCH_serving.json`.
//! * [`Registry::prometheus`] — the text exposition format
//!   (version 0.0.4) behind the web app's `GET /metrics`.
//!
//! The whole pipeline can be switched off with [`set_enabled`]; a
//! disabled instrument is a single relaxed load. The overhead budget is
//! <5% on compiled replay with telemetry *enabled* (see DESIGN.md §9);
//! disabling exists for measuring the instrumentation itself, not for
//! making it affordable.

mod metrics;
pub mod profile;
mod registry;
mod snapshot;

pub use metrics::{enabled, set_enabled, Counter, Gauge, Histogram, HistogramUnit, Timer, BUCKETS};
pub use registry::{global, Registry};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot};
