//! Point-in-time JSON exports of the registry.

use powerplay_json::Json;

/// Everything one series of a histogram knew at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Rendered series name, labels included.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations in the histogram's rendered unit — seconds
    /// for latency histograms, raw values for count-valued histograms.
    pub sum_seconds: f64,
    /// `(le, cumulative_count)` in the histogram's rendered unit,
    /// ending with `(+Inf, count)`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-bucket-upper-bound estimate of the `q`-quantile, in
    /// seconds. Log2 buckets bound the answer within 2x — good enough
    /// for "did p99 regress by an order of magnitude".
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_seconds(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = (self.count as f64 * q).ceil().max(1.0) as u64;
        self.buckets
            .iter()
            .find(|(_, cumulative)| *cumulative >= rank)
            .map(|(le, _)| *le)
    }

    fn to_json(&self) -> Json {
        let mut members = vec![
            ("name", Json::from(self.name.as_str())),
            ("count", Json::from(self.count as f64)),
            ("sum_seconds", Json::from(self.sum_seconds)),
        ];
        for (key, q) in [
            ("p50_seconds", 0.5),
            ("p90_seconds", 0.9),
            ("p99_seconds", 0.99),
        ] {
            if let Some(v) = self.quantile_seconds(q).filter(|v| v.is_finite()) {
                members.push((key, Json::from(v)));
            }
        }
        Json::object(members)
    }
}

/// A point-in-time export of every registered series, JSON-serializable
/// — the payload benches write into `BENCH_serving.json` so serving-path
/// numbers can be diffed across commits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(series name, value)`.
    pub counters: Vec<(String, u64)>,
    /// `(series name, value)`.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, summarized.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Looks a counter up by its rendered series name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks a gauge up by its rendered series name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks a histogram up by its rendered series name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The snapshot as JSON: counters and gauges verbatim, histograms
    /// summarized by count/sum/quantile estimates (full bucket detail
    /// stays on the `/metrics` exposition, where a scraper wants it).
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "counters",
                Json::object(
                    self.counters
                        .iter()
                        .map(|(name, v)| (name.as_str(), Json::from(*v as f64))),
                ),
            ),
            (
                "gauges",
                Json::object(
                    self.gauges
                        .iter()
                        .map(|(name, v)| (name.as_str(), Json::from(*v as f64))),
                ),
            ),
            (
                "histograms",
                self.histograms
                    .iter()
                    .map(HistogramSnapshot::to_json)
                    .collect(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::ENABLED_TEST_LOCK;
    use crate::Registry;

    #[test]
    fn quantiles_bound_the_observations() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let r = Registry::new();
        let h = r.histogram("q_seconds", "q");
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.observe_ns(ns);
        }
        let snap = r.snapshot();
        let hist = snap.histogram("q_seconds").unwrap();
        let p50 = hist.quantile_seconds(0.5).unwrap();
        // Median observation is 400 ns; the log2 bucket bound is 512 ns.
        assert!((400e-9..=1024e-9).contains(&p50), "p50 {p50}");
        let p100 = hist.quantile_seconds(1.0).unwrap();
        assert!(p100 >= 100_000e-9);
        assert!(hist.quantile_seconds(0.0).unwrap() <= 128e-9);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let r = Registry::new();
        r.histogram("empty_seconds", "e");
        let snap = r.snapshot();
        assert_eq!(
            snap.histogram("empty_seconds")
                .unwrap()
                .quantile_seconds(0.5),
            None
        );
    }

    #[test]
    fn snapshot_json_shape() {
        let _on = ENABLED_TEST_LOCK.read().unwrap();
        let r = Registry::new();
        r.counter("a_total", "a").add(2);
        r.gauge("b", "b").set(3);
        r.histogram("c_seconds", "c").observe_ns(1000);
        let json = r.snapshot().to_json();
        assert_eq!(json["counters"]["a_total"].as_f64(), Some(2.0));
        assert_eq!(json["gauges"]["b"].as_f64(), Some(3.0));
        assert_eq!(json["histograms"][0]["count"].as_f64(), Some(1.0));
        // Round-trips through the JSON parser.
        let text = json.to_string();
        assert!(powerplay_json::Json::parse(&text).is_ok(), "{text}");
    }
}
