//! Cycle-level simulation of the vector-quantization luminance
//! decompression chip (paper Figures 1 and 3).
//!
//! The paper validates PowerPlay's estimate against *fabricated silicon*
//! (Chandrakasan's low-power chipset, ref \[4\]): the Figure 3 architecture
//! was estimated at ~150 µW and measured at ~100 µW. Silicon is a
//! hardware gate for a reproduction, so this crate substitutes a
//! cycle-accurate simulator that:
//!
//! * generates synthetic, *spatially correlated* video (smooth luminance
//!   fields, VQ-encoded through a trained codebook) — see [`video`];
//! * executes both decoder architectures access by access — the
//!   ping-pong frame buffers, the look-up table, the output registers and
//!   multiplexers — counting every memory access and every data-dependent
//!   bit toggle ([`arch`], [`energy`]);
//! * converts those counts to energy with the *same* UC Berkeley library
//!   capacitance coefficients the spreadsheet models use.
//!
//! Because real video toggles far fewer bit-lines than the spreadsheet's
//! "correlations neglected" assumption (α = 1 on every column), the
//! simulated "measurement" lands *below* the estimate — within the same
//! octave — exactly the estimate-vs-silicon relationship the paper
//! reports.
//!
//! ```
//! use powerplay_vqsim::{simulate, Architecture, SimConfig, VideoSource};
//!
//! let video = VideoSource::synthetic(7, 4);
//! let report = simulate(Architecture::DirectLut, &video, SimConfig::paper());
//! assert!(report.total_power().value() > 0.0);
//! ```

pub mod arch;
pub mod energy;
pub mod video;

pub use arch::{simulate, Architecture, SimConfig};
pub use energy::{ComponentEnergy, SimReport};
pub use video::VideoSource;
