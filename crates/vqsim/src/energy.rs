//! Switching-event ledgers and the simulation report.

use std::fmt;

use powerplay_units::{Capacitance, Energy, Power, Time, Voltage};

/// Per-component tally of accesses, data-dependent bit toggles, and the
/// capacitance each switches.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEnergy {
    name: String,
    /// Capacitance switched unconditionally on every access (decoders,
    /// word lines, clock).
    cap_per_access: Capacitance,
    /// Capacitance switched per toggled data bit (bit-lines, output
    /// drivers, register slaves).
    cap_per_toggle: Capacitance,
    accesses: u64,
    bit_toggles: u64,
}

impl ComponentEnergy {
    /// Creates a ledger for one hardware block.
    pub fn new(
        name: impl Into<String>,
        cap_per_access: Capacitance,
        cap_per_toggle: Capacitance,
    ) -> ComponentEnergy {
        ComponentEnergy {
            name: name.into(),
            cap_per_access,
            cap_per_toggle,
            accesses: 0,
            bit_toggles: 0,
        }
    }

    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one access with `toggled_bits` data transitions.
    pub fn record(&mut self, toggled_bits: u32) {
        self.accesses += 1;
        self.bit_toggles += toggled_bits as u64;
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total data-bit toggles recorded.
    pub fn bit_toggles(&self) -> u64 {
        self.bit_toggles
    }

    /// Average toggles per access.
    pub fn toggles_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.bit_toggles as f64 / self.accesses as f64
        }
    }

    /// Total switched capacitance.
    pub fn switched_cap(&self) -> Capacitance {
        self.cap_per_access * self.accesses as f64 + self.cap_per_toggle * self.bit_toggles as f64
    }

    /// Energy at a full-rail supply: `C_total · V_DD²`.
    pub fn energy(&self, vdd: Voltage) -> Energy {
        self.switched_cap() * vdd * vdd
    }
}

/// The result of simulating a decoder architecture over a video clip.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    arch_name: String,
    vdd: Voltage,
    sim_time: Time,
    components: Vec<ComponentEnergy>,
}

impl SimReport {
    pub(crate) fn new(
        arch_name: String,
        vdd: Voltage,
        sim_time: Time,
        components: Vec<ComponentEnergy>,
    ) -> SimReport {
        SimReport {
            arch_name,
            vdd,
            sim_time,
            components,
        }
    }

    /// The simulated architecture's name.
    pub fn arch_name(&self) -> &str {
        &self.arch_name
    }

    /// Supply voltage of the run.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Wall-clock time the simulated clip represents.
    pub fn sim_time(&self) -> Time {
        self.sim_time
    }

    /// Per-component ledgers.
    pub fn components(&self) -> &[ComponentEnergy] {
        &self.components
    }

    /// One component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentEnergy> {
        self.components.iter().find(|c| c.name() == name)
    }

    /// Total energy over the clip.
    pub fn total_energy(&self) -> Energy {
        self.components.iter().map(|c| c.energy(self.vdd)).sum()
    }

    /// Average power: total energy / represented time.
    pub fn total_power(&self) -> Power {
        self.total_energy() / self.sim_time
    }

    /// One component's average power.
    pub fn component_power(&self, name: &str) -> Option<Power> {
        self.component(name)
            .map(|c| c.energy(self.vdd) / self.sim_time)
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} simulated {:.1} ms at {}",
            self.arch_name,
            self.sim_time.value() * 1e3,
            self.vdd
        )?;
        writeln!(
            f,
            "{:<18} {:>12} {:>14} {:>10} {:>12}",
            "component", "accesses", "toggles/access", "energy", "power"
        )?;
        for c in &self.components {
            writeln!(
                f,
                "{:<18} {:>12} {:>14.2} {:>10} {:>12}",
                c.name(),
                c.accesses(),
                c.toggles_per_access(),
                c.energy(self.vdd).to_string(),
                (c.energy(self.vdd) / self.sim_time).to_string(),
            )?;
        }
        writeln!(f, "total power: {}", self.total_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ff(v: f64) -> Capacitance {
        Capacitance::new(v * 1e-15)
    }

    #[test]
    fn ledger_accumulates() {
        let mut c = ComponentEnergy::new("lut", ff(100.0), ff(10.0));
        c.record(3);
        c.record(0);
        c.record(6);
        assert_eq!(c.accesses(), 3);
        assert_eq!(c.bit_toggles(), 9);
        assert!((c.toggles_per_access() - 3.0).abs() < 1e-12);
        let expected = 3.0 * 100e-15 + 9.0 * 10e-15;
        assert!((c.switched_cap().value() - expected).abs() < 1e-27);
    }

    #[test]
    fn energy_scales_quadratically() {
        let mut c = ComponentEnergy::new("x", ff(100.0), ff(0.0));
        c.record(0);
        let e1 = c.energy(Voltage::new(1.0)).value();
        let e2 = c.energy(Voltage::new(2.0)).value();
        assert!((e2 / e1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let c = ComponentEnergy::new("idle", ff(100.0), ff(10.0));
        assert_eq!(c.energy(Voltage::new(1.5)), Energy::ZERO);
        assert_eq!(c.toggles_per_access(), 0.0);
    }

    #[test]
    fn report_totals_and_display() {
        let mut a = ComponentEnergy::new("a", ff(100.0), ff(0.0));
        a.record(0);
        let mut b = ComponentEnergy::new("b", ff(300.0), ff(0.0));
        b.record(0);
        let report = SimReport::new(
            "test arch".into(),
            Voltage::new(1.0),
            Time::new(1e-3),
            vec![a, b],
        );
        let total = report.total_power().value();
        assert!((total - 400e-15 / 1e-3).abs() < 1e-18);
        let pa = report.component_power("a").unwrap().value();
        assert!((pa - 100e-15 / 1e-3).abs() < 1e-18);
        assert!(report.component("missing").is_none());
        let text = report.to_string();
        assert!(text.contains("test arch"));
        assert!(text.contains("total power"));
    }
}
