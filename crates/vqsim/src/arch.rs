//! Access-by-access execution of the two decoder architectures.

use powerplay_models::memory::Sram;
use powerplay_units::{Capacitance, Frequency, Time, Voltage};

use crate::energy::{ComponentEnergy, SimReport};
use crate::video::{VideoSource, BLOCKS_PER_FRAME, BLOCK_PIXELS};

/// Which decoder organization to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Figure 1: the LUT is addressed once per pixel (4096 × 6
    /// organization); no output multiplexer.
    DirectLut,
    /// Figure 3: the LUT is addressed once per *four* pixels (1024 × 24),
    /// followed by a holding register and a 4:1 multiplexer at pixel rate.
    GroupedLut,
}

impl Architecture {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::DirectLut => "Figure 1 (direct LUT)",
            Architecture::GroupedLut => "Figure 3 (grouped LUT)",
        }
    }
}

/// Operating conditions of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Supply voltage.
    pub vdd: Voltage,
    /// Pixel rate `f` (the paper's 2 MHz).
    pub pixel_rate: Frequency,
}

impl SimConfig {
    /// The paper's operating point: 1.5 V, 2 MHz.
    pub fn paper() -> SimConfig {
        SimConfig {
            vdd: Voltage::new(1.5),
            pixel_rate: Frequency::new(2e6),
        }
    }
}

/// Hamming distance between two words.
fn toggles(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

/// An SRAM port ledger using the same UCB coefficients as the
/// spreadsheet's `ucb/sram` model: the decode path (`C0 + Cw·words`)
/// switches every access; each *toggled* output column switches its
/// sense amp and bit-line (`Cb + Cc·words`).
fn sram_ledger(name: &str, words: u32) -> ComponentEnergy {
    let per_access = Sram::UCB_C_FIXED + Sram::UCB_C_PER_WORD * words as f64;
    let per_toggle = Sram::UCB_C_PER_BIT + Sram::UCB_C_PER_CELL * words as f64;
    ComponentEnergy::new(name, per_access, per_toggle)
}

/// A register ledger matching `ucb/register`: clock load every cycle,
/// 40 fF per toggled slave bit.
fn register_ledger(name: &str, bits: u32) -> ComponentEnergy {
    let per_access = Capacitance::new(30e-15 + bits as f64 * 12e-15);
    let per_toggle = Capacitance::new(40e-15);
    ComponentEnergy::new(name, per_access, per_toggle)
}

/// A multiplexer ledger matching `ucb/mux`: cost per toggled output bit.
fn mux_ledger(name: &str, inputs: u32) -> ComponentEnergy {
    let per_toggle = Capacitance::new(inputs as f64 * 15e-15 + 25e-15);
    ComponentEnergy::new(name, Capacitance::ZERO, per_toggle)
}

/// Packs four 6-bit luminance words into the 24-bit LUT-B output.
fn pack4(words: &[u8]) -> u32 {
    words
        .iter()
        .enumerate()
        .fold(0u32, |acc, (i, &w)| acc | ((w as u32) << (6 * i)))
}

/// Simulates decoding `video` on `arch`.
///
/// Incoming frames arrive at 30 f/s but the 60 f/s display reads and
/// decodes each buffered frame twice, so every source frame is decoded
/// twice and written once — the paper's ping-pong read/write asymmetry
/// (`f/16` reads vs `f/32` writes).
pub fn simulate(arch: Architecture, video: &VideoSource, config: SimConfig) -> SimReport {
    let mut read_bank = sram_ledger("read bank", BLOCKS_PER_FRAME as u32);
    let mut write_bank = sram_ledger("write bank", BLOCKS_PER_FRAME as u32);
    let mut out_reg = register_ledger("output register", 6);

    // Architecture-specific blocks.
    let (lut_words, mut lut, mut hold_reg, mut mux) = match arch {
        Architecture::DirectLut => (4096u32, sram_ledger("LUT 4096x6", 4096), None, None),
        Architecture::GroupedLut => (
            1024u32,
            sram_ledger("LUT 1024x24", 1024),
            Some(register_ledger("holding register", 24)),
            Some(mux_ledger("output mux 4:1", 4)),
        ),
    };
    debug_assert!(lut_words >= 1024);

    // Port state for data-dependent toggle counting.
    let mut read_port_prev: u32 = 0;
    let mut write_port_prev: u32 = 0;
    let mut lut_prev: u32 = 0;
    let mut hold_prev: u32 = 0;
    let mut mux_prev: u32 = 0;
    let mut out_prev: u32 = 0;

    let mut displayed_frames = 0u64;
    for frame in video.frames() {
        // One buffer write pass per incoming frame.
        for &code in frame {
            write_bank.record(toggles(code as u32, write_port_prev));
            write_port_prev = code as u32;
        }
        // Two display (decode) passes per incoming frame.
        for _ in 0..2 {
            displayed_frames += 1;
            for &code in frame {
                read_bank.record(toggles(code as u32, read_port_prev));
                read_port_prev = code as u32;
                let block = &video.codebook()[code as usize];
                match arch {
                    Architecture::DirectLut => {
                        for &luma in block.iter() {
                            lut.record(toggles(luma as u32, lut_prev));
                            lut_prev = luma as u32;
                            out_reg.record(toggles(luma as u32, out_prev));
                            out_prev = luma as u32;
                        }
                    }
                    Architecture::GroupedLut => {
                        let hold = hold_reg.as_mut().expect("grouped arch has holder");
                        let mx = mux.as_mut().expect("grouped arch has mux");
                        for group in block.chunks(4) {
                            let packed = pack4(group);
                            lut.record(toggles(packed, lut_prev));
                            lut_prev = packed;
                            hold.record(toggles(packed, hold_prev));
                            hold_prev = packed;
                            for &luma in group {
                                mx.record(toggles(luma as u32, mux_prev));
                                mux_prev = luma as u32;
                                out_reg.record(toggles(luma as u32, out_prev));
                                out_prev = luma as u32;
                            }
                        }
                    }
                }
            }
        }
    }

    let pixels = displayed_frames as f64 * (BLOCKS_PER_FRAME * BLOCK_PIXELS) as f64;
    let sim_time = Time::new(pixels / config.pixel_rate.value());

    let mut components = vec![read_bank, write_bank, lut];
    if let Some(hold) = hold_reg {
        components.push(hold);
    }
    if let Some(mx) = mux {
        components.push(mx);
    }
    components.push(out_reg);

    SimReport::new(arch.name().to_owned(), config.vdd, sim_time, components)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video() -> VideoSource {
        VideoSource::synthetic(42, 4)
    }

    #[test]
    fn access_counts_match_the_paper_rates() {
        let v = video();
        let report = simulate(Architecture::DirectLut, &v, SimConfig::paper());
        let n = v.frame_count() as u64;
        // Per incoming frame: 2048 writes, 2*2048 reads, 2*32768 LUT
        // accesses (one per displayed pixel).
        assert_eq!(report.component("write bank").unwrap().accesses(), n * 2048);
        assert_eq!(report.component("read bank").unwrap().accesses(), n * 4096);
        assert_eq!(
            report.component("LUT 4096x6").unwrap().accesses(),
            n * 2 * 32768
        );
        // Read rate f/16 & write rate f/32: reads happen 2x as often.
        let reads = report.component("read bank").unwrap().accesses();
        let writes = report.component("write bank").unwrap().accesses();
        assert_eq!(reads, writes * 2);
    }

    #[test]
    fn grouped_arch_quarters_lut_accesses() {
        let v = video();
        let a = simulate(Architecture::DirectLut, &v, SimConfig::paper());
        let b = simulate(Architecture::GroupedLut, &v, SimConfig::paper());
        let lut_a = a.component("LUT 4096x6").unwrap().accesses();
        let lut_b = b.component("LUT 1024x24").unwrap().accesses();
        assert_eq!(lut_a, lut_b * 4);
        // Only the mux and output register run at full pixel rate in B.
        assert_eq!(
            b.component("output mux 4:1").unwrap().accesses(),
            lut_a // = pixel count
        );
    }

    #[test]
    fn sim_time_matches_pixel_rate() {
        let v = video();
        let report = simulate(Architecture::DirectLut, &v, SimConfig::paper());
        // 4 incoming frames -> 8 displayed frames of 32768 pixels at 2 MHz.
        let expected = 8.0 * 32768.0 / 2e6;
        assert!((report.sim_time().value() - expected).abs() < 1e-12);
        // ~60 Hz display refresh falls out of the paper's numbers.
        let refresh: f64 = 1.0 / (32768.0 / 2e6);
        assert!((refresh - 61.0).abs() < 1.0);
    }

    #[test]
    fn grouped_architecture_wins_big() {
        // The paper's headline: arch B ~ 1/5 of arch A.
        let v = video();
        let a = simulate(Architecture::DirectLut, &v, SimConfig::paper());
        let b = simulate(Architecture::GroupedLut, &v, SimConfig::paper());
        let ratio = a.total_power() / b.total_power();
        assert!(
            ratio > 3.0 && ratio < 8.0,
            "expected ~5x improvement, got {ratio:.2}x"
        );
    }

    #[test]
    fn correlated_video_toggles_fewer_bits_than_random_bound() {
        let v = video();
        let report = simulate(Architecture::DirectLut, &v, SimConfig::paper());
        let lut = report.component("LUT 4096x6").unwrap();
        // Random 6-bit data would toggle 3 bits/access on average; smooth
        // video must toggle significantly fewer.
        assert!(
            lut.toggles_per_access() < 2.5,
            "LUT toggles {:.2}/access",
            lut.toggles_per_access()
        );
    }

    #[test]
    fn power_scales_quadratically_with_vdd() {
        let v = video();
        let p15 = simulate(Architecture::DirectLut, &v, SimConfig::paper()).total_power();
        let hi = SimConfig {
            vdd: Voltage::new(3.0),
            pixel_rate: Frequency::new(2e6),
        };
        let p30 = simulate(Architecture::DirectLut, &v, hi).total_power();
        assert!((p30 / p15 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn magnitudes_are_credible() {
        // The paper's chip measured ~100 uW (arch B) and the estimate for
        // arch A was ~0.75 mW; the simulation must land in that regime.
        let v = video();
        let a = simulate(Architecture::DirectLut, &v, SimConfig::paper());
        let b = simulate(Architecture::GroupedLut, &v, SimConfig::paper());
        let pa = a.total_power().value();
        let pb = b.total_power().value();
        assert!(pa > 100e-6 && pa < 2e-3, "arch A power {pa}");
        assert!(pb > 20e-6 && pb < 400e-6, "arch B power {pb}");
    }

    #[test]
    fn deterministic_given_seed() {
        let v = video();
        let a = simulate(Architecture::GroupedLut, &v, SimConfig::paper());
        let b = simulate(Architecture::GroupedLut, &v, SimConfig::paper());
        assert_eq!(a, b);
    }
}
