//! Synthetic correlated video and its vector-quantization encoding.
//!
//! The InfoPad terminal's 256 × 128 screen is decomposed into 2048
//! 4 × 4-pixel blocks; each block is VQ-encoded as one 8-bit codebook
//! index, which is why the decoder's ping-pong buffers are 2048 words
//! deep. Natural video is spatially smooth, so neighbouring blocks map
//! to nearby codebook entries — the correlation the spreadsheet estimate
//! deliberately neglects.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Screen width in pixels.
pub const SCREEN_W: usize = 256;
/// Screen height in pixels.
pub const SCREEN_H: usize = 128;
/// Pixels per VQ block (4 × 4).
pub const BLOCK_PIXELS: usize = 16;
/// VQ blocks per frame — the decoder's buffer depth.
pub const BLOCKS_PER_FRAME: usize = SCREEN_W * SCREEN_H / BLOCK_PIXELS;
/// Codebook entries (8-bit code).
pub const CODEBOOK_SIZE: usize = 256;
/// Luminance word width in bits.
pub const LUMA_BITS: u32 = 6;

/// A VQ codebook plus a sequence of encoded frames.
#[derive(Debug, Clone)]
pub struct VideoSource {
    codebook: Vec<[u8; BLOCK_PIXELS]>,
    frames: Vec<Vec<u8>>,
}

impl VideoSource {
    /// Generates `n_frames` of smooth synthetic video, encoded through a
    /// brightness-ordered codebook.
    ///
    /// The luminance field is a sum of slow sinusoids (scene structure)
    /// plus low-amplitude noise (sensor grain), drifting frame to frame
    /// (motion). The codebook is ordered by mean brightness so that
    /// spatial smoothness translates into numerically close codes.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero.
    pub fn synthetic(seed: u64, n_frames: usize) -> VideoSource {
        assert!(n_frames > 0, "need at least one frame");
        let mut rng = StdRng::seed_from_u64(seed);

        // Brightness-ordered codebook: entry k has mean luminance ~k/4
        // (6-bit range) with a little per-pixel texture.
        let mut codebook = Vec::with_capacity(CODEBOOK_SIZE);
        for k in 0..CODEBOOK_SIZE {
            let mean = (k as f64 / (CODEBOOK_SIZE - 1) as f64) * 63.0;
            let mut entry = [0u8; BLOCK_PIXELS];
            for px in &mut entry {
                let texture: f64 = rng.gen_range(-2.0..2.0);
                *px = (mean + texture).clamp(0.0, 63.0) as u8;
            }
            codebook.push(entry);
        }

        let mut frames = Vec::with_capacity(n_frames);
        let (phase_x, phase_y): (f64, f64) = {
            use std::f64::consts::TAU;
            (rng.gen_range(0.0..TAU), rng.gen_range(0.0..TAU))
        };
        for t in 0..n_frames {
            let drift = t as f64 * 0.15;
            let mut codes = Vec::with_capacity(BLOCKS_PER_FRAME);
            let blocks_x = SCREEN_W / 4;
            let blocks_y = SCREEN_H / 4;
            for by in 0..blocks_y {
                for bx in 0..blocks_x {
                    let x = bx as f64 / blocks_x as f64;
                    let y = by as f64 / blocks_y as f64;
                    let luma = 0.5
                        + 0.28 * (2.0 * std::f64::consts::PI * (1.3 * x + drift) + phase_x).sin()
                        + 0.18
                            * (2.0 * std::f64::consts::PI * (0.9 * y - 0.5 * drift) + phase_y)
                                .sin();
                    let noise: f64 = rng.gen_range(-0.02..0.02);
                    let level = ((luma + noise).clamp(0.0, 1.0) * (CODEBOOK_SIZE - 1) as f64) as u8;
                    codes.push(level);
                }
            }
            frames.push(codes);
        }

        VideoSource { codebook, frames }
    }

    /// Worst-case content: codes and codebook both uniformly random —
    /// the "signal correlations are neglected" assumption made flesh.
    /// Against this input the spreadsheet's conservative estimate should
    /// be nearly exact (the ablation of E-A1).
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero.
    pub fn noise(seed: u64, n_frames: usize) -> VideoSource {
        assert!(n_frames > 0, "need at least one frame");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut codebook = Vec::with_capacity(CODEBOOK_SIZE);
        for _ in 0..CODEBOOK_SIZE {
            let mut entry = [0u8; BLOCK_PIXELS];
            for px in &mut entry {
                *px = rng.gen_range(0..64);
            }
            codebook.push(entry);
        }
        let frames = (0..n_frames)
            .map(|_| (0..BLOCKS_PER_FRAME).map(|_| rng.gen()).collect())
            .collect();
        VideoSource { codebook, frames }
    }

    /// Best-case content: a single smooth frame repeated (a static
    /// screen) — after the first pass the read-port data never changes.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero.
    pub fn static_scene(seed: u64, n_frames: usize) -> VideoSource {
        let one = VideoSource::synthetic(seed, 1);
        let frame = one.frames[0].clone();
        VideoSource {
            codebook: one.codebook,
            frames: vec![frame; n_frames],
        }
    }

    /// The codebook: 256 blocks of 16 six-bit luminance values.
    pub fn codebook(&self) -> &[[u8; BLOCK_PIXELS]] {
        &self.codebook
    }

    /// Encoded frames; each frame is [`BLOCKS_PER_FRAME`] code bytes.
    pub fn frames(&self) -> &[Vec<u8>] {
        &self.frames
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Mean absolute difference between consecutive codes within frames —
    /// the spatial-correlation statistic that drives bit-line activity.
    pub fn code_smoothness(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for frame in &self.frames {
            for pair in frame.windows(2) {
                total += (pair[0] as i32 - pair[1] as i32).unsigned_abs() as f64;
                count += 1;
            }
        }
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_match_the_paper() {
        // "The system has a 256 x 128 pixel video screen" and 2048-word
        // ping-pong buffers.
        assert_eq!(BLOCKS_PER_FRAME, 2048);
        assert_eq!(CODEBOOK_SIZE * BLOCK_PIXELS, 4096); // LUT words, arch A
    }

    #[test]
    fn synthetic_video_has_right_shape() {
        let v = VideoSource::synthetic(1, 3);
        assert_eq!(v.frame_count(), 3);
        for frame in v.frames() {
            assert_eq!(frame.len(), BLOCKS_PER_FRAME);
        }
        assert_eq!(v.codebook().len(), CODEBOOK_SIZE);
        for entry in v.codebook() {
            assert!(entry.iter().all(|&px| px < 64), "6-bit luminance");
        }
    }

    #[test]
    fn codebook_is_brightness_ordered() {
        let v = VideoSource::synthetic(2, 1);
        let means: Vec<f64> = v
            .codebook()
            .iter()
            .map(|e| e.iter().map(|&p| p as f64).sum::<f64>() / BLOCK_PIXELS as f64)
            .collect();
        // Means must be (weakly) increasing up to texture noise.
        for pair in means.windows(2) {
            assert!(pair[1] >= pair[0] - 3.0, "ordering violated: {pair:?}");
        }
    }

    #[test]
    fn video_is_spatially_correlated() {
        let v = VideoSource::synthetic(3, 4);
        let smoothness = v.code_smoothness();
        // Uniform random codes would differ by ~85 on average (|U−U'| of
        // 0..=255); smooth video must be far below that.
        assert!(
            smoothness < 20.0,
            "expected correlated codes, got mean delta {smoothness}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = VideoSource::synthetic(9, 2);
        let b = VideoSource::synthetic(9, 2);
        assert_eq!(a.frames(), b.frames());
        let c = VideoSource::synthetic(10, 2);
        assert_ne!(a.frames(), c.frames());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = VideoSource::synthetic(1, 0);
    }

    #[test]
    fn noise_video_is_uncorrelated() {
        let v = VideoSource::noise(5, 2);
        // Uniform random bytes: mean |delta| ≈ 256/3 ≈ 85.3.
        let smoothness = v.code_smoothness();
        assert!(
            (70.0..100.0).contains(&smoothness),
            "noise smoothness {smoothness}"
        );
        assert_eq!(v.frames()[0].len(), BLOCKS_PER_FRAME);
    }

    #[test]
    fn static_scene_repeats_one_frame() {
        let v = VideoSource::static_scene(6, 4);
        assert_eq!(v.frame_count(), 4);
        assert_eq!(v.frames()[0], v.frames()[3]);
        // Same smoothness as a single synthetic frame.
        assert!(v.code_smoothness() < 20.0);
    }
}
