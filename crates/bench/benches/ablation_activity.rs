//! E-A1 — ablation of the "signal correlations are neglected" default:
//! spreadsheet estimate (every column at full activity) versus the
//! cycle-level simulator on correlated video. Regenerates the
//! estimate-vs-measurement comparison, then times the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay::accuracy::Comparison;
use powerplay::designs::luminance::{sheet, LuminanceArch};
use powerplay_bench::{banner, session};
use powerplay_vqsim::{simulate, Architecture, SimConfig, VideoSource};

fn regenerate() {
    let pp = session();
    banner("E-A1: correlation-neglect ablation (estimate vs simulated measurement)");
    let video = VideoSource::synthetic(42, 4);
    println!(
        "video: {} frames, mean |delta code| = {:.2} (random data would be ~85)",
        video.frame_count(),
        video.code_smoothness(),
    );
    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>8}",
        "architecture", "estimate", "simulated", "ratio", "octave?"
    );
    for (arch, sim_arch) in [
        (LuminanceArch::DirectLut, Architecture::DirectLut),
        (LuminanceArch::GroupedLut, Architecture::GroupedLut),
    ] {
        let estimate = pp.play(&sheet(arch)).unwrap().total_power();
        let sim = simulate(sim_arch, &video, SimConfig::paper());
        let comparison = Comparison::new(estimate, sim.total_power());
        println!(
            "{:<22} {:>12} {:>12} {:>7.2}x {:>8}",
            sim.arch_name(),
            estimate.to_string(),
            sim.total_power().to_string(),
            comparison.ratio(),
            if comparison.within_octave() {
                "yes"
            } else {
                "NO"
            },
        );
    }
    println!("(paper: estimated ~150 uW vs measured ~100 uW -> 1.5x, within an octave)");

    // Content sweep: the gap is data correlation, not calibration.
    println!("\ncontent dependence (Figure 1 architecture):");
    let estimate = pp
        .play(&sheet(LuminanceArch::DirectLut))
        .unwrap()
        .total_power();
    for (label, content) in [
        ("uniform noise", VideoSource::noise(9, 3)),
        ("natural video", VideoSource::synthetic(9, 3)),
        ("static screen", VideoSource::static_scene(9, 3)),
    ] {
        let measured = simulate(Architecture::DirectLut, &content, SimConfig::paper());
        println!(
            "  {:<14} mean |dcode| {:>5.1}  simulated {:>10}  estimate/sim {:>5.2}x",
            label,
            content.code_smoothness(),
            measured.total_power().to_string(),
            estimate / measured.total_power(),
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let video = VideoSource::synthetic(42, 2);
    let mut group = c.benchmark_group("ablation_activity");
    group.sample_size(20);
    group.bench_function("simulate_direct_arch", |b| {
        b.iter(|| simulate(Architecture::DirectLut, &video, SimConfig::paper()).total_power())
    });
    group.bench_function("simulate_grouped_arch", |b| {
        b.iter(|| simulate(Architecture::GroupedLut, &video, SimConfig::paper()).total_power())
    });
    group.bench_function("generate_video", |b| {
        b.iter(|| VideoSource::synthetic(7, 2).frame_count())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
