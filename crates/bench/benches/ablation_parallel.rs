//! E-A4 — ablation: architecture-driven voltage scaling (parallelism).
//! The design choice behind the paper's 1.5 V chipset: replicate units,
//! relax per-unit timing, drop the supply. Regenerates the classic
//! power-vs-parallelism curve for the decoder datapath, then times the
//! optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay::designs::luminance::{sheet, LuminanceArch};
use powerplay_bench::{banner, session};
use powerplay_models::scaling::{DelayScaling, ParallelismTradeoff};
use powerplay_units::{Capacitance, Frequency, Voltage};

fn decoder_tradeoff() -> ParallelismTradeoff {
    let pp = session();
    let report = pp
        .play(&sheet(LuminanceArch::GroupedLut))
        .expect("reference design");
    ParallelismTradeoff {
        delay: DelayScaling::cmos_1_2um(),
        cap_per_op: Capacitance::new(report.total_power().value() / (1.5 * 1.5 * 2e6)),
        overhead_per_way: 0.25,
        vdd_max: Voltage::new(5.0),
    }
}

fn regenerate() {
    banner("E-A4: power vs parallelism at fixed throughput (decoder datapath)");
    let trade = decoder_tradeoff();
    for (label, f) in [
        ("2 MHz (paper rate)", 2e6),
        ("32 MHz (4x-res display)", 32e6),
    ] {
        println!("\ntarget throughput: {label}");
        println!("{:>3} {:>10} {:>14}", "N", "vdd", "power");
        for n in 1..=8u32 {
            match (
                trade.supply_for(n, Frequency::new(f)),
                trade.power_at(n, Frequency::new(f)),
            ) {
                (Some(vdd), Some(p)) => {
                    println!("{n:>3} {:>9.2}V {:>14}", vdd.value(), p.to_string())
                }
                _ => println!("{n:>3} {:>10} {:>14}", "-", "infeasible"),
            }
        }
        if let Some((n, p)) = trade.optimal(8, Frequency::new(f)) {
            println!("optimum: N = {n} at {p}");
        }
    }
    println!(
        "\n(the curve falls while supply savings beat the capacitance \
         overhead, then rises — parallelism pays only when timing is tight)"
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let trade = decoder_tradeoff();
    c.bench_function("parallel/optimal_degree_search", |b| {
        b.iter(|| trade.optimal(16, Frequency::new(32e6)))
    });
    c.bench_function("parallel/single_point", |b| {
        b.iter(|| trade.power_at(4, Frequency::new(32e6)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
