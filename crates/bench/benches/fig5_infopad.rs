//! E-F5 — paper Figure 5: the InfoPad system power breakdown.
//! Regenerates the seven-row system table with its converter coupling,
//! then times full-system evaluation and the hierarchy drill-down.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay::designs::infopad;
use powerplay_bench::{banner, session};
use powerplay_units::format;

fn regenerate() {
    let pp = session();
    banner("Figure 5: InfoPad System summary");
    let report = pp.play(&infopad::sheet()).expect("reference design plays");
    println!("{report}");
    println!("breakdown, largest first:");
    for (name, share) in report.breakdown() {
        println!("  {:<24} {}", name, format::percent(share));
    }
    let custom = report
        .row("Custom Hardware")
        .and_then(|r| r.sub_report())
        .expect("hierarchy");
    println!("\nhyperlink drill-down ->\n{custom}");
    println!("(paper total: ~10.9 W, display-path dominated)");
}

fn bench(c: &mut Criterion) {
    regenerate();
    let pp = session();
    let system = infopad::sheet();
    c.bench_function("fig5/play_full_system", |b| {
        b.iter(|| {
            pp.play(std::hint::black_box(&system))
                .unwrap()
                .total_power()
        })
    });
    c.bench_function("fig5/play_after_radio_change", |b| {
        // The interactive loop: tweak one subsystem parameter, re-Play.
        b.iter(|| {
            let mut variant = system.clone();
            variant
                .row_mut("Radio Subsystem")
                .unwrap()
                .bind("duty_tx", "0.25")
                .unwrap();
            pp.play(&variant).unwrap().total_power()
        })
    });
    c.bench_function("fig5/breakdown", |b| {
        let report = pp.play(&system).unwrap();
        b.iter(|| std::hint::black_box(&report).breakdown())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
