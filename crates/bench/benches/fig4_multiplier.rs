//! E-F4 — paper Figure 4: the multiplier input form and result excerpt.
//! Regenerates the capacitance/power table across bit-widths and both
//! correlation classes, then times single-model evaluation (the paper's
//! "feedback is virtually instantaneous" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powerplay::{ucb_library, Scope};
use powerplay_bench::banner;
use powerplay_units::format;

fn regenerate() {
    banner("Figure 4: multiplier input form and result excerpt");
    let lib = ucb_library();
    println!(
        "{:<10} {:<14} {:>16} {:>14}",
        "bitwidths", "inputs", "C switched", "P @1.5V,2MHz"
    );
    for (element, label) in [
        ("ucb/multiplier", "uncorrelated"),
        ("ucb/multiplier_correlated", "correlated"),
    ] {
        let mult = lib.get(element).expect("builtin");
        for bw in [4u32, 8, 12, 16, 24, 32] {
            let mut scope = Scope::new();
            scope.set("vdd", 1.5);
            scope.set("f", 2e6);
            scope.set("bw_a", bw as f64);
            scope.set("bw_b", bw as f64);
            let eval = mult.evaluate(&scope).expect("builtin evaluates");
            let cap = eval.energy_per_op.expect("capacitive model").value() / (1.5 * 1.5);
            println!(
                "{:<10} {:<14} {:>16} {:>14}",
                format!("{bw}x{bw}"),
                label,
                format::eng(cap, "F"),
                eval.power.to_string(),
            );
        }
    }
    println!("(paper: C_T = bitwidthA * bitwidthB * 253 fF for non-correlated inputs)");
}

fn bench(c: &mut Criterion) {
    regenerate();
    let lib = ucb_library();
    let mult = lib.get("ucb/multiplier").unwrap().clone();
    let mut group = c.benchmark_group("fig4");
    for bw in [8u32, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("evaluate_multiplier", bw),
            &bw,
            |b, &bw| {
                let mut scope = Scope::new();
                scope.set("vdd", 1.5);
                scope.set("f", 2e6);
                scope.set("bw_a", bw as f64);
                scope.set("bw_b", bw as f64);
                b.iter(|| mult.evaluate(std::hint::black_box(&scope)).unwrap().power)
            },
        );
    }
    // The whole form workflow: parse user text, bind, evaluate.
    group.bench_function("form_roundtrip", |b| {
        b.iter(|| {
            let mut scope = Scope::new();
            for (name, text) in [("vdd", "1.5"), ("f", "2e6"), ("bw_a", "8"), ("bw_b", "8")] {
                let v = powerplay::Expr::parse(text).unwrap().eval(&scope).unwrap();
                scope.set(name, v);
            }
            mult.evaluate(&scope).unwrap().power
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
