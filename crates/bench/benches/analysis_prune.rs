//! Bound-guided sweep pruning: a constrained 64-point supply sweep
//! must skip a provable fraction of its points without replaying them,
//! and the points it does replay must be bit-identical to an
//! unconstrained sweep's. Records `BENCH_analysis.json`.
//!
//! The invariants at the top run under `--test` too, so CI's bench
//! smoke catches a pruning regression (nothing skipped, or a skipped
//! point that would actually have been admitted) without paying for
//! the timing loops.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay::designs::luminance::{sheet, LuminanceArch};
use powerplay::whatif;
use powerplay_analysis::{sweep_constrained, PointOutcome, PowerConstraint};
use powerplay_bench::{banner, record_metrics, session, throughput};

fn bench(c: &mut Criterion) {
    banner("analysis: bound-guided pruning of a constrained 64-pt vdd sweep");
    let pp = session();
    let design = sheet(LuminanceArch::GroupedLut);
    let plan = pp.compile(&design);

    // 64 supply points across the design space; the constraint keeps
    // only the low-power half, so the analyzer can prove the upper
    // segments out without a single replay.
    let points: Vec<f64> = (0..64).map(|i| 1.0 + 0.036 * f64::from(i)).collect();
    let budget = plan
        .play_with(&[("vdd", 2.0)])
        .unwrap()
        .total_power()
        .value();
    let constraint = PowerConstraint::at_most(budget);

    // --- Invariants, checked before anything is timed.
    let pruned_sweep = sweep_constrained(&plan, "vdd", &points, &constraint).unwrap();
    let full = whatif::sweep_compiled(&plan, "vdd", &points).unwrap();
    assert_eq!(pruned_sweep.outcomes.len(), full.len());
    assert!(
        pruned_sweep.pruned * 10 >= points.len(),
        "expected >=10% of {} points pruned, got {}",
        points.len(),
        pruned_sweep.pruned
    );
    for ((value, outcome), (full_value, full_report)) in pruned_sweep.outcomes.iter().zip(&full) {
        assert_eq!(value, full_value);
        match outcome {
            // Bit-identical: the constrained sweep replays survivors
            // through the same engine path as the unconstrained one.
            PointOutcome::Played(report) => assert_eq!(report, full_report),
            // Sound: every pruned point really violates the constraint.
            PointOutcome::Pruned(proof) => {
                let concrete = full_report.total_power().value();
                assert!(
                    !constraint.admits(concrete),
                    "pruned vdd={value} admits {concrete} W"
                );
                assert!(
                    proof.contains(concrete),
                    "proof {proof:?} misses concrete {concrete}"
                );
            }
        }
    }
    println!(
        "{} of {} points pruned by proof ({} abstract analyses, {} replays)",
        pruned_sweep.pruned,
        points.len(),
        pruned_sweep.analyses,
        pruned_sweep.played
    );

    // --- Criterion samples.
    let mut group = c.benchmark_group("analysis/sweep64_constrained");
    group.sample_size(10);
    group.bench_function("bound_pruned", |b| {
        b.iter(|| {
            sweep_constrained(&plan, "vdd", &points, &constraint)
                .unwrap()
                .played
        })
    });
    group.bench_function("full_then_filter", |b| {
        b.iter(|| {
            whatif::sweep_compiled(&plan, "vdd", &points)
                .unwrap()
                .iter()
                .filter(|(_, r)| constraint.admits(r.total_power().value()))
                .count()
        })
    });
    group.finish();

    // --- Headline rates: the wall-clock effect of pruning on this run.
    let constrained_rate = throughput(400, || {
        std::hint::black_box(
            sweep_constrained(&plan, "vdd", &points, &constraint)
                .unwrap()
                .played,
        );
    });
    let full_rate = throughput(400, || {
        std::hint::black_box(whatif::sweep_compiled(&plan, "vdd", &points).unwrap().len());
    });
    println!(
        "constrained sweeps/sec {constrained_rate:.1} vs full {full_rate:.1} ({:.2}x)",
        constrained_rate / full_rate
    );
    record_metrics(
        "analysis",
        &[
            ("sweep_points_total", points.len() as f64),
            ("sweep_points_pruned", pruned_sweep.pruned as f64),
            ("sweep_points_played", pruned_sweep.played as f64),
            ("abstract_analyses", pruned_sweep.analyses as f64),
            ("constrained_sweeps_per_sec", constrained_rate),
            ("full_sweeps_per_sec", full_rate),
            ("constrained_speedup", constrained_rate / full_rate),
        ],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
