//! E-F1/F2/F3 — paper Figures 1–3: the luminance-decoder spreadsheet for
//! both architectures. Regenerates the Figure 2 table (and its Figure 3
//! twin), then times the spreadsheet evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay::designs::luminance::{sheet, LuminanceArch};
use powerplay_bench::{banner, session};

fn regenerate() {
    let pp = session();
    banner("Figure 2: Luminance_1 summary (architecture of Figure 1)");
    let fig1 = pp
        .play(&sheet(LuminanceArch::DirectLut))
        .expect("reference design plays");
    println!("{fig1}");
    banner("Figure 3 companion table (grouped-LUT architecture)");
    let fig3 = pp
        .play(&sheet(LuminanceArch::GroupedLut))
        .expect("reference design plays");
    println!("{fig3}");
    println!(
        "architecture comparison: {} vs {} -> {:.2}x (paper: ~5x, '~150 uW, or 1/5')",
        fig1.total_power(),
        fig3.total_power(),
        fig1.total_power() / fig3.total_power(),
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let pp = session();
    let fig1 = sheet(LuminanceArch::DirectLut);
    let fig3 = sheet(LuminanceArch::GroupedLut);
    c.bench_function("fig2/play_figure1_sheet", |b| {
        b.iter(|| pp.play(std::hint::black_box(&fig1)).unwrap().total_power())
    });
    c.bench_function("fig2/play_figure3_sheet", |b| {
        b.iter(|| pp.play(std::hint::black_box(&fig3)).unwrap().total_power())
    });
    c.bench_function("fig2/build_and_play", |b| {
        b.iter(|| {
            let s = sheet(LuminanceArch::DirectLut);
            pp.play(&s).unwrap().total_power()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
