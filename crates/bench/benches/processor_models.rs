//! E-A3 — processor-model ablation: the first-order duty-cycle model
//! (EQ 11) against the instruction-level model (EQ 12), reproducing Ong &
//! Yan's observation that sorting algorithms spread across orders of
//! magnitude — structure the duty-cycle model cannot see.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay_bench::banner;
use powerplay_models::processor::{
    profiles::sorting_profiles, DutyCycleProcessor, InstructionEnergyTable,
};
use powerplay_units::Power;

const N: u64 = 4096;

fn regenerate() {
    banner("E-A3: EQ 11 (duty cycle) vs EQ 12 (instruction level) on sorting");
    let table = InstructionEnergyTable::embedded_core();
    let profiles = sorting_profiles(N);

    // EQ 11 view: the processor draws its average power whenever active,
    // so every algorithm "costs" the same power and differs only in time.
    let duty = DutyCycleProcessor::always_on(Power::new(50e-3));
    println!("EQ 11: every algorithm at P = {}", duty.average_power());

    println!(
        "\nEQ 12 over n = {N} elements:\n{:<12} {:>14} {:>14} {:>14}",
        "algorithm", "instructions", "energy", "avg power"
    );
    let mut energies = Vec::new();
    for p in &profiles {
        let e = p.total_energy(&table).unwrap();
        energies.push(e.value());
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            p.name(),
            p.total_instructions(),
            e.to_string(),
            p.average_power(&table).unwrap().to_string(),
        );
    }
    let max = energies.iter().cloned().fold(f64::MIN, f64::max);
    let min = energies.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\nenergy spread: {:.0}x (paper ref [15]: 'orders of magnitude variance \
         … for different sorting algorithms')",
        max / min
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let table = InstructionEnergyTable::embedded_core();
    c.bench_function("processor/eq12_profile_energy", |b| {
        let profiles = sorting_profiles(N);
        b.iter(|| {
            profiles
                .iter()
                .map(|p| p.total_energy(&table).unwrap().value())
                .sum::<f64>()
        })
    });
    c.bench_function("processor/build_profiles", |b| {
        b.iter(|| sorting_profiles(std::hint::black_box(N)).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
