//! Serving-path benchmark: boots the real socket server, hammers
//! `/api/design` with the paper's InfoPad system, and records the
//! request rate plus a full [`powerplay_telemetry::TelemetrySnapshot`]
//! into `BENCH_serving.json` — so the serving numbers *and* the
//! telemetry that explains them (latency quantiles, queue behaviour)
//! can be diffed across commits.

use powerplay::Sheet;
use powerplay_bench::{banner, throughput};
use powerplay_json::Json;
use powerplay_web::app::PowerPlayApp;
use powerplay_web::http::http_get;

fn main() {
    banner("serving path (InfoPad via /api/design)");

    let dir = std::env::temp_dir().join(format!("powerplay-bench-serving-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = PowerPlayApp::new(powerplay::ucb_library(), dir);

    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/designs/infopad.json"),
    )
    .expect("read InfoPad design");
    let sheet = Sheet::from_json(&Json::parse(&text).expect("parse")).expect("load");
    app.store().save("demo", "infopad", &sheet, None).expect("seed");

    let server = app.serve("127.0.0.1:0").expect("bind");
    let url = format!(
        "http://{}/api/design?user=demo&name=infopad",
        server.addr()
    );

    let requests_per_sec = throughput(1500, || {
        let r = http_get(&url).expect("request");
        assert!(r.body_text().contains("total_w"));
    });
    println!("requests/sec (sequential, one client): {requests_per_sec:.0}");

    let snapshot = powerplay_telemetry::global().snapshot();
    if let Some(h) = snapshot.histogram("powerplay_http_request_seconds") {
        for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
            if let Some(v) = h.quantile_seconds(q).filter(|v| v.is_finite()) {
                println!("request {label} <= {:.1} us (log2 bucket bound)", v * 1e6);
            }
        }
    }

    let body = Json::object([
        ("requests_per_sec", Json::from(requests_per_sec)),
        ("telemetry", snapshot.to_json()),
    ]);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    match std::fs::write(&path, format!("{}\n", body.to_pretty())) {
        Ok(()) => println!("recorded {}", path.display()),
        Err(e) => eprintln!("could not record {}: {e}", path.display()),
    }

    server.shutdown();
}
