//! Serving-path benchmark: boots the real socket server and hammers
//! `/api/design` with the paper's InfoPad system, in two shapes:
//!
//! - `sequential` — one client, a fresh TCP connection per request
//!   (`Connection: close`), matching how this bench measured the old
//!   blocking server, so the number stays comparable across commits.
//! - `concurrent_128` — 128 keep-alive connections, each pipelining
//!   batches of 8 GETs; the readiness reactor's intended load shape.
//!
//! Both sections land in `BENCH_serving.json` together with a full
//! [`powerplay_telemetry::TelemetrySnapshot`], so the serving numbers
//! *and* the telemetry that explains them (latency quantiles, reactor
//! wakeups, shed counts) can be diffed across commits.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use powerplay::Sheet;
use powerplay_bench::banner;
use powerplay_json::Json;
use powerplay_web::app::PowerPlayApp;
use powerplay_web::http::{read_response, ServerConfig, Status};

const CLIENTS: usize = 128;
const PIPELINE_DEPTH: usize = 8;
const CONCURRENT_SECS: f64 = 2.0;
const SEQUENTIAL_SECS: f64 = 1.5;

fn main() {
    banner("serving path (InfoPad via /api/design)");
    // The bench is closed-loop on one host: clients and server share the
    // same cores, and batch latency floors at in_flight / throughput
    // (Little's law), so the CPU count is part of the result.
    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    println!("host cpus: {host_cpus}");

    let dir = std::env::temp_dir().join(format!("powerplay-bench-serving-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = PowerPlayApp::new(powerplay::ucb_library(), dir);

    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/designs/infopad.json"),
    )
    .expect("read InfoPad design");
    let sheet = Sheet::from_json(&Json::parse(&text).expect("parse")).expect("load");
    app.store()
        .save("demo", "infopad", &sheet, None)
        .expect("seed");

    // Shed thresholds sized for the load shape: 128 connections with 8
    // requests in flight each must never see a 503.
    let server = app
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                queue_capacity: 2 * CLIENTS * PIPELINE_DEPTH,
                max_connections: 4 * CLIENTS,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
    let addr = server.addr();
    let path = "/api/design?user=demo&name=infopad";

    let sequential = run_sequential(addr, path);
    println!(
        "requests/sec (sequential, fresh connection per request): {:.0}",
        sequential
    );

    let concurrent = run_concurrent(addr, path);
    println!(
        "requests/sec ({CLIENTS} keep-alive clients, pipeline depth {PIPELINE_DEPTH}): {:.0}",
        concurrent.requests_per_sec
    );
    println!(
        "batch latency p50 {:.2} ms, p99 {:.2} ms ({} batches of {PIPELINE_DEPTH}); errors: {}",
        concurrent.batch_p50_ms, concurrent.batch_p99_ms, concurrent.batches, concurrent.errors
    );
    println!(
        "speedup over sequential: {:.1}x",
        concurrent.requests_per_sec / sequential.max(1.0)
    );

    let snapshot = powerplay_telemetry::global().snapshot();
    if let Some(h) = snapshot.histogram("powerplay_http_request_seconds") {
        for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
            if let Some(v) = h.quantile_seconds(q).filter(|v| v.is_finite()) {
                println!(
                    "server-side request {label} <= {:.1} us (log2 bucket bound)",
                    v * 1e6
                );
            }
        }
    }

    let body = Json::object([
        ("host_cpus", Json::from(host_cpus as f64)),
        (
            "sequential",
            Json::object([
                ("requests_per_sec", Json::from(sequential)),
                ("clients", Json::from(1.0)),
            ]),
        ),
        (
            "concurrent_128",
            Json::object([
                ("requests_per_sec", Json::from(concurrent.requests_per_sec)),
                ("clients", Json::from(CLIENTS as f64)),
                ("pipeline_depth", Json::from(PIPELINE_DEPTH as f64)),
                ("requests", Json::from(concurrent.requests as f64)),
                ("errors", Json::from(concurrent.errors as f64)),
                ("batch_p50_ms", Json::from(concurrent.batch_p50_ms)),
                ("batch_p99_ms", Json::from(concurrent.batch_p99_ms)),
            ]),
        ),
        ("telemetry", snapshot.to_json()),
    ]);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    match std::fs::write(&out, format!("{}\n", body.to_pretty())) {
        Ok(()) => println!("recorded {}", out.display()),
        Err(e) => eprintln!("could not record {}: {e}", out.display()),
    }

    server.shutdown();
}

/// One client, one request per fresh connection — the pre-reactor
/// measurement shape (and the worst case for the accept path).
fn run_sequential(addr: std::net::SocketAddr, path: &str) -> f64 {
    let request = format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n");
    let one = |_: &mut u64| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let response = read_response(&mut BufReader::new(stream)).expect("response");
        assert_eq!(response.status(), Status::Ok);
        assert!(response.body_text().contains("total_w"));
    };
    // Brief warmup, then a timed loop.
    let warmup = Instant::now();
    let mut scratch = 0u64;
    while warmup.elapsed() < Duration::from_secs_f64(SEQUENTIAL_SECS / 10.0) {
        one(&mut scratch);
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < Duration::from_secs_f64(SEQUENTIAL_SECS) {
        one(&mut scratch);
        iters += 1;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

struct ConcurrentResult {
    requests_per_sec: f64,
    requests: u64,
    errors: u64,
    batches: usize,
    batch_p50_ms: f64,
    batch_p99_ms: f64,
}

/// 128 keep-alive connections, each writing batches of 8 pipelined GETs
/// and reading all 8 responses back — every response is awaited, so a
/// lost or out-of-order response shows up as an error, not silence.
fn run_concurrent(addr: std::net::SocketAddr, path: &str) -> ConcurrentResult {
    let stop = Arc::new(AtomicBool::new(false));
    let batch: Vec<u8> = format!("GET {path} HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
        .into_bytes()
        .repeat(PIPELINE_DEPTH);

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let batch = batch.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut requests = 0u64;
                let mut errors = 0u64;
                let mut latencies_ns: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    if writer.write_all(&batch).is_err() {
                        errors += PIPELINE_DEPTH as u64;
                        break;
                    }
                    for _ in 0..PIPELINE_DEPTH {
                        match read_response(&mut reader) {
                            Ok(r)
                                if r.status() == Status::Ok
                                    && r.body_text().contains("total_w") => {}
                            _ => errors += 1,
                        }
                        requests += 1;
                    }
                    latencies_ns.push(t0.elapsed().as_nanos() as u64);
                }
                (requests, errors, latencies_ns)
            })
        })
        .collect();

    let start = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(CONCURRENT_SECS));
    stop.store(true, Ordering::Relaxed);
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for worker in workers {
        let (r, e, l) = worker.join().expect("client thread");
        requests += r;
        errors += e;
        latencies.extend(l);
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx] as f64 / 1e6
    };
    ConcurrentResult {
        requests_per_sec: requests as f64 / elapsed,
        requests,
        errors,
        batches: latencies.len(),
        batch_p50_ms: quantile(0.5),
        batch_p99_ms: quantile(0.99),
    }
}
