//! E-T3 — incremental what-if: turning one knob must not pay for the
//! whole system. Measures dirty-set delta replay against full compiled
//! replay on the InfoPad sheet (paper Figure 5), times the memoized
//! 64-point supply sweep against the PR 1 parallel baseline
//! (`BENCH_sweep_vdd.json`), and records `BENCH_incremental.json` —
//! the speedup is computed from rates measured in this same run.
//!
//! The invariants at the top run under `--test` too, so CI's bench
//! smoke catches a regression (broad dirty sets, dead memoization)
//! without paying for the timing loops.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay::designs::infopad;
use powerplay::whatif;
use powerplay_bench::{banner, record_metrics, session, throughput};
use powerplay_sheet::{DeltaOutcome, ReplayState};

/// Reads one un-labelled series out of a Prometheus exposition.
fn prom_value(exposition: &str, series: &str) -> f64 {
    exposition
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix(series)?.strip_prefix(' ')?;
            rest.trim().parse().ok()
        })
        .unwrap_or(0.0)
}

fn bench(c: &mut Criterion) {
    banner("E-T3: incremental what-if (dirty-set replay + sweep memoization)");
    let pp = session();
    let system = infopad::sheet();
    let plan = pp.compile(&system);

    // --- Invariants, checked before anything is timed: the radio_duty
    // delta really is narrow, bit-identical to a full replay, and
    // duplicate sweep points really hit the memo.
    let mut state = ReplayState::new();
    plan.replay_delta(&mut state, &[]).unwrap();
    let delta = plan
        .replay_delta(&mut state, &[("radio_duty", 0.25)])
        .unwrap();
    assert_eq!(state.last_outcome(), DeltaOutcome::Incremental);
    let dirty = state
        .last_dirty_rows()
        .expect("delta records a dirty count");
    assert!(
        dirty < plan.row_count(),
        "{dirty} of {} rows dirty — the delta is not incremental",
        plan.row_count()
    );
    assert_eq!(delta, plan.play_with(&[("radio_duty", 0.25)]).unwrap());
    println!(
        "radio_duty delta: {dirty} of {} rows re-evaluated",
        plan.row_count()
    );

    let telemetry = powerplay_telemetry::global();
    let hits_before = prom_value(&telemetry.prometheus(), "powerplay_whatif_memo_hits_total");
    whatif::sweep_compiled(&plan, "vdd", &[1.2, 1.5, 1.5, 1.2]).unwrap();
    let hits_after = prom_value(&telemetry.prometheus(), "powerplay_whatif_memo_hits_total");
    assert!(
        hits_after >= hits_before + 2.0,
        "duplicate sweep points must hit the memo ({hits_before} -> {hits_after})"
    );
    println!(
        "sweep memo hits on duplicate points: {}",
        hits_after - hits_before
    );

    // --- Criterion samples. The knob toggles between two values so every
    // iteration really re-evaluates (a repeated value would answer from
    // the memoized previous report and time nothing).
    let mut group = c.benchmark_group("incremental");
    group.bench_function("full_replay_radio_duty", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let duty = if flip { 0.25 } else { 0.75 };
            plan.play_with(&[("radio_duty", duty)])
                .unwrap()
                .total_power()
        })
    });
    group.bench_function("delta_replay_radio_duty", |b| {
        let mut state = ReplayState::new();
        plan.replay_delta(&mut state, &[]).unwrap();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let duty = if flip { 0.25 } else { 0.75 };
            plan.replay_delta(&mut state, &[("radio_duty", duty)])
                .unwrap()
                .total_power()
        })
    });
    group.finish();

    let dense: Vec<f64> = (0..64).map(|i| 1.0 + 0.05 * f64::from(i)).collect();
    let mut group = c.benchmark_group("incremental/sweep64_infopad");
    group.sample_size(10);
    group.bench_function("memoized_parallel", |b| {
        b.iter(|| whatif::sweep_compiled(&plan, "vdd", &dense).unwrap().len())
    });
    group.finish();

    // --- Headline rates for cross-commit diffing. Both sides toggle the
    // same knob so the comparison is evaluate-vs-evaluate, and the
    // recorded speedup comes from this run, not from prose.
    let mut flip = false;
    let full_rate = throughput(300, || {
        flip = !flip;
        let duty = if flip { 0.25 } else { 0.75 };
        std::hint::black_box(
            plan.play_with(&[("radio_duty", duty)])
                .unwrap()
                .total_power(),
        );
    });
    let mut state = ReplayState::new();
    plan.replay_delta(&mut state, &[]).unwrap();
    let mut flip = false;
    let delta_rate = throughput(300, || {
        flip = !flip;
        let duty = if flip { 0.25 } else { 0.75 };
        std::hint::black_box(
            plan.replay_delta(&mut state, &[("radio_duty", duty)])
                .unwrap()
                .total_power(),
        );
    });
    let sweep_rate = throughput(400, || {
        std::hint::black_box(whatif::sweep_compiled(&plan, "vdd", &dense).unwrap().len());
    });
    let points = dense.len() as f64;
    println!(
        "radio_duty replays/sec: full {full_rate:.0}, delta {delta_rate:.0} ({:.1}x); \
         64-point vdd sweep {:.0} plays/sec",
        delta_rate / full_rate,
        sweep_rate * points,
    );
    record_metrics(
        "incremental",
        &[
            ("delta_dirty_rows", dirty as f64),
            ("rows_total", plan.row_count() as f64),
            ("full_replays_per_sec", full_rate),
            ("delta_replays_per_sec", delta_rate),
            ("delta_speedup", delta_rate / full_rate),
            ("sweep64_plays_per_sec", sweep_rate * points),
            // The memoized sweep now runs on the batched bytecode
            // kernel; recorded under its own key so the dispatch is
            // visible in cross-commit diffs.
            ("bytecode_sweep64_plays_per_sec", sweep_rate * points),
        ],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
