//! E-F6/F7 — paper Figures 6–7: model access across the network.
//! Spins up a local PowerPlay site, regenerates the fetch flow (request
//! for model → model), and times both single-model and whole-library
//! transfers over real HTTP.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay::ucb_library;
use powerplay_bench::banner;
use powerplay_web::app::PowerPlayApp;
use powerplay_web::remote;

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("powerplay-bench-remote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = PowerPlayApp::new(ucb_library(), dir);
    let server = app.serve("127.0.0.1:0").expect("bind ephemeral port");
    let base = format!("http://{}", server.addr());

    banner("Figure 7: model access across the network (HTTP, not SMTP)");
    let fetched = remote::fetch_library(&base).expect("fetch own library");
    println!("GET {base}/api/library -> {} models", fetched.len());
    let element = remote::fetch_element(&base, "ucb/multiplier").expect("fetch one model");
    println!(
        "GET {base}/api/element?name=ucb/multiplier -> `{}` ({} params)",
        element.name(),
        element.params().len(),
    );
    println!("(paper: 'access of models across the network has been demonstrated')");

    let mut group = c.benchmark_group("fig7");
    group.sample_size(30);
    group.bench_function("fetch_single_model", |b| {
        b.iter(|| remote::fetch_element(&base, "ucb/multiplier").unwrap())
    });
    group.bench_function("fetch_whole_library", |b| {
        b.iter(|| remote::fetch_library(&base).unwrap().len())
    });
    group.bench_function("merge_remote_into_local", |b| {
        b.iter(|| {
            let mut local = powerplay::Registry::new();
            remote::merge_remote_library(&mut local, &base).unwrap()
        })
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
