//! E-A2 — voltage-scaling exploration: power-vs-VDD series for both
//! reference designs ("parameters such as … supply voltages can be
//! varied dynamically"), plus the timing-constrained minimum-supply
//! search. Regenerates the curves, then times the sweep machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use powerplay::designs::infopad;
use powerplay::designs::luminance::{sheet, LuminanceArch};
use powerplay::{whatif, Voltage};
use powerplay_bench::{banner, record_metrics, session, throughput};

const VDD_POINTS: [f64; 9] = [1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.3, 5.0];

fn regenerate() {
    let pp = session();
    banner("E-A2: power vs supply voltage");
    let decoder = sheet(LuminanceArch::GroupedLut);
    let system = infopad::sheet();
    println!(
        "{:>6} {:>16} {:>16}",
        "vdd", "decoder (Fig 3)", "InfoPad system"
    );
    let dec_curve = whatif::sweep_global(&decoder, pp.registry(), "vdd", &VDD_POINTS).unwrap();
    let sys_curve = whatif::sweep_global(&system, pp.registry(), "vdd", &VDD_POINTS).unwrap();
    for ((vdd, d), (_, s)) in dec_curve.iter().zip(&sys_curve) {
        println!(
            "{vdd:>6.2} {:>16} {:>16}",
            d.total_power().to_string(),
            s.total_power().to_string(),
        );
    }
    println!(
        "(decoder scales ~vdd^2; the display/radio-dominated system barely moves — \
         the 'optimize the right component' lesson)"
    );
    match whatif::min_vdd_meeting_timing(
        &decoder,
        pp.registry(),
        Voltage::new(0.75),
        Voltage::new(3.3),
    )
    .unwrap()
    {
        Some((vdd, report)) => println!(
            "minimum supply meeting 2 MHz timing: {:.2} V -> {}",
            vdd.value(),
            report.total_power(),
        ),
        None => println!("timing unreachable"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let pp = session();
    let decoder = sheet(LuminanceArch::GroupedLut);
    c.bench_function("sweep/nine_point_vdd_sweep", |b| {
        b.iter(|| {
            whatif::sweep_global(&decoder, pp.registry(), "vdd", &VDD_POINTS)
                .unwrap()
                .len()
        })
    });
    c.bench_function("sweep/sensitivities", |b| {
        b.iter(|| whatif::sensitivities(&decoder, pp.registry()).unwrap())
    });
    c.bench_function("sweep/min_vdd_bisection", |b| {
        b.iter(|| {
            whatif::min_vdd_meeting_timing(
                &decoder,
                pp.registry(),
                Voltage::new(0.75),
                Voltage::new(3.3),
            )
            .unwrap()
            .map(|(v, _)| v)
        })
    });

    // Dense sweep, serial vs parallel, on the hierarchical InfoPad
    // system. The parallel path must return the same reports in the
    // same order — checked here before timing anything — and beat the
    // serial clone-mutate-play loop.
    let system = infopad::sheet();
    let dense: Vec<f64> = (0..64).map(|i| 1.0 + 0.05 * f64::from(i)).collect();
    let serial = whatif::sweep_global_serial(&system, pp.registry(), "vdd", &dense).unwrap();
    let parallel = whatif::sweep_global(&system, pp.registry(), "vdd", &dense).unwrap();
    assert_eq!(serial, parallel, "parallel sweep must be bit-identical");

    let mut group = c.benchmark_group("sweep/dense64_infopad");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            whatif::sweep_global_serial(&system, pp.registry(), "vdd", &dense)
                .unwrap()
                .len()
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            whatif::sweep_global(&system, pp.registry(), "vdd", &dense)
                .unwrap()
                .len()
        })
    });
    group.finish();

    let serial_rate = throughput(400, || {
        std::hint::black_box(
            whatif::sweep_global_serial(&system, pp.registry(), "vdd", &dense)
                .unwrap()
                .len(),
        );
    });
    let parallel_rate = throughput(400, || {
        std::hint::black_box(
            whatif::sweep_global(&system, pp.registry(), "vdd", &dense)
                .unwrap()
                .len(),
        );
    });
    let points = dense.len() as f64;
    println!(
        "64-point InfoPad vdd sweep: serial {:.0} plays/sec, parallel {:.0} plays/sec ({:.1}x)",
        serial_rate * points,
        parallel_rate * points,
        parallel_rate / serial_rate
    );
    record_metrics(
        "sweep_vdd",
        &[
            ("points", points),
            ("serial_plays_per_sec", serial_rate * points),
            ("parallel_plays_per_sec", parallel_rate * points),
            ("parallel_speedup", parallel_rate / serial_rate),
            // The parallel path batches points through the bytecode
            // sweep kernel (8 lanes per instruction-dispatch pass);
            // same measurement, recorded under the bytecode_ family.
            ("bytecode_batched_plays_per_sec", parallel_rate * points),
            ("bytecode_batch_speedup", parallel_rate / serial_rate),
        ],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
