//! E-T1 — the workflow-latency claim: "the whole process … was executed
//! … in less than three minutes" and "the estimate can take seconds".
//! Times every interactive step of the engine, from formula parsing to
//! macro lumping, plus an ablation of dependency-ordered evaluation cost
//! versus sheet size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powerplay::designs::infopad;
use powerplay::designs::luminance::{sheet, LuminanceArch};
use powerplay::{Expr, Scope, Sheet};
use powerplay_bench::{banner, record_metrics_with_refs, session, throughput};

fn wide_sheet(rows: usize) -> Sheet {
    let mut s = Sheet::new("wide");
    s.set_global("vdd", "1.5").unwrap();
    s.set_global("f", "2MHz").unwrap();
    for i in 0..rows {
        s.add_element_row(
            &format!("Row {i}"),
            "ucb/sram",
            [("words", "1024"), ("bits", "8"), ("f", "f / 4")],
        )
        .unwrap();
    }
    s
}

fn bench(c: &mut Criterion) {
    banner("E-T1: interactive-latency measurements (paper: seconds; here: see below)");
    let pp = session();

    c.bench_function("latency/parse_formula", |b| {
        b.iter(|| Expr::parse(std::hint::black_box("c0 + c1*words + c2*words*bits")).unwrap())
    });
    c.bench_function("latency/eval_formula", |b| {
        let e = Expr::parse("c0 + c1*words + c2*words*bits").unwrap();
        let mut scope = Scope::new();
        scope.set("c0", 5e-12);
        scope.set("c1", 20e-15);
        scope.set("c2", 2.5e-15);
        scope.set("words", 2048.0);
        scope.set("bits", 8.0);
        b.iter(|| e.eval(std::hint::black_box(&scope)).unwrap())
    });

    let decoder = sheet(LuminanceArch::DirectLut);
    c.bench_function("latency/play_decoder", |b| {
        b.iter(|| pp.play(&decoder).unwrap().total_power())
    });
    c.bench_function("latency/whatif_one_knob", |b| {
        // The tightest interactive loop: change vdd, re-Play.
        b.iter(|| {
            let mut v = decoder.clone();
            v.set_global_value("vdd", 1.1);
            pp.play(&v).unwrap().total_power()
        })
    });

    let system = infopad::sheet();
    c.bench_function("latency/play_hierarchical_system", |b| {
        b.iter(|| pp.play(&system).unwrap().total_power())
    });
    c.bench_function("latency/lump_macro", |b| {
        b.iter(|| decoder.to_macro("m", pp.registry()).unwrap())
    });
    c.bench_function("latency/sheet_json_roundtrip", |b| {
        b.iter(|| {
            let text = system.to_json().to_string();
            Sheet::from_json(&powerplay_json_parse(&text)).unwrap()
        })
    });

    // Scaling ablation: evaluation cost vs row count (linear is the
    // design goal; the dependency sort must not go quadratic in practice).
    let mut group = c.benchmark_group("latency/rows_scaling");
    for rows in [8usize, 32, 128] {
        let s = wide_sheet(rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &s, |b, s| {
            b.iter(|| pp.play(s).unwrap().total_power())
        });
    }
    group.finish();

    // Compiled evaluation plans: pay dependency analysis and element
    // resolution once, then replay with overrides. Contrast each entry
    // with its clone-mutate-re-play counterpart above.
    let mut group = c.benchmark_group("compiled_replay");
    let decoder_plan = pp.compile(&decoder);
    group.bench_function("decoder_play", |b| {
        b.iter(|| decoder_plan.play().unwrap().total_power())
    });
    group.bench_function("decoder_one_knob", |b| {
        b.iter(|| {
            decoder_plan
                .play_with(&[("vdd", 1.1)])
                .unwrap()
                .total_power()
        })
    });
    let system_plan = pp.compile(&system);
    group.bench_function("infopad_play", |b| {
        b.iter(|| system_plan.play().unwrap().total_power())
    });
    group.bench_function("infopad_one_knob", |b| {
        b.iter(|| {
            system_plan
                .play_with(&[("vdd", 1.1)])
                .unwrap()
                .total_power()
        })
    });
    group.finish();

    // Headline plays/sec on the InfoPad system sheet, recorded for
    // cross-commit diffing: compiled replay must beat per-play
    // recompilation by a wide margin (acceptance floor: 3x), and the
    // bytecode register machine must beat the scope-chain tree walker
    // it replaced (`play_with` dispatches to bytecode; the tree walker
    // stays reachable as the parity oracle).
    let recompile_rate = throughput(300, || {
        let mut v = system.clone();
        v.set_global_value("vdd", 1.1);
        std::hint::black_box(pp.play(&v).unwrap().total_power());
    });
    let tree_rate = throughput(300, || {
        std::hint::black_box(
            system_plan
                .play_with_tree(&[("vdd", 1.1)])
                .unwrap()
                .total_power(),
        );
    });
    let replay_rate = throughput(300, || {
        std::hint::black_box(
            system_plan
                .play_with(&[("vdd", 1.1)])
                .unwrap()
                .total_power(),
        );
    });
    assert!(
        replay_rate >= tree_rate,
        "bytecode replay ({replay_rate:.0}/s) slower than the tree walker ({tree_rate:.0}/s)"
    );
    println!(
        "infopad plays/sec: recompile {recompile_rate:.0}, tree walk {tree_rate:.0}, \
         bytecode replay {replay_rate:.0} ({:.1}x over tree walk)",
        replay_rate / tree_rate
    );

    // Reference totals, computed live so a model regression shows up as
    // a diff here (and as a failure in `crates/analysis/tests/designs.rs`,
    // which asserts the proven bounds bracket these exact values).
    let reference = [
        ("infopad", pp.play(&system).unwrap().total_power().value()),
        (
            "luminance_direct_lut",
            pp.play(&sheet(LuminanceArch::DirectLut))
                .unwrap()
                .total_power()
                .value(),
        ),
        (
            "luminance_grouped_lut",
            pp.play(&sheet(LuminanceArch::GroupedLut))
                .unwrap()
                .total_power()
                .value(),
        ),
    ];
    record_metrics_with_refs(
        "engine_latency",
        &[
            ("infopad_plays_per_sec_recompile", recompile_rate),
            ("infopad_plays_per_sec_compiled_replay", replay_rate),
            ("compiled_replay_speedup", replay_rate / recompile_rate),
            ("infopad_plays_per_sec_tree_walk", tree_rate),
            ("bytecode_plays_per_sec", replay_rate),
            ("bytecode_speedup", replay_rate / tree_rate),
        ],
        Some(("reference_total_power_w", &reference)),
    );
}

fn powerplay_json_parse(text: &str) -> powerplay_json::Json {
    powerplay_json::Json::parse(text).unwrap()
}

criterion_group!(benches, bench);
criterion_main!(benches);
