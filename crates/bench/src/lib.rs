//! Shared helpers for the figure-regeneration benchmarks.
//!
//! Every bench target first *regenerates* its paper artifact — printing
//! the same rows/series the figure reports — and then measures how fast
//! the engine produces it (the paper's usability claim is that estimates
//! "take seconds"; ours take microseconds).

use powerplay::PowerPlay;

/// A fresh session with the built-in library (the state every 1996 user
/// started from).
pub fn session() -> PowerPlay {
    PowerPlay::new()
}

/// Prints a banner separating regenerated-figure output from criterion's
/// timing output.
pub fn banner(figure: &str) {
    println!();
    println!("=== regenerating {figure} ===");
}

/// Records a bench target's headline numbers as `BENCH_<tag>.json` at
/// the repository root (keys in the given order), so runs can be diffed
/// across commits. Values print with enough precision for rates
/// (plays/sec) and ratios alike.
pub fn record_metrics(tag: &str, entries: &[(&str, f64)]) {
    record_metrics_with_refs(tag, entries, None);
}

/// [`record_metrics`] with an optional trailing nested object of
/// *full-precision* values (shortest round-trip form), for reference
/// numbers downstream tests compare exactly — rates round to 3 places,
/// reference powers must not.
pub fn record_metrics_with_refs(
    tag: &str,
    entries: &[(&str, f64)],
    refs: Option<(&str, &[(&str, f64)])>,
) {
    let mut body = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() && refs.is_none() {
            ""
        } else {
            ","
        };
        body.push_str(&format!("  \"{key}\": {value:.3}{sep}\n"));
    }
    if let Some((key, values)) = refs {
        body.push_str(&format!("  \"{key}\": {{\n"));
        for (i, (name, value)) in values.iter().enumerate() {
            let sep = if i + 1 == values.len() { "" } else { "," };
            body.push_str(&format!("    \"{name}\": {value}{sep}\n"));
        }
        body.push_str("  }\n");
    }
    body.push_str("}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{tag}.json"));
    match std::fs::write(&path, body) {
        Ok(()) => println!("recorded {}", path.display()),
        Err(e) => eprintln!("could not record {}: {e}", path.display()),
    }
}

/// Median-of-runs throughput helper: runs `f` in a timed loop for about
/// `budget_ms` and returns iterations per second.
pub fn throughput(budget_ms: u64, mut f: impl FnMut()) -> f64 {
    let budget = std::time::Duration::from_millis(budget_ms);
    // Warm up briefly so one-time costs (allocator, caches) don't skew.
    let warmup = std::time::Instant::now();
    while warmup.elapsed() < budget / 10 {
        f();
    }
    let start = std::time::Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}
