//! Shared helpers for the figure-regeneration benchmarks.
//!
//! Every bench target first *regenerates* its paper artifact — printing
//! the same rows/series the figure reports — and then measures how fast
//! the engine produces it (the paper's usability claim is that estimates
//! "take seconds"; ours take microseconds).

use powerplay::PowerPlay;

/// A fresh session with the built-in library (the state every 1996 user
/// started from).
pub fn session() -> PowerPlay {
    PowerPlay::new()
}

/// Prints a banner separating regenerated-figure output from criterion's
/// timing output.
pub fn banner(figure: &str) {
    println!();
    println!("=== regenerating {figure} ===");
}
