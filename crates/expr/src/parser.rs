//! Pratt parser turning token streams into [`Expr`] trees.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::ParseExprError;
use crate::lexer::{lex, Spanned, Token};

impl Expr {
    /// Parses a formula.
    ///
    /// Supported grammar: `+ - * / % ^` with conventional precedence
    /// (`^` right-associative, binding tighter than unary minus),
    /// comparisons (`< <= > >= == !=`, lowest precedence, yielding 0/1),
    /// parentheses, function calls, identifiers and SI-scaled literals.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] with a byte offset on malformed input.
    ///
    /// ```
    /// use powerplay_expr::Expr;
    /// # fn main() -> Result<(), powerplay_expr::ParseExprError> {
    /// let e = Expr::parse("c0 + c1*words + c1*bits + c2*words*bits")?;
    /// assert_eq!(e.free_variables().len(), 5);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(src: &str) -> Result<Expr, ParseExprError> {
        let tokens = lex(src)?;
        let mut parser = Parser {
            tokens: &tokens,
            pos: 0,
            src_len: src.len(),
        };
        let expr = parser.expression(0)?;
        if parser.pos != parser.tokens.len() {
            return Err(ParseExprError::new(
                parser.offset(),
                "unexpected trailing tokens",
            ));
        }
        Ok(expr)
    }
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
    src_len: usize,
}

/// Binding power to the right of unary minus: tighter than `*`, looser
/// than `^`, so `-x^2` parses as `-(x^2)` and `-x*y` as `(-x)*y`.
const UNARY_NEG_BP: u8 = 11;

impl<'a> Parser<'a> {
    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |t| t.offset)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<&'a Token> {
        let token = self.tokens.get(self.pos).map(|t| &t.token);
        self.pos += 1;
        token
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ParseExprError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseExprError::new(
                self.offset(),
                format!("expected {what}"),
            ))
        }
    }

    fn expression(&mut self, min_bp: u8) -> Result<Expr, ParseExprError> {
        let mut lhs = self.prefix()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Rem,
                Some(Token::Caret) => BinaryOp::Pow,
                Some(Token::Lt) => BinaryOp::Lt,
                Some(Token::Le) => BinaryOp::Le,
                Some(Token::Gt) => BinaryOp::Gt,
                Some(Token::Ge) => BinaryOp::Ge,
                Some(Token::EqEq) => BinaryOp::Eq,
                Some(Token::Ne) => BinaryOp::Ne,
                _ => break,
            };
            let (l_bp, r_bp) = op.binding_power();
            if l_bp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = self.expression(r_bp)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Expr, ParseExprError> {
        let offset = self.offset();
        match self.advance() {
            Some(Token::Number(n)) => Ok(Expr::Number(*n)),
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let args = self.call_arguments()?;
                    Ok(Expr::Call(name.clone(), args))
                } else {
                    Ok(Expr::Variable(name.clone()))
                }
            }
            Some(Token::Minus) => {
                let inner = self.expression(UNARY_NEG_BP)?;
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)))
            }
            Some(Token::Plus) => self.prefix(),
            Some(Token::LParen) => {
                let inner = self.expression(0)?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(inner)
            }
            Some(_) => Err(ParseExprError::new(offset, "unexpected token")),
            None => Err(ParseExprError::new(offset, "unexpected end of formula")),
        }
    }

    fn call_arguments(&mut self) -> Result<Vec<Expr>, ParseExprError> {
        let mut args = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.pos += 1;
            return Ok(args);
        }
        loop {
            args.push(self.expression(0)?);
            match self.peek() {
                Some(Token::Comma) => self.pos += 1,
                Some(Token::RParen) => {
                    self.pos += 1;
                    return Ok(args);
                }
                _ => {
                    return Err(ParseExprError::new(
                        self.offset(),
                        "expected `,` or `)` in argument list",
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scope;

    fn eval(src: &str) -> f64 {
        Expr::parse(src).unwrap().eval(&Scope::new()).unwrap()
    }

    #[test]
    fn precedence() {
        assert_eq!(eval("1 + 2 * 3"), 7.0);
        assert_eq!(eval("(1 + 2) * 3"), 9.0);
        assert_eq!(eval("10 - 4 - 3"), 3.0); // left-assoc
        assert_eq!(eval("2 ^ 3 ^ 2"), 512.0); // right-assoc
        assert_eq!(eval("10 / 2 / 5"), 1.0);
        assert_eq!(eval("7 % 4"), 3.0);
    }

    #[test]
    fn unary_minus() {
        assert_eq!(eval("-3 + 5"), 2.0);
        assert_eq!(eval("-2 ^ 2"), -4.0); // -(2^2)
        assert_eq!(eval("(-2) ^ 2"), 4.0);
        assert_eq!(eval("--3"), 3.0);
        assert_eq!(eval("+5"), 5.0);
        assert_eq!(eval("-2 * 3"), -6.0);
    }

    #[test]
    fn comparisons_yield_indicator_values() {
        assert_eq!(eval("3 < 4"), 1.0);
        assert_eq!(eval("3 >= 4"), 0.0);
        assert_eq!(eval("2 + 2 == 4"), 1.0);
        assert_eq!(eval("1 != 1"), 0.0);
        // Comparisons bind loosest.
        assert_eq!(eval("1 + 1 < 1 + 3"), 1.0);
    }

    #[test]
    fn function_calls() {
        assert_eq!(eval("min(3, 2)"), 2.0);
        assert_eq!(eval("max(3, 2 * 2)"), 4.0);
        assert_eq!(eval("sqrt(16)"), 4.0);
        assert_eq!(eval("if(3 > 2, 10, 20)"), 10.0);
    }

    #[test]
    fn si_literals_in_formulas() {
        let v = eval("8 * 8 * 253f");
        assert!((v - 8.0 * 8.0 * 253e-15).abs() < 1e-24);
        assert_eq!(eval("2MHz / 16"), 125e3);
    }

    #[test]
    fn error_positions() {
        assert_eq!(Expr::parse("1 + * 2").unwrap_err().offset(), 4);
        assert_eq!(Expr::parse("1 + 2)").unwrap_err().offset(), 5);
        assert_eq!(Expr::parse("(1 + 2").unwrap_err().offset(), 6);
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("min(1, 2").is_err());
        assert!(Expr::parse("f(,)").is_err());
    }

    #[test]
    fn deep_nesting_parses() {
        let src = format!("{}1{}", "(".repeat(64), ")".repeat(64));
        assert_eq!(eval(&src), 1.0);
    }
}
