//! The expression tree and its pretty-printer.

use std::collections::BTreeSet;
use std::fmt;

/// Binary operators, in the order of the paper's spreadsheet formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (remainder)
    Rem,
    /// `^` (power, right-associative)
    Pow,
    /// `<` — yields 1.0 or 0.0
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl BinaryOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Pow => "^",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
        }
    }

    /// Binding power pair `(left, right)` for the Pratt parser; higher
    /// binds tighter. `Pow` is right-associative (left > right).
    pub(crate) fn binding_power(self) -> (u8, u8) {
        match self {
            BinaryOp::Eq | BinaryOp::Ne => (2, 3),
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => (4, 5),
            BinaryOp::Add | BinaryOp::Sub => (6, 7),
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => (8, 9),
            BinaryOp::Pow => (13, 12),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
}

/// A parsed formula.
///
/// `Expr` is immutable once parsed; sheets store one per parameter and
/// re-evaluate it against fresh [`Scope`](crate::Scope)s when the user
/// presses *Play*.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal, already scaled by any SI suffix (`253f` ⇒ `2.53e-13`).
    Number(f64),
    /// A variable reference, resolved against the scope chain.
    Variable(String),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// A call to a builtin function, e.g. `min(a, b)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for a literal.
    pub fn number(value: f64) -> Expr {
        Expr::Number(value)
    }

    /// Convenience constructor for a variable reference.
    pub fn variable(name: impl Into<String>) -> Expr {
        Expr::Variable(name.into())
    }

    /// Collects every variable the formula references, in sorted order.
    ///
    /// The sheet engine uses this to build the dependency graph between
    /// parameters.
    ///
    /// ```
    /// use powerplay_expr::Expr;
    /// # fn main() -> Result<(), powerplay_expr::ParseExprError> {
    /// let e = Expr::parse("c * vdd^2 * f / 16")?;
    /// let vars: Vec<_> = e.free_variables().into_iter().collect();
    /// assert_eq!(vars, ["c", "f", "vdd"]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn free_variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Number(_) => {}
            Expr::Variable(name) => {
                out.insert(name.clone());
            }
            Expr::Unary(_, inner) => inner.collect_variables(out),
            Expr::Binary(_, lhs, rhs) => {
                lhs.collect_variables(out);
                rhs.collect_variables(out);
            }
            Expr::Call(_, args) => {
                for arg in args {
                    arg.collect_variables(out);
                }
            }
        }
    }

    /// True when the formula references no variables at all.
    pub fn is_constant(&self) -> bool {
        self.free_variables().is_empty()
    }
}

impl fmt::Display for Expr {
    /// Prints a fully-parenthesized form that reparses to the same tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(n) => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:?}")
                }
            }
            Expr::Variable(name) => f.write_str(name),
            Expr::Unary(UnaryOp::Neg, inner) => write!(f, "(-{inner})"),
            Expr::Binary(op, lhs, rhs) => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_variables_deduplicate() {
        let e = Expr::parse("x + x * y").unwrap();
        let vars: Vec<_> = e.free_variables().into_iter().collect();
        assert_eq!(vars, ["x", "y"]);
    }

    #[test]
    fn constant_detection() {
        assert!(Expr::parse("1 + 2 * 3").unwrap().is_constant());
        assert!(!Expr::parse("1 + n").unwrap().is_constant());
        assert!(!Expr::parse("min(1, n)").unwrap().is_constant());
    }

    #[test]
    fn display_reparses_to_same_tree() {
        for src in [
            "1 + 2 * 3",
            "-x ^ 2",
            "min(a, b / 2)",
            "(a + b) * c",
            "a < b",
        ] {
            let parsed = Expr::parse(src).unwrap();
            let printed = parsed.to_string();
            let reparsed = Expr::parse(&printed).unwrap();
            assert_eq!(parsed, reparsed, "{src} -> {printed}");
        }
    }

    #[test]
    fn display_integers_without_fraction() {
        assert_eq!(Expr::parse("16").unwrap().to_string(), "16");
        assert_eq!(Expr::parse("2.5").unwrap().to_string(), "2.5");
    }
}
