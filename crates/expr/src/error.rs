//! Error types for parsing and evaluating formulas.

use std::error::Error;
use std::fmt;

/// Error produced when a formula fails to parse, with a byte offset.
///
/// ```
/// use powerplay_expr::Expr;
///
/// let err = Expr::parse("1 + * 2").unwrap_err();
/// assert_eq!(err.offset(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    offset: usize,
    message: String,
}

impl ParseExprError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseExprError {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset into the source at which parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl Error for ParseExprError {}

/// Error produced when a well-formed formula cannot be evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A variable was not found in the scope chain.
    UnknownVariable(String),
    /// A function name is not one of the builtins.
    UnknownFunction(String),
    /// A builtin was called with the wrong number of arguments.
    WrongArity {
        /// The function that was mis-called.
        function: String,
        /// Arguments the builtin expects.
        expected: usize,
        /// Arguments the call site supplied.
        found: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            EvalError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            EvalError::WrongArity {
                function,
                expected,
                found,
            } => write!(
                f,
                "function `{function}` expects {expected} argument(s), found {found}"
            ),
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EvalError::UnknownVariable("vdd".into()).to_string(),
            "unknown variable `vdd`"
        );
        assert_eq!(
            EvalError::WrongArity {
                function: "min".into(),
                expected: 2,
                found: 3
            }
            .to_string(),
            "function `min` expects 2 argument(s), found 3"
        );
        let p = ParseExprError::new(7, "unexpected token");
        assert_eq!(p.to_string(), "unexpected token at offset 7");
        assert_eq!(p.offset(), 7);
    }
}
