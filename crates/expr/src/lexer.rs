//! Tokenizer for formulas, including SI-scaled numeric literals.

use crate::error::ParseExprError;

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Token {
    Number(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Caret,
    LParen,
    RParen,
    Comma,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// Unit symbols that may trail an SI prefix in a literal (`2MHz`, `1.5V`,
/// `253fF`). The unit itself never changes the value — formulas are
/// dimensionless; the sheet layer assigns meaning.
const UNIT_SUFFIXES: [&str; 8] = ["Hz", "F", "V", "W", "A", "J", "s", "Ohm"];

fn prefix_factor(c: char) -> Option<f64> {
    Some(match c {
        'f' => 1e-15,
        'p' => 1e-12,
        'n' => 1e-9,
        'u' | 'µ' => 1e-6,
        'm' => 1e-3,
        'k' => 1e3,
        'M' => 1e6,
        'G' => 1e9,
        'T' => 1e12,
        _ => return None,
    })
}

pub(crate) fn lex(src: &str) -> Result<Vec<Spanned>, ParseExprError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut pos = 0;

    while pos < bytes.len() {
        let start = pos;
        let c = src[pos..].chars().next().expect("pos in bounds");
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                pos += 1;
            }
            '+' => {
                tokens.push(Spanned {
                    token: Token::Plus,
                    offset: start,
                });
                pos += 1;
            }
            '-' => {
                tokens.push(Spanned {
                    token: Token::Minus,
                    offset: start,
                });
                pos += 1;
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: start,
                });
                pos += 1;
            }
            '/' => {
                tokens.push(Spanned {
                    token: Token::Slash,
                    offset: start,
                });
                pos += 1;
            }
            '%' => {
                tokens.push(Spanned {
                    token: Token::Percent,
                    offset: start,
                });
                pos += 1;
            }
            '^' => {
                tokens.push(Spanned {
                    token: Token::Caret,
                    offset: start,
                });
                pos += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                pos += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                pos += 1;
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                pos += 1;
            }
            '<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Le,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        offset: start,
                    });
                    pos += 1;
                }
            }
            '>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        offset: start,
                    });
                    pos += 1;
                }
            }
            '=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::EqEq,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    return Err(ParseExprError::new(start, "expected `==`"));
                }
            }
            '!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    return Err(ParseExprError::new(start, "expected `!=`"));
                }
            }
            '0'..='9' | '.' => {
                let (value, next) = lex_number(src, pos)?;
                tokens.push(Spanned {
                    token: Token::Number(value),
                    offset: start,
                });
                pos = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut end = pos;
                for ch in src[pos..].chars() {
                    if ch.is_alphanumeric() || ch == '_' {
                        end += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(src[pos..end].to_owned()),
                    offset: start,
                });
                pos = end;
            }
            other => {
                return Err(ParseExprError::new(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

/// Lexes a numeric literal with optional exponent and optional SI
/// prefix/unit suffix. Returns the scaled value and the next position.
fn lex_number(src: &str, start: usize) -> Result<(f64, usize), ParseExprError> {
    let bytes = src.as_bytes();
    let mut pos = start;
    let mut seen_digit = false;
    let mut seen_dot = false;
    while pos < bytes.len() {
        match bytes[pos] {
            b'0'..=b'9' => {
                seen_digit = true;
                pos += 1;
            }
            b'.' if !seen_dot => {
                seen_dot = true;
                pos += 1;
            }
            b'e' | b'E' if seen_digit => {
                // Only an exponent when followed by [sign] digit.
                let mut ahead = pos + 1;
                if matches!(bytes.get(ahead), Some(b'+') | Some(b'-')) {
                    ahead += 1;
                }
                if matches!(bytes.get(ahead), Some(b'0'..=b'9')) {
                    pos = ahead + 1;
                    while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                        pos += 1;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    if !seen_digit {
        return Err(ParseExprError::new(start, "invalid number"));
    }
    let mut value: f64 = src[start..pos]
        .parse()
        .map_err(|_| ParseExprError::new(start, "invalid number"))?;

    // Optional suffix: [SI prefix][unit] or bare unit, glued to the digits.
    let rest = &src[pos..];
    let first = rest.chars().next();
    if let Some(c) = first {
        if c.is_alphabetic() || c == 'µ' {
            // Collect the alphabetic run.
            let mut end = 0;
            for ch in rest.chars() {
                if ch.is_alphabetic() || ch == 'µ' {
                    end += ch.len_utf8();
                } else {
                    break;
                }
            }
            let suffix = &rest[..end];
            let mut chars = suffix.chars();
            let head = chars.next().expect("non-empty suffix");
            let tail = chars.as_str();
            if let Some(factor) = prefix_factor(head) {
                if tail.is_empty() || UNIT_SUFFIXES.contains(&tail) {
                    return Ok((value * factor, pos + end));
                }
            }
            if UNIT_SUFFIXES.contains(&suffix) {
                return Ok((value, pos + end));
            }
            return Err(ParseExprError::new(
                pos,
                format!("unknown unit suffix `{suffix}`"),
            ));
        }
    }
    // No suffix.
    let _ = &mut value;
    Ok((value, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(src: &str) -> f64 {
        match lex(src).unwrap().as_slice() {
            [Spanned {
                token: Token::Number(n),
                ..
            }] => *n,
            other => panic!("expected single number, got {other:?}"),
        }
    }

    #[test]
    fn plain_numbers() {
        assert_eq!(num("42"), 42.0);
        assert_eq!(num("2.5"), 2.5);
        assert_eq!(num("1e6"), 1e6);
        assert_eq!(num("2.5E-3"), 2.5e-3);
        assert_eq!(num(".5"), 0.5);
    }

    #[test]
    fn si_suffixes() {
        assert!((num("253f") - 253e-15).abs() < 1e-24);
        assert!((num("253fF") - 253e-15).abs() < 1e-24);
        assert_eq!(num("2MHz"), 2e6);
        assert_eq!(num("1.5V"), 1.5);
        assert_eq!(num("10k"), 10e3);
        assert!((num("150uW") - 150e-6).abs() < 1e-15);
        assert!((num("150µW") - 150e-6).abs() < 1e-15);
    }

    #[test]
    fn unknown_suffix_is_error() {
        assert!(lex("3parsecs").is_err());
        assert!(lex("2xyz").is_err());
    }

    #[test]
    fn suffix_requires_adjacency() {
        // Separated by a space, `V` is an identifier, not a unit.
        let tokens = lex("1.5 V").unwrap();
        assert_eq!(tokens.len(), 2);
        assert!(matches!(tokens[1].token, Token::Ident(ref s) if s == "V"));
    }

    #[test]
    fn operators_and_offsets() {
        let tokens = lex("a <= b != c").unwrap();
        let kinds: Vec<_> = tokens.iter().map(|t| t.token.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ne,
                Token::Ident("c".into()),
            ]
        );
        assert_eq!(tokens[1].offset, 2);
    }

    #[test]
    fn exponent_vs_identifier() {
        // `2e` with no digits: `e` is a trailing alphabetic, unknown unit.
        assert!(lex("2e").is_err());
        // `2eV`: not an exponent, not a known unit.
        assert!(lex("2eV").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("#").is_err());
        assert!(lex("= 1").is_err());
        assert!(lex("!x").is_err());
        assert!(lex(".").is_err());
    }

    #[test]
    fn identifiers_with_underscores_and_digits() {
        let tokens = lex("n_inputs2 * C_0").unwrap();
        assert!(matches!(tokens[0].token, Token::Ident(ref s) if s == "n_inputs2"));
        assert!(matches!(tokens[2].token, Token::Ident(ref s) if s == "C_0"));
    }
}
