//! The PowerPlay spreadsheet formula language.
//!
//! Every parameter of a sheet row — a bit-width, a supply voltage, an
//! access rate — is an *expression* over other parameters, exactly like a
//! spreadsheet cell. The paper's luminance example sets the read-bank
//! access rate to `f/16` and the write bank to `f/32`, where `f` is a
//! sheet-level global; its DC-DC converter dissipation is a formula over
//! the *power results* of other rows. This crate supplies that language:
//!
//! * a lexer and Pratt [parser](Expr::parse) for arithmetic with SI-scaled
//!   literals (`253f`, `2MHz`, `1.5V`), comparisons and function calls;
//! * an [evaluator](Expr::eval) over lexically-chained [`Scope`]s, which is
//!   how sub-sheets inherit global parameters in the paper's hierarchy;
//! * [free-variable extraction](Expr::free_variables) used by the sheet
//!   engine to order evaluation and detect circular definitions.
//!
//! ```
//! use powerplay_expr::{Expr, Scope};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut globals = Scope::new();
//! globals.set("f", 2e6);
//! let rate = Expr::parse("f / 16")?;
//! assert_eq!(rate.eval(&globals)?, 125e3);
//!
//! // SI-scaled literals: the multiplier model of paper EQ 20.
//! let cap = Expr::parse("8 * 8 * 253f")?;
//! assert!((cap.eval(&Scope::new())? - 8.0 * 8.0 * 253e-15).abs() < 1e-24);
//! # Ok(())
//! # }
//! ```

mod ast;
mod error;
mod eval;
mod lexer;
mod parser;

pub use ast::{BinaryOp, Expr, UnaryOp};
pub use error::{EvalError, ParseExprError};
pub use eval::{apply_binary, Builtin, Scope, BUILTIN_FUNCTIONS};
