//! Scopes and formula evaluation.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::EvalError;

/// Builtin functions callable from formulas, with their arities.
///
/// `if(cond, then, else)` treats any non-zero condition as true, which
/// composes with the 0/1-valued comparison operators.
pub const BUILTIN_FUNCTIONS: [(&str, usize); 14] = [
    ("abs", 1),
    ("sqrt", 1),
    ("exp", 1),
    ("ln", 1),
    ("log10", 1),
    ("log2", 1),
    ("floor", 1),
    ("ceil", 1),
    ("round", 1),
    ("min", 2),
    ("max", 2),
    ("pow", 2),
    ("hypot", 2),
    ("if", 3),
];

/// A builtin function resolved to an opcode, so evaluators can dispatch
/// without comparing names. The tree walker and the sheet crate's
/// bytecode interpreter share this table — one source of truth for
/// which intrinsic each name means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    Abs,
    Sqrt,
    Exp,
    Ln,
    Log10,
    Log2,
    Floor,
    Ceil,
    Round,
    Min,
    Max,
    Pow,
    Hypot,
    If,
}

impl Builtin {
    /// Resolves a function name to its opcode, or `None` for unknown
    /// functions. Covers exactly [`BUILTIN_FUNCTIONS`].
    pub fn lookup(name: &str) -> Option<Builtin> {
        Some(match name {
            "abs" => Builtin::Abs,
            "sqrt" => Builtin::Sqrt,
            "exp" => Builtin::Exp,
            "ln" => Builtin::Ln,
            "log10" => Builtin::Log10,
            "log2" => Builtin::Log2,
            "floor" => Builtin::Floor,
            "ceil" => Builtin::Ceil,
            "round" => Builtin::Round,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "pow" => Builtin::Pow,
            "hypot" => Builtin::Hypot,
            "if" => Builtin::If,
            _ => return None,
        })
    }

    /// The name this opcode was resolved from.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Abs => "abs",
            Builtin::Sqrt => "sqrt",
            Builtin::Exp => "exp",
            Builtin::Ln => "ln",
            Builtin::Log10 => "log10",
            Builtin::Log2 => "log2",
            Builtin::Floor => "floor",
            Builtin::Ceil => "ceil",
            Builtin::Round => "round",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Pow => "pow",
            Builtin::Hypot => "hypot",
            Builtin::If => "if",
        }
    }

    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Abs
            | Builtin::Sqrt
            | Builtin::Exp
            | Builtin::Ln
            | Builtin::Log10
            | Builtin::Log2
            | Builtin::Floor
            | Builtin::Ceil
            | Builtin::Round => 1,
            Builtin::Min | Builtin::Max | Builtin::Pow | Builtin::Hypot => 2,
            Builtin::If => 3,
        }
    }

    /// Applies a unary builtin. Panics on arity-2/3 opcodes.
    #[inline]
    pub fn apply1(self, x: f64) -> f64 {
        match self {
            Builtin::Abs => x.abs(),
            Builtin::Sqrt => x.sqrt(),
            Builtin::Exp => x.exp(),
            Builtin::Ln => x.ln(),
            Builtin::Log10 => x.log10(),
            Builtin::Log2 => x.log2(),
            Builtin::Floor => x.floor(),
            Builtin::Ceil => x.ceil(),
            Builtin::Round => x.round(),
            _ => unreachable!("apply1 on arity-{} builtin {}", self.arity(), self.name()),
        }
    }

    /// Applies a binary builtin. Panics on arity-1/3 opcodes.
    #[inline]
    pub fn apply2(self, a: f64, b: f64) -> f64 {
        match self {
            Builtin::Min => a.min(b),
            Builtin::Max => a.max(b),
            Builtin::Pow => a.powf(b),
            Builtin::Hypot => a.hypot(b),
            _ => unreachable!("apply2 on arity-{} builtin {}", self.arity(), self.name()),
        }
    }

    /// Applies the builtin to an argument slice of exactly [`Self::arity`]
    /// values. `if` selects on `cond != 0.0` with all arguments already
    /// evaluated — eager, like the tree walker.
    #[inline]
    pub fn apply(self, args: &[f64]) -> f64 {
        match (self.arity(), args) {
            (1, [x]) => self.apply1(*x),
            (2, [a, b]) => self.apply2(*a, *b),
            (3, [c, t, e]) => {
                debug_assert_eq!(self, Builtin::If);
                if *c != 0.0 {
                    *t
                } else {
                    *e
                }
            }
            _ => unreachable!("arity checked before dispatch"),
        }
    }
}

/// A variable environment with optional lexical parent.
///
/// Sheets use one scope per hierarchy level: a sub-sheet's scope chains to
/// its parent's, so `vdd` defined at the top level is visible in every
/// nested sub-circuit unless shadowed — the paper's "subcircuits may be
/// defined to inherit global parameters".
///
/// ```
/// use powerplay_expr::{Expr, Scope};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut top = Scope::new();
/// top.set("vdd", 1.5);
/// let mut sub = top.child();
/// sub.set("bits", 6.0);
/// assert_eq!(Expr::parse("vdd * bits")?.eval(&sub)?, 9.0);
/// # Ok(())
/// # }
/// ```
/// Keys are shared `Arc<str>` handles so callers that evaluate the same
/// design repeatedly (compiled sheet plans, sweeps) can intern each name
/// once and re-bind it every play without allocating.
#[derive(Debug, Clone, Default)]
pub struct Scope<'parent> {
    bindings: HashMap<Arc<str>, f64>,
    parent: Option<&'parent Scope<'parent>>,
}

impl<'parent> Scope<'parent> {
    /// Creates an empty root scope.
    pub fn new() -> Scope<'static> {
        Scope {
            bindings: HashMap::new(),
            parent: None,
        }
    }

    /// Creates a child scope whose lookups fall back to `self`.
    pub fn child(&self) -> Scope<'_> {
        Scope {
            bindings: HashMap::new(),
            parent: Some(self),
        }
    }

    /// Creates a child scope pre-populated with `template`'s local
    /// bindings — a wholesale table copy whose shared keys cost a
    /// reference-count bump each, not a fresh allocation. Compiled
    /// plans use this to seed element parameter defaults per play.
    pub fn child_seeded<'a>(&'a self, template: &Scope<'_>) -> Scope<'a> {
        Scope {
            bindings: template.bindings.clone(),
            parent: Some(self),
        }
    }

    /// Binds (or shadows) a variable in this scope level.
    pub fn set(&mut self, name: impl Into<Arc<str>>, value: f64) {
        self.bindings.insert(name.into(), value);
    }

    /// Resolves a variable through the scope chain.
    pub fn get(&self, name: &str) -> Option<f64> {
        match self.bindings.get(name) {
            Some(v) => Some(*v),
            None => self.parent.and_then(|p| p.get(name)),
        }
    }

    /// Names bound at *this* level (not the whole chain), sorted.
    ///
    /// Allocates and sorts on every call — hot paths that need the same
    /// listing repeatedly (compiled-plan diagnostics) should compute it
    /// once at compile time and reuse the result.
    pub fn local_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.bindings.keys().map(|k| &**k).collect();
        names.sort_unstable();
        names
    }

    /// True when the scope is an empty root: no local bindings and no
    /// parent. Such a scope cannot influence evaluation, so compiled
    /// plans may substitute a faster equivalent evaluator.
    pub fn is_empty_root(&self) -> bool {
        self.parent.is_none() && self.bindings.is_empty()
    }
}

impl<'p> FromIterator<(String, f64)> for Scope<'p> {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        Scope {
            bindings: iter
                .into_iter()
                .map(|(name, value)| (Arc::from(name), value))
                .collect(),
            parent: None,
        }
    }
}

impl Expr {
    /// Evaluates the formula against `scope`.
    ///
    /// Division by zero follows IEEE-754 (yielding ±inf/NaN) rather than
    /// erroring, matching spreadsheet behaviour; the sheet layer flags
    /// non-finite results.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for unknown variables or functions and wrong
    /// arities.
    pub fn eval(&self, scope: &Scope<'_>) -> Result<f64, EvalError> {
        match self {
            Expr::Number(n) => Ok(*n),
            Expr::Variable(name) => scope
                .get(name)
                .ok_or_else(|| EvalError::UnknownVariable(name.clone())),
            Expr::Unary(UnaryOp::Neg, inner) => Ok(-inner.eval(scope)?),
            Expr::Binary(op, lhs, rhs) => {
                let l = lhs.eval(scope)?;
                let r = rhs.eval(scope)?;
                Ok(apply_binary(*op, l, r))
            }
            Expr::Call(name, args) => {
                let builtin = Builtin::lookup(name)
                    .ok_or_else(|| EvalError::UnknownFunction(name.clone()))?;
                let arity = builtin.arity();
                if args.len() != arity {
                    return Err(EvalError::WrongArity {
                        function: name.clone(),
                        expected: arity,
                        found: args.len(),
                    });
                }
                let mut values = [0.0f64; 3];
                for (slot, arg) in values.iter_mut().zip(args) {
                    *slot = arg.eval(scope)?;
                }
                Ok(builtin.apply(&values[..arity]))
            }
        }
    }
}

impl Expr {
    /// Folds the expression to a constant, if it contains no variables
    /// and every call resolves to a builtin with the right arity.
    ///
    /// This is the evaluator restricted to closed expressions — the
    /// arithmetic is byte-for-byte the same dispatch `eval` uses — so a
    /// static analyzer can ask "what number would this term always
    /// produce?" without inventing a scope. Returns `None` as soon as a
    /// variable, unknown function, or wrong arity is encountered.
    ///
    /// ```
    /// use powerplay_expr::Expr;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// assert_eq!(Expr::parse("2 * (3 + 4)")?.constant_value(), Some(14.0));
    /// assert_eq!(Expr::parse("2 * bits")?.constant_value(), None);
    /// # Ok(())
    /// # }
    /// ```
    pub fn constant_value(&self) -> Option<f64> {
        match self {
            Expr::Number(n) => Some(*n),
            Expr::Variable(_) => None,
            Expr::Unary(UnaryOp::Neg, inner) => Some(-inner.constant_value()?),
            Expr::Binary(op, lhs, rhs) => Some(apply_binary(
                *op,
                lhs.constant_value()?,
                rhs.constant_value()?,
            )),
            Expr::Call(name, args) => {
                let builtin = Builtin::lookup(name)?;
                let arity = builtin.arity();
                if args.len() != arity {
                    return None;
                }
                let mut values = [0.0f64; 3];
                for (slot, arg) in values.iter_mut().zip(args) {
                    *slot = arg.constant_value()?;
                }
                Some(builtin.apply(&values[..arity]))
            }
        }
    }
}

/// Applies a binary operator with the exact arithmetic the evaluator
/// uses (comparisons produce 0/1 indicators). Public so the bytecode
/// interpreter dispatches through the same code path bit for bit.
#[inline]
pub fn apply_binary(op: BinaryOp, l: f64, r: f64) -> f64 {
    match op {
        BinaryOp::Add => l + r,
        BinaryOp::Sub => l - r,
        BinaryOp::Mul => l * r,
        BinaryOp::Div => l / r,
        BinaryOp::Rem => l % r,
        BinaryOp::Pow => l.powf(r),
        BinaryOp::Lt => indicator(l < r),
        BinaryOp::Le => indicator(l <= r),
        BinaryOp::Gt => indicator(l > r),
        BinaryOp::Ge => indicator(l >= r),
        BinaryOp::Eq => indicator(l == r),
        BinaryOp::Ne => indicator(l != r),
    }
}

fn indicator(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_in(src: &str, scope: &Scope<'_>) -> f64 {
        Expr::parse(src).unwrap().eval(scope).unwrap()
    }

    #[test]
    fn scope_chain_resolution() {
        let mut top = Scope::new();
        top.set("vdd", 1.5);
        top.set("f", 2e6);
        let mut mid = top.child();
        mid.set("bits", 6.0);
        let mut leaf = mid.child();
        leaf.set("vdd", 3.3); // shadows the global

        assert_eq!(eval_in("vdd", &top), 1.5);
        assert_eq!(eval_in("vdd", &mid), 1.5);
        assert_eq!(eval_in("vdd", &leaf), 3.3);
        assert_eq!(eval_in("bits * 2", &leaf), 12.0);
        assert_eq!(eval_in("f / 16", &leaf), 125e3);
    }

    #[test]
    fn unknown_variable_error() {
        let err = Expr::parse("x + 1")
            .unwrap()
            .eval(&Scope::new())
            .unwrap_err();
        assert_eq!(err, EvalError::UnknownVariable("x".into()));
    }

    #[test]
    fn unknown_function_error() {
        let err = Expr::parse("frobnicate(1)")
            .unwrap()
            .eval(&Scope::new())
            .unwrap_err();
        assert_eq!(err, EvalError::UnknownFunction("frobnicate".into()));
    }

    #[test]
    fn wrong_arity_error() {
        let err = Expr::parse("min(1, 2, 3)")
            .unwrap()
            .eval(&Scope::new())
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::WrongArity {
                function: "min".into(),
                expected: 2,
                found: 3
            }
        );
    }

    #[test]
    fn division_by_zero_is_ieee() {
        let v = Expr::parse("1 / 0").unwrap().eval(&Scope::new()).unwrap();
        assert!(v.is_infinite());
    }

    #[test]
    fn all_builtins_dispatch() {
        let scope = Scope::new();
        for (name, arity) in BUILTIN_FUNCTIONS {
            let args = ["2", "3", "4"][..arity].join(", ");
            let src = format!("{name}({args})");
            let v = Expr::parse(&src).unwrap().eval(&scope).unwrap();
            assert!(v.is_finite(), "{src} -> {v}");
        }
    }

    #[test]
    fn local_names_sorted() {
        let mut s = Scope::new();
        s.set("zeta", 1.0);
        s.set("alpha", 2.0);
        assert_eq!(s.local_names(), ["alpha", "zeta"]);
    }

    #[test]
    fn child_seeded_copies_template_and_chains_to_parent() {
        let mut defaults = Scope::new();
        defaults.set("bits", 8.0);
        defaults.set("words", 256.0);
        let mut globals = Scope::new();
        globals.set("vdd", 1.5);

        let mut seeded = globals.child_seeded(&defaults);
        assert_eq!(seeded.get("bits"), Some(8.0));
        assert_eq!(seeded.get("vdd"), Some(1.5));
        seeded.set("bits", 4.0); // shadows the seeded default locally
        assert_eq!(seeded.get("bits"), Some(4.0));
        assert_eq!(defaults.get("bits"), Some(8.0), "template untouched");
    }

    #[test]
    fn from_iterator() {
        let s: Scope<'_> = [("a".to_owned(), 1.0), ("b".to_owned(), 2.0)]
            .into_iter()
            .collect();
        assert_eq!(s.get("a"), Some(1.0));
        assert_eq!(s.get("c"), None);
    }
}
