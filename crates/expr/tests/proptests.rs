//! Property tests for the formula language.

use powerplay_expr::{BinaryOp, Expr, Scope, UnaryOp};
use proptest::prelude::*;

/// Strategy producing arbitrary well-formed expression trees over the
/// variables `x`, `y`, `z`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Non-negative literals only: `-1` prints the same as `Neg(1)`, so
        // a signed literal cannot round-trip to an identical tree.
        (0f64..1e6).prop_map(Expr::Number),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::variable),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        let binop = prop_oneof![
            Just(BinaryOp::Add),
            Just(BinaryOp::Sub),
            Just(BinaryOp::Mul),
            Just(BinaryOp::Div),
            Just(BinaryOp::Lt),
            Just(BinaryOp::Ge),
        ];
        prop_oneof![
            (binop, inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary(
                op,
                Box::new(l),
                Box::new(r)
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnaryOp::Neg, Box::new(e))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Call("min".into(), vec![a, b])),
        ]
    })
}

proptest! {
    /// Printing a tree and reparsing it yields the identical tree — the
    /// printer is fully parenthesized, so this checks parser precedence
    /// handling against the AST ground truth.
    #[test]
    fn print_parse_roundtrip(expr in arb_expr()) {
        let printed = expr.to_string();
        let reparsed = Expr::parse(&printed).expect("printed tree reparses");
        prop_assert_eq!(reparsed, expr);
    }

    /// Evaluation is deterministic and never panics on arbitrary trees.
    #[test]
    fn eval_is_deterministic(expr in arb_expr(), x in -1e3f64..1e3, y in -1e3f64..1e3) {
        let mut scope = Scope::new();
        scope.set("x", x);
        scope.set("y", y);
        scope.set("z", 0.0);
        let a = expr.eval(&scope);
        let b = expr.eval(&scope);
        match (a, b) {
            (Ok(va), Ok(vb)) => prop_assert!(va == vb || (va.is_nan() && vb.is_nan())),
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            other => prop_assert!(false, "nondeterministic: {other:?}"),
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,48}") {
        let _ = Expr::parse(&input);
    }

    /// Free variables of a tree are exactly the identifiers reachable in it.
    #[test]
    fn free_variables_sound(expr in arb_expr()) {
        let vars = expr.free_variables();
        // Evaluating with all reported variables bound must never yield
        // UnknownVariable.
        let mut scope = Scope::new();
        for v in &vars {
            scope.set(v.clone(), 1.0);
        }
        if let Err(powerplay_expr::EvalError::UnknownVariable(v)) = expr.eval(&scope) {
            prop_assert!(false, "variable {v} not reported by free_variables");
        }
    }

    /// Shadowing: a child binding always wins over the parent chain.
    #[test]
    fn child_scope_shadows(parent_val in -1e3f64..1e3, child_val in -1e3f64..1e3) {
        let mut parent = Scope::new();
        parent.set("v", parent_val);
        let mut child = parent.child();
        child.set("v", child_val);
        let e = Expr::parse("v").unwrap();
        prop_assert_eq!(e.eval(&child).unwrap(), child_val);
        prop_assert_eq!(e.eval(&parent).unwrap(), parent_val);
    }

    /// Linearity of the EQ 1 shape in f: doubling frequency doubles power.
    #[test]
    fn template_linear_in_frequency(c in 1e-15f64..1e-9, v in 0.5f64..5.0, f in 1e3f64..1e8) {
        let e = Expr::parse("c * v * v * f").unwrap();
        let mut s = Scope::new();
        s.set("c", c);
        s.set("v", v);
        s.set("f", f);
        let p1 = e.eval(&s).unwrap();
        s.set("f", 2.0 * f);
        let p2 = e.eval(&s).unwrap();
        prop_assert!(((p2 / p1) - 2.0).abs() < 1e-9);
    }
}
