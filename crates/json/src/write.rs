//! Compact and pretty JSON serialization.

use std::fmt::Write as _;

use crate::Json;

/// Serializes `value` with no insignificant whitespace.
pub(crate) fn to_compact(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

impl Json {
    /// Serializes with two-space indentation, for human-readable files.
    ///
    /// ```
    /// use powerplay_json::Json;
    /// let v = Json::object([("a", Json::from(1.0))]);
    /// assert_eq!(v.to_pretty(), "{\n  \"a\": 1\n}");
    /// ```
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

fn write_value(out: &mut String, value: &Json, indent: Option<usize>, level: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => write_number(out, *n),
        Json::String(s) => write_string(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, member)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, member, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/inf; null is the least-bad representation and
        // round-trips to a detectable missing value.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let v = Json::object([
            ("name", Json::from("LUT")),
            ("rows", Json::array([Json::from(1.0), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"name":"LUT","rows":[1,null]}"#);
    }

    #[test]
    fn pretty_output() {
        let v = Json::object([("a", Json::array([Json::from(1.0)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(Json::array([]).to_pretty(), "[]");
        assert_eq!(Json::object::<&str, _>([]).to_pretty(), "{}");
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(2048.0).to_string(), "2048");
        assert_eq!(Json::from(-3.0).to_string(), "-3");
    }

    #[test]
    fn floats_roundtrip_shortest() {
        assert_eq!(Json::from(2.097e-4).to_string(), "0.0002097");
        assert_eq!(Json::from(0.1).to_string(), "0.1");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{0001}").to_string(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn roundtrip_through_parser() {
        let v = Json::object([
            ("s", Json::from("µ ≈ \"u\"\n")),
            ("n", Json::from(1.5e-13)),
            ("arr", Json::array([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }
}
