//! The dynamically-typed JSON value.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A JSON document node.
///
/// Objects preserve member insertion order (a `Vec` of pairs rather than a
/// map), because PowerPlay sheets are ordered collections of rows.
///
/// ```
/// use powerplay_json::Json;
///
/// let row = Json::object([
///     ("name", Json::from("Read Bank")),
///     ("accesses", Json::from(2048.0)),
/// ]);
/// assert_eq!(row["accesses"].as_f64(), Some(2048.0));
/// assert!(row["missing"].is_null());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Json {
    /// `null`, also returned by out-of-range indexing.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2⁵³.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Json)>),
}

/// Shared sentinel so `Index` can hand back a reference on misses.
const NULL: Json = Json::Null;

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K, I>(members: I) -> Json
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Json)>,
    {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// True for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member slice, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up an object member by key. Returns `None` on non-objects.
    ///
    /// When a key occurs more than once the *last* occurrence wins, the
    /// common behaviour of JSON implementations.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up an array element by position.
    pub fn at(&self, index: usize) -> Option<&Json> {
        self.as_array().and_then(|items| items.get(index))
    }

    /// Inserts or replaces an object member.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Object(members) => {
                if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    members.push((key.to_owned(), value));
                }
            }
            _ => panic!("Json::set on non-object"),
        }
    }

    /// A sorted map view of an object, convenient for comparisons.
    pub fn to_map(&self) -> BTreeMap<String, Json> {
        match self {
            Json::Object(members) => members.iter().cloned().collect(),
            _ => BTreeMap::new(),
        }
    }
}

impl Index<&str> for Json {
    type Output = Json;

    /// Member access that yields `Null` (rather than panicking) on misses,
    /// so chained lookups like `v["a"]["b"]` degrade gracefully.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Json {
    type Output = Json;

    fn index(&self, index: usize) -> &Json {
        self.at(index).unwrap_or(&NULL)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Number(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Array(iter.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    /// Compact serialization; use [`Json::to_pretty`] for indented output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::write::to_compact(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_access() {
        let v = Json::object([("a", Json::from(1.0)), ("b", Json::from("x"))]);
        assert_eq!(v["a"].as_f64(), Some(1.0));
        assert_eq!(v["b"].as_str(), Some("x"));
        assert!(v["c"].is_null());
        assert_eq!(v.get("c"), None);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::Object(vec![
            ("k".into(), Json::from(1.0)),
            ("k".into(), Json::from(2.0)),
        ]);
        assert_eq!(v["k"].as_f64(), Some(2.0));
    }

    #[test]
    fn array_access() {
        let v: Json = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(v[1].as_f64(), Some(2.0));
        assert!(v[9].is_null());
        assert_eq!(v.as_array().map(<[Json]>::len), Some(3));
    }

    #[test]
    fn set_inserts_and_replaces() {
        let mut v = Json::object::<&str, _>([]);
        v.set("x", Json::from(1.0));
        v.set("y", Json::from(2.0));
        v.set("x", Json::from(3.0));
        assert_eq!(v["x"].as_f64(), Some(3.0));
        assert_eq!(v.as_object().map(<[(String, Json)]>::len), Some(2));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_array_panics() {
        let mut v = Json::array([]);
        v.set("x", Json::Null);
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::from(4.0).as_usize(), Some(4));
        assert_eq!(Json::from(4.5).as_usize(), None);
        assert_eq!(Json::from(-1.0).as_usize(), None);
        assert_eq!(Json::from("4").as_usize(), None);
    }

    #[test]
    fn chained_index_on_miss_is_null() {
        let v = Json::object([("a", Json::from(1.0))]);
        assert!(v["missing"]["deeper"][3].is_null());
    }

    #[test]
    fn default_is_null() {
        assert!(Json::default().is_null());
    }
}
