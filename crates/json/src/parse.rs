//! Recursive-descent JSON parser with positioned errors.

use std::error::Error;
use std::fmt;

use crate::Json;

/// Maximum nesting depth accepted by the parser.
///
/// PowerPlay documents (designs, library elements) are shallow; the limit
/// exists so hostile input received over the network cannot overflow the
/// stack.
const MAX_DEPTH: usize = 128;

/// Error produced when parsing malformed JSON, with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    offset: usize,
    message: String,
}

impl ParseJsonError {
    /// Byte offset into the input at which parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for ParseJsonError {}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ParseJsonError`] on malformed input, trailing garbage, or
    /// nesting deeper than an internal limit.
    ///
    /// ```
    /// use powerplay_json::Json;
    /// # fn main() -> Result<(), powerplay_json::ParseJsonError> {
    /// let v = Json::parse("[1, 2.5, \"x\", null, true]")?;
    /// assert_eq!(v[1].as_f64(), Some(2.5));
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(input: &str) -> Result<Json, ParseJsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseJsonError {
        ParseJsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{text}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a low surrogate.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.error("bad codepoint"))?
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.error("unpaired surrogate"));
                            } else {
                                char::from_u32(first).ok_or_else(|| self.error("bad codepoint"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peek saw a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let value: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        Ok(Json::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-2.5e-3").unwrap(), Json::Number(-2.5e-3));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::from("hi"));
    }

    #[test]
    fn nested_document() {
        let v = Json::parse(r#"{"rows": [{"n": "LUT", "p": 7.976e-5}], "total": null}"#).unwrap();
        assert_eq!(v["rows"][0]["n"].as_str(), Some("LUT"));
        assert_eq!(v["rows"][0]["p"].as_f64(), Some(7.976e-5));
        assert!(v["total"].is_null());
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
    }

    #[test]
    fn surrogate_pairs() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"µW ≈ 10⁻⁶ W\"").unwrap();
        assert_eq!(v.as_str(), Some("µW ≈ 10⁻⁶ W"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{,}",
            "01",
            "1.",
            "1e",
            "+1",
            "\"\\x\"",
            "tru",
            "[1] garbage",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset(), 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" \r\n\t{ \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.0));
    }

    #[test]
    fn control_chars_rejected_in_strings() {
        assert!(Json::parse("\"a\u{0001}b\"").is_err());
    }
}
