//! A minimal, dependency-free JSON implementation.
//!
//! PowerPlay needs one structured interchange format in three places:
//! persisting a user's designs to disk (the Perl original kept per-user
//! default files on the server), serving library elements to remote sites
//! (paper Figures 6–7), and the web form API. None of the pre-approved
//! offline crates provide a serde *data format*, so this crate implements
//! the small slice of JSON the project needs: a dynamically-typed
//! [`Json`] value, a recursive-descent [parser](Json::parse) with
//! positioned errors, and compact/pretty writers (`Display` and [`Json::to_pretty`]).
//!
//! Object member order is preserved (spreadsheet rows are ordered), and
//! numbers are `f64` throughout, which is exact for every count the models
//! use (≤ 2⁵³).
//!
//! ```
//! use powerplay_json::Json;
//!
//! # fn main() -> Result<(), powerplay_json::ParseJsonError> {
//! let v = Json::parse(r#"{"name": "multiplier", "coeff_ff": 253}"#)?;
//! assert_eq!(v["name"].as_str(), Some("multiplier"));
//! assert_eq!(v["coeff_ff"].as_f64(), Some(253.0));
//! # Ok(())
//! # }
//! ```

mod parse;
mod value;
mod write;

pub use parse::ParseJsonError;
pub use value::Json;
