//! Property tests: arbitrary documents survive a serialize/parse roundtrip.

use powerplay_json::Json;
use proptest::prelude::*;

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite numbers only: NaN/inf intentionally serialize to null.
        (-1e15f64..1e15).prop_map(Json::Number),
        "[a-zA-Z0-9 µ_\\\\\"\n\t-]{0,12}".prop_map(Json::from),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..6).prop_map(Json::Object),
        ]
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(doc in arb_json()) {
        let text = doc.to_string();
        let reparsed = Json::parse(&text).expect("own output reparses");
        prop_assert_eq!(reparsed, doc);
    }

    #[test]
    fn pretty_roundtrip(doc in arb_json()) {
        let text = doc.to_pretty();
        let reparsed = Json::parse(&text).expect("pretty output reparses");
        prop_assert_eq!(reparsed, doc);
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,64}") {
        let _ = Json::parse(&input);
    }

    #[test]
    fn numbers_roundtrip_exactly(n in -1e15f64..1e15) {
        let text = Json::Number(n).to_string();
        let reparsed = Json::parse(&text).unwrap();
        prop_assert_eq!(reparsed.as_f64(), Some(n));
    }
}
