//! Server-side plan/result cache for the JSON API.
//!
//! The 1996 CGI scripts recompiled a design from scratch on every
//! request; the modern engine compiles once and replays, so the web
//! layer keeps a small LRU of compiled plans keyed by the *content* of
//! the design (a 64-bit FNV-1a hash of its canonical JSON) plus the
//! library registry's generation counter. Repeated `/api/design`,
//! `/api/sweep` and `/api/sensitivities` requests for an unchanged
//! design skip compilation entirely, and the key doubles as the `ETag`
//! for conditional GETs (`If-None-Match` → `304 Not Modified`).
//!
//! Hit/miss/eviction counters and a size gauge are exported under
//! `powerplay_web_plan_cache_*` on `/metrics`.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use powerplay_sheet::CompiledSheet;
use powerplay_telemetry::{Counter, Gauge};

/// 64-bit FNV-1a over a byte stream — tiny, dependency-free, and good
/// enough for cache keying (an accidental collision serves a stale
/// report for a *different* design; at 2^-64 per pair that is accepted
/// the same way HTTP caches accept strong-ETag collisions).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a hash from a previous state, for keying over
/// several fields without concatenating them.
#[must_use]
pub fn fnv1a_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    size: Gauge,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = powerplay_telemetry::global();
        CacheMetrics {
            hits: g.counter(
                "powerplay_web_plan_cache_hits_total",
                "API requests that reused a cached compiled plan",
            ),
            misses: g.counter(
                "powerplay_web_plan_cache_misses_total",
                "API requests that had to compile a design",
            ),
            evictions: g.counter(
                "powerplay_web_plan_cache_evictions_total",
                "Cache entries dropped to stay within capacity",
            ),
            size: g.gauge(
                "powerplay_web_plan_cache_size",
                "Compiled plans currently cached",
            ),
        }
    })
}

struct Entry {
    /// The compiled plan; `None` for body-only entries (resources like
    /// the imported-library detail view cache a serialized body keyed
    /// by `(rev, generation)` without ever compiling a sheet).
    plan: Option<Arc<CompiledSheet>>,
    /// The serialized `/api/design` success body, kept beside the plan
    /// so an unchanged design answers without replaying at all.
    body: Option<Arc<String>>,
    /// The serialized body of a pure-in-`(rev, generation)` derived
    /// resource (`/analyze`, library detail) — one per cached entry
    /// suffices because the inputs are immutable at a given key.
    analysis: Option<Arc<String>>,
    /// Last-touch tick for LRU eviction.
    tick: u64,
}

struct Inner {
    entries: BTreeMap<u64, Entry>,
    tick: u64,
}

/// A bounded LRU of compiled evaluation plans (and, for `/api/design`,
/// their last successful response body), keyed by design content hash.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> PlanCache {
        assert!(capacity > 0, "cache capacity must be positive");
        PlanCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                tick: 0,
            }),
        }
    }

    /// The cache key for a design's canonical JSON under a registry
    /// generation. Any edit to the design or the library changes it.
    #[must_use]
    pub fn key(design_json: &str, generation: u64) -> u64 {
        fnv1a_continue(fnv1a(design_json.as_bytes()), &generation.to_le_bytes())
    }

    /// The cache key for a *stored* design at a known store revision.
    /// Identity comes from `(user, name, rev)` plus the registry
    /// generation — no JSON serialization or content hashing per
    /// request (the design store guarantees a revision's content never
    /// changes).
    #[must_use]
    pub fn rev_key(user: &str, name: &str, rev: u64, generation: u64) -> u64 {
        let mut hash = fnv1a(user.as_bytes());
        hash = fnv1a_continue(hash, &[0]);
        hash = fnv1a_continue(hash, name.as_bytes());
        hash = fnv1a_continue(hash, &rev.to_le_bytes());
        fnv1a_continue(hash, &generation.to_le_bytes())
    }

    /// The strong `ETag` a key renders as.
    #[must_use]
    pub fn etag(key: u64) -> String {
        format!("\"{key:016x}\"")
    }

    /// Returns the cached plan for `key`, or compiles one with `compile`
    /// and caches it. The second element reports whether it was a hit.
    /// Compilation runs outside the cache lock, so a slow compile never
    /// blocks hits for other designs; racing misses both compile and the
    /// later insert wins (plans for one key are interchangeable).
    pub fn plan_for(
        &self,
        key: u64,
        compile: impl FnOnce() -> CompiledSheet,
    ) -> (Arc<CompiledSheet>, bool) {
        let metrics = cache_metrics();
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.tick = tick;
                if let Some(plan) = &entry.plan {
                    metrics.hits.inc();
                    return (Arc::clone(plan), true);
                }
            }
        }
        metrics.misses.inc();
        let plan = Arc::new(compile());
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.entry(key).or_insert(Entry {
            plan: None,
            body: None,
            analysis: None,
            tick,
        });
        entry.tick = tick;
        // A body-only entry may exist already; fill in the plan. Racing
        // misses both compile and the later insert wins (plans for one
        // key are interchangeable).
        entry.plan = Some(Arc::clone(&plan));
        Self::evict(&mut inner, self.capacity);
        metrics.size.set(inner.entries.len() as i64);
        (plan, false)
    }

    /// The cached `/api/design` body for `key`, if a successful response
    /// was stored since the entry was created. Counts as a cache hit
    /// when present (a miss here falls through to [`Self::plan_for`],
    /// which does the hit/miss accounting for the plan lookup).
    #[must_use]
    pub fn cached_body(&self, key: u64) -> Option<Arc<String>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(&key)?;
        entry.tick = tick;
        let body = entry.body.clone();
        if body.is_some() {
            cache_metrics().hits.inc();
        }
        body
    }

    /// Stores a successful `/api/design` body beside the plan for `key`.
    /// A no-op if the entry was evicted in the meantime.
    pub fn store_body(&self, key: u64, body: Arc<String>) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.entries.get_mut(&key) {
            entry.body = Some(body);
        }
    }

    /// The cached analyze-endpoint body for `key`, if an analysis was
    /// stored since the entry was created. Hit/miss accounting matches
    /// [`Self::cached_body`].
    #[must_use]
    pub fn cached_analysis(&self, key: u64) -> Option<Arc<String>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(&key)?;
        entry.tick = tick;
        let analysis = entry.analysis.clone();
        if analysis.is_some() {
            cache_metrics().hits.inc();
        }
        analysis
    }

    /// Stores a derived-resource body for `key`, creating a body-only
    /// entry (no compiled plan) if the key is not cached yet — resources
    /// like the library detail view never compile a sheet but still
    /// want per-`(rev, generation)` body caching.
    pub fn store_analysis(&self, key: u64, body: Arc<String>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.entry(key).or_insert(Entry {
            plan: None,
            body: None,
            analysis: None,
            tick,
        });
        entry.tick = tick;
        entry.analysis = Some(body);
        Self::evict(&mut inner, self.capacity);
        cache_metrics().size.set(inner.entries.len() as i64);
    }

    fn evict(inner: &mut Inner, capacity: usize) {
        while inner.entries.len() > capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k)
                .expect("nonempty over capacity");
            inner.entries.remove(&oldest);
            cache_metrics().evictions.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerplay_library::builtin::ucb_library;
    use powerplay_sheet::Sheet;

    fn plan() -> CompiledSheet {
        let mut s = Sheet::new("s");
        s.set_global("vdd", "1.5").unwrap();
        s.set_global("f", "2e6").unwrap();
        CompiledSheet::compile(&s, &ucb_library())
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_depends_on_content_and_generation() {
        assert_eq!(PlanCache::key("{}", 1), PlanCache::key("{}", 1));
        assert_ne!(PlanCache::key("{}", 1), PlanCache::key("{}", 2));
        assert_ne!(PlanCache::key("{}", 1), PlanCache::key("[]", 1));
    }

    #[test]
    fn rev_key_depends_on_every_field() {
        let base = PlanCache::rev_key("a", "d", 1, 1);
        assert_eq!(PlanCache::rev_key("a", "d", 1, 1), base);
        assert_ne!(PlanCache::rev_key("b", "d", 1, 1), base);
        assert_ne!(PlanCache::rev_key("a", "e", 1, 1), base);
        assert_ne!(PlanCache::rev_key("a", "d", 2, 1), base);
        assert_ne!(PlanCache::rev_key("a", "d", 1, 2), base);
        // The separator keeps (user, name) unambiguous.
        assert_ne!(
            PlanCache::rev_key("ab", "c", 1, 1),
            PlanCache::rev_key("a", "bc", 1, 1)
        );
    }

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let cache = PlanCache::new(4);
        let (first, hit) = cache.plan_for(7, plan);
        assert!(!hit);
        let (second, hit) = cache.plan_for(7, || panic!("must not recompile"));
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(2);
        cache.plan_for(1, plan);
        cache.plan_for(2, plan);
        cache.plan_for(1, || panic!("1 is cached")); // touch 1 → 2 is coldest
        cache.plan_for(3, plan); // evicts 2
        cache.plan_for(1, || panic!("1 must survive"));
        let (_, hit) = cache.plan_for(2, plan);
        assert!(!hit, "2 was evicted");
    }

    #[test]
    fn body_rides_along_and_dies_with_the_entry() {
        let cache = PlanCache::new(1);
        cache.plan_for(1, plan);
        assert!(cache.cached_body(1).is_none());
        cache.store_body(1, Arc::new("{\"x\":1}".to_owned()));
        assert_eq!(
            cache.cached_body(1).as_deref().map(String::as_str),
            Some("{\"x\":1}")
        );
        cache.plan_for(2, plan); // capacity 1 → evicts 1
        assert!(cache.cached_body(1).is_none());
    }

    #[test]
    fn analysis_body_rides_along_independently() {
        let cache = PlanCache::new(1);
        cache.plan_for(1, plan);
        cache.store_body(1, Arc::new("{\"report\":1}".to_owned()));
        assert!(cache.cached_analysis(1).is_none(), "bodies are separate");
        cache.store_analysis(1, Arc::new("{\"bounds\":1}".to_owned()));
        assert_eq!(
            cache.cached_analysis(1).as_deref().map(String::as_str),
            Some("{\"bounds\":1}")
        );
        assert_eq!(
            cache.cached_body(1).as_deref().map(String::as_str),
            Some("{\"report\":1}")
        );
        cache.plan_for(2, plan); // evicts 1 and both bodies
        assert!(cache.cached_analysis(1).is_none());
    }

    #[test]
    fn body_only_entry_caches_without_a_plan() {
        let cache = PlanCache::new(2);
        cache.store_analysis(9, Arc::new("{\"detail\":1}".to_owned()));
        assert_eq!(
            cache.cached_analysis(9).as_deref().map(String::as_str),
            Some("{\"detail\":1}")
        );
        // A later plan_for on the same key compiles once, keeps the body,
        // and subsequent lookups hit.
        let (_, hit) = cache.plan_for(9, plan);
        assert!(!hit, "no plan existed yet");
        let (_, hit) = cache.plan_for(9, || panic!("plan now cached"));
        assert!(hit);
        assert!(cache.cached_analysis(9).is_some());
        // Body-only entries are subject to LRU eviction like any other.
        cache.store_analysis(10, Arc::new("a".to_owned()));
        cache.store_analysis(11, Arc::new("b".to_owned()));
        assert!(cache.cached_analysis(9).is_none(), "9 was the coldest");
    }

    #[test]
    fn etag_is_a_quoted_hex_key() {
        assert_eq!(PlanCache::etag(0xab), "\"00000000000000ab\"");
    }
}
