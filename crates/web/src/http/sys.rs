//! A tiny vendored syscall shim for the readiness reactor: `epoll` and
//! the wake pipe, declared directly against the C ABI the std runtime
//! already links — no `libc`, `mio`, or `tokio` crates, matching the
//! repository's from-scratch discipline.
//!
//! Scope is deliberately minimal: `epoll_create1`/`epoll_ctl`/
//! `epoll_wait` plus `pipe2`. Sockets are put into non-blocking mode
//! through `std`'s own `set_nonblocking`, and file descriptors are
//! owned by [`std::os::fd::OwnedFd`] so nothing here can leak.

use std::fs::File;
use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// One readiness notification from the kernel.
///
/// On x86-64 the kernel declares `struct epoll_event` packed; other
/// architectures use natural alignment. The `cfg_attr` mirrors that.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub(crate) struct EpollEvent {
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub(crate) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, ptr) }).map(|_| ())
    }

    /// Registers `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest(readable, writable),
            data: token,
        };
        self.ctl(EPOLL_CTL_ADD, fd, Some(&mut event))
    }

    /// Replaces the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest(readable, writable),
            data: token,
        };
        self.ctl(EPOLL_CTL_MOD, fd, Some(&mut event))
    }

    /// Deregisters `fd`. Errors are ignorable (closing the fd
    /// deregisters it anyway); callers decide.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness, up to `timeout` (`None` = indefinitely).
    /// Retries on `EINTR`.
    ///
    /// The timeout rounds *up* to the next millisecond: truncation would
    /// turn a sub-millisecond timeout into a zero-timeout poll, and a
    /// caller sleeping toward a deadline would busy-spin through the
    /// deadline's final millisecond.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        use std::os::fd::AsRawFd;
        let ms = match timeout {
            None => -1,
            Some(t) => i32::try_from(t.as_nanos().div_ceil(1_000_000)).unwrap_or(i32::MAX),
        };
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    ms,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

fn interest(readable: bool, writable: bool) -> u32 {
    let mut events = 0;
    if readable {
        events |= EPOLLIN | EPOLLRDHUP;
    }
    if writable {
        events |= EPOLLOUT;
    }
    events
}

/// A non-blocking self-pipe `(read_end, write_end)`: worker threads
/// write one byte to hand a finished response back to the reactor, whose
/// `epoll_wait` then returns. A full pipe is fine — the wakeup is
/// already pending.
pub(crate) fn wake_pipe() -> io::Result<(File, File)> {
    let mut fds = [0i32; 2];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    let read = unsafe { File::from_raw_fd(fds[0]) };
    let write = unsafe { File::from_raw_fd(fds[1]) };
    Ok((read, write))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn wake_pipe_round_trips_and_would_block_when_drained() {
        let (mut read, mut write) = wake_pipe().unwrap();
        write.write_all(&[1]).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(read.read(&mut buf).unwrap(), 1);
        let err = read.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn epoll_reports_pipe_readability() {
        use std::os::fd::AsRawFd;
        let (read, mut write) = wake_pipe().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(read.as_raw_fd(), 7, true, false).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(epoll.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);

        write.write_all(&[1]).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(n, 1);
        let (events0, data0) = (events[0].events, events[0].data);
        assert_eq!(data0, 7);
        assert!(events0 & EPOLLIN != 0);

        epoll.delete(read.as_raw_fd()).unwrap();
    }
}
