//! Minimal base64 (standard alphabet) for HTTP Basic credentials.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64 with padding.
///
/// ```
/// assert_eq!(powerplay_web::http::base64::encode(b"alice:secret"), "YWxpY2U6c2VjcmV0");
/// ```
pub fn encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(3) * 4);
    for chunk in input.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        let chars = [
            ALPHABET[(n >> 18) as usize & 63],
            ALPHABET[(n >> 12) as usize & 63],
            ALPHABET[(n >> 6) as usize & 63],
            ALPHABET[n as usize & 63],
        ];
        out.push(chars[0] as char);
        out.push(chars[1] as char);
        out.push(if chunk.len() > 1 {
            chars[2] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            chars[3] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard base64 (padding required for short final groups).
/// Returns `None` on any invalid character or length.
pub fn decode(input: &str) -> Option<Vec<u8>> {
    fn value(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = input.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"alice:secret"), "YWxpY2U6c2VjcmV0");
    }

    #[test]
    fn decode_roundtrip() {
        for input in [
            &b""[..],
            b"f",
            b"fo",
            b"foo",
            b"alice:s3cr3t!",
            b"\x00\xff\x7f",
        ] {
            assert_eq!(decode(&encode(input)).as_deref(), Some(input));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("a").is_none()); // bad length
        assert!(decode("====").is_none()); // too much padding
        assert!(decode("Zg=a").is_none()); // padding inside
        assert!(decode("Zm!v").is_none()); // bad character
    }
}
