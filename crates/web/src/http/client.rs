//! A small HTTP/1.1 client for cross-site model access (paper Figure 7:
//! "the key is using … scripts at Universal Resource Locators to handle
//! information transfer on demand").
//!
//! Requests are sent keep-alive and completed connections park in a
//! small per-host pool (two slots), so repeated calls against the same
//! site — the remote-fetch cache warming a sweep, a CLI polling a
//! design — skip the TCP handshake. A pooled connection can go stale
//! (the server closed it, or its port was reused); the first request
//! over a reused connection therefore retries once on a fresh socket
//! before reporting an error.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use powerplay_telemetry::Counter;

use super::request::{Method, Request};
use super::response::{Response, Status};

/// Keep-alive connections parked per `host:port`.
const POOL_SLOTS_PER_HOST: usize = 2;

/// A parked connection: the `BufReader` must survive with the socket,
/// because bytes of the next response may already sit in its buffer.
type PooledConn = BufReader<TcpStream>;

fn pool() -> &'static Mutex<HashMap<String, Vec<PooledConn>>> {
    static POOL: OnceLock<Mutex<HashMap<String, Vec<PooledConn>>>> = OnceLock::new();
    POOL.get_or_init(Mutex::default)
}

fn reused_total() -> &'static Counter {
    static REUSED: OnceLock<Counter> = OnceLock::new();
    REUSED.get_or_init(|| {
        powerplay_telemetry::global().counter(
            "powerplay_http_client_reused_total",
            "Client requests served over a reused pooled keep-alive connection",
        )
    })
}

fn pool_checkout(host_port: &str) -> Option<PooledConn> {
    pool()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get_mut(host_port)?
        .pop()
}

/// Parks a connection for reuse if the exchange left it clean: the
/// response was `Content-Length`-delimited (so the stream position is
/// exactly at the next response boundary) and the server did not ask to
/// close.
fn pool_checkin(host_port: &str, conn: PooledConn, response: &Response) {
    let delimited = response.header("content-length").is_some();
    let close = response
        .header("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
    if !delimited || close {
        return;
    }
    let mut pool = pool().lock().unwrap_or_else(|e| e.into_inner());
    let slots = pool.entry(host_port.to_owned()).or_default();
    if slots.len() < POOL_SLOTS_PER_HOST {
        slots.push(conn);
    }
}

/// Error produced by the HTTP client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The URL was not of the supported `http://host[:port]/path` form.
    BadUrl(String),
    /// Connecting or transferring failed.
    Io(String),
    /// The server's response was malformed.
    BadResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::BadUrl(url) => write!(f, "unsupported url `{url}`"),
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::BadResponse(what) => write!(f, "malformed response: {what}"),
        }
    }
}

impl Error for ClientError {}

/// Issues a `GET` and returns the response.
///
/// # Errors
///
/// Returns [`ClientError`] on bad URLs, connection failure, or malformed
/// responses.
///
/// ```no_run
/// let response = powerplay_web::http::http_get("http://127.0.0.1:8096/api/library")?;
/// assert!(response.body_text().starts_with('['));
/// # Ok::<(), powerplay_web::http::ClientError>(())
/// ```
pub fn http_get(url: &str) -> Result<Response, ClientError> {
    send(url, Method::Get, None, None, None)
}

/// Issues a `GET` with HTTP Basic credentials (for password-protected
/// PowerPlay instances — "PowerPlay can provide password-restricted
/// access").
///
/// # Errors
///
/// Same as [`http_get`].
pub fn http_get_basic_auth(url: &str, user: &str, password: &str) -> Result<Response, ClientError> {
    send(url, Method::Get, None, Some((user, password)), None)
}

/// Issues a `POST` with the given body and content type.
///
/// # Errors
///
/// Same as [`http_get`].
pub fn http_post(url: &str, body: &[u8], content_type: &str) -> Result<Response, ClientError> {
    send(url, Method::Post, Some((body, content_type)), None, None)
}

/// Issues a `PUT` with the given body, content type, and optional
/// `If-Match` revision guard (v1 design resources).
///
/// # Errors
///
/// Same as [`http_get`].
pub fn http_put(
    url: &str,
    body: &[u8],
    content_type: &str,
    if_match: Option<&str>,
) -> Result<Response, ClientError> {
    send(url, Method::Put, Some((body, content_type)), None, if_match)
}

/// Issues a `DELETE`.
///
/// # Errors
///
/// Same as [`http_get`].
pub fn http_delete(url: &str) -> Result<Response, ClientError> {
    send(url, Method::Delete, None, None, None)
}

fn send(
    url: &str,
    method: Method,
    body: Option<(&[u8], &str)>,
    basic_auth: Option<(&str, &str)>,
    if_match: Option<&str>,
) -> Result<Response, ClientError> {
    let (host_port, path_and_query) = split_url(url)?;
    let mut request = Request::new(method, path_and_query);
    if let Some((bytes, content_type)) = body {
        request.set_body(bytes.to_vec(), content_type);
    }
    if let Some((user, password)) = basic_auth {
        let token = crate::http::base64::encode(format!("{user}:{password}").as_bytes());
        request.set_header("authorization", &format!("Basic {token}"));
    }
    if let Some(rev) = if_match {
        request.set_header("if-match", rev);
    }

    let bytes = request.to_bytes(&host_port, true);
    // A parked connection first; any failure on it means stale, not
    // fatal — retry once on a fresh socket.
    if let Some(conn) = pool_checkout(&host_port) {
        if let Ok(response) = exchange(conn, &host_port, &bytes) {
            reused_total().inc();
            return Ok(response);
        }
    }
    let stream = TcpStream::connect(&host_port).map_err(|e| ClientError::Io(e.to_string()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| ClientError::Io(e.to_string()))?;
    exchange(BufReader::new(stream), &host_port, &bytes)
}

/// Writes one serialized request, reads one response, and parks the
/// connection back in the pool when it stayed clean.
fn exchange(mut conn: PooledConn, host_port: &str, bytes: &[u8]) -> Result<Response, ClientError> {
    conn.get_mut()
        .write_all(bytes)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let response = read_response(&mut conn)?;
    pool_checkin(host_port, conn, &response);
    Ok(response)
}

/// Splits `http://host[:port]/path?query` into `(host:port, /path?query)`.
fn split_url(url: &str) -> Result<(String, &str), ClientError> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| ClientError::BadUrl(url.to_owned()))?;
    let (authority, path) = match rest.find('/') {
        Some(idx) => (&rest[..idx], &rest[idx..]),
        None => (rest, "/"),
    };
    if authority.is_empty() {
        return Err(ClientError::BadUrl(url.to_owned()));
    }
    let host_port = if authority.contains(':') {
        authority.to_owned()
    } else {
        format!("{authority}:80")
    };
    Ok((host_port, path))
}

/// Reads one HTTP/1.1 response off `reader` — status line, headers,
/// then a `Content-Length` body (or read-to-EOF without one). Public so
/// raw-socket tests and the load bench can parse responses without
/// hand-rolled readers.
///
/// # Errors
///
/// Returns [`ClientError`] on I/O failure or a malformed response.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, ClientError> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::BadResponse(format!(
            "bad status line `{}`",
            status_line.trim()
        )));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| ClientError::BadResponse("missing status code".into()))?;
    let status = match code {
        200 => Status::Ok,
        201 => Status::Created,
        302 => Status::Found,
        304 => Status::NotModified,
        400 => Status::BadRequest,
        401 => Status::Unauthorized,
        404 => Status::NotFound,
        405 => Status::MethodNotAllowed,
        408 => Status::RequestTimeout,
        409 => Status::Conflict,
        410 => Status::Gone,
        413 => Status::PayloadTooLarge,
        428 => Status::PreconditionRequired,
        431 => Status::RequestHeaderFieldsTooLarge,
        503 => Status::ServiceUnavailable,
        _ => Status::InternalServerError,
    };

    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        if n == 0 {
            return Err(ClientError::BadResponse("truncated headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
        }
    }

    let body = match headers.get("content-length") {
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| ClientError::BadResponse("bad content-length".into()))?;
            let mut body = vec![0u8; len];
            reader
                .read_exact(&mut body)
                .map_err(|e| ClientError::Io(e.to_string()))?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader
                .read_to_end(&mut body)
                .map_err(|e| ClientError::Io(e.to_string()))?;
            body
        }
    };
    Ok(Response::from_parts(status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_splitting() {
        assert_eq!(
            split_url("http://example.org/a/b?c=1").unwrap(),
            ("example.org:80".to_owned(), "/a/b?c=1")
        );
        assert_eq!(
            split_url("http://127.0.0.1:8096").unwrap(),
            ("127.0.0.1:8096".to_owned(), "/")
        );
        assert!(split_url("https://secure.example.org/").is_err());
        assert!(split_url("ftp://example.org/").is_err());
        assert!(split_url("http:///nohost").is_err());
    }

    #[test]
    fn parses_response_without_content_length() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello";
        let r = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(r.status(), Status::Ok);
        assert_eq!(r.body_text(), "hello");
    }

    #[test]
    fn parses_response_with_content_length() {
        let raw = "HTTP/1.1 404 Not Found\r\ncontent-length: 4\r\n\r\nnope extra";
        let r = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(r.status(), Status::NotFound);
        assert_eq!(r.body_text(), "nope");
    }

    #[test]
    fn rejects_garbage_responses() {
        assert!(read_response(&mut BufReader::new(&b"SMTP hello\r\n"[..])).is_err());
        assert!(read_response(&mut BufReader::new(&b"HTTP/1.1\r\n\r\n"[..])).is_err());
    }

    #[test]
    fn connection_refused_is_io_error() {
        // Port 1 on localhost is almost certainly closed.
        let err = http_get("http://127.0.0.1:1/").unwrap_err();
        assert!(matches!(err, ClientError::Io(_)));
    }
}
