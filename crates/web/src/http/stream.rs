//! Long-lived streaming connections (Server-Sent Events).
//!
//! The reactor's request/response machinery assumes one response per
//! request; a stream response ([`Response::event_stream`]) instead
//! converts its connection into a registered long-lived writer. The
//! handler returns the response head plus any initial events; once the
//! reactor has written those it switches the connection into streaming
//! mode and hands the handler's `on_open` callback a [`StreamHandle`] —
//! the publish side's address for that subscriber.
//!
//! Data flows to the reactor the same way finished responses do: a
//! mutexed op list plus one deduplicated byte on the wake pipe
//! ([`StreamOps`], the streaming sibling of `Completions`). The reactor
//! appends the bytes to the connection's write buffer (bounded by the
//! backpressure cap — a consumer that stops reading is dropped, not
//! buffered forever) and flushes incrementally. When the connection
//! dies — client close, backpressure drop, server shutdown — the
//! reactor flips the shared `closed` flag, which publishers observe on
//! their next send.
//!
//! [`Response::event_stream`]: super::Response::event_stream

use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Callback invoked (on the reactor thread) once a stream response's
/// head and initial events are queued and the connection is registered
/// as a long-lived writer.
pub type OnStreamOpen = Box<dyn FnOnce(StreamHandle) + Send + 'static>;

/// An instruction for a streaming connection, queued by publishers.
pub(crate) enum StreamOp {
    /// Append bytes (already SSE-framed) to the stream's write buffer.
    Data(Vec<u8>),
    /// Flush whatever is buffered, then FIN and tear the stream down.
    Close,
}

/// The publisher → reactor handoff: stream ops plus a wake byte so
/// `epoll_wait` returns. Mirrors `Completions` — the wake byte is
/// deduplicated with an atomic flag so a burst of events between two
/// reactor wakeups costs one pipe write.
pub(crate) struct StreamOps {
    ops: Mutex<Vec<(u64, StreamOp)>>,
    signaled: AtomicBool,
    wake: File,
}

impl StreamOps {
    pub fn new(wake: File) -> StreamOps {
        StreamOps {
            ops: Mutex::new(Vec::new()),
            signaled: AtomicBool::new(false),
            wake,
        }
    }

    pub fn push(&self, token: u64, op: StreamOp) {
        self.ops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((token, op));
        if !self.signaled.swap(true, Ordering::SeqCst) {
            let _ = (&self.wake).write(&[1u8]);
        }
    }

    pub fn drain(&self) -> Vec<(u64, StreamOp)> {
        // Clear the signal before taking the list (see `Completions`):
        // at worst the reactor gets one spurious empty wakeup.
        self.signaled.store(false, Ordering::SeqCst);
        std::mem::take(&mut *self.ops.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// A live subscriber connection, as seen by publishers. Cloneable and
/// `Send`: the events hub holds one per subscriber and pushes framed
/// events through it from whatever thread the mutation ran on.
#[derive(Clone)]
pub struct StreamHandle {
    pub(crate) token: u64,
    pub(crate) ops: Arc<StreamOps>,
    pub(crate) closed: Arc<AtomicBool>,
}

impl StreamHandle {
    /// Queues bytes (an SSE-framed event) for the subscriber. Returns
    /// false when the connection is already gone — the caller should
    /// forget the handle. The generation-tagged token means a late send
    /// to a dead-and-reused slot misses harmlessly.
    pub fn send(&self, bytes: impl Into<Vec<u8>>) -> bool {
        if self.is_closed() {
            return false;
        }
        self.ops.push(self.token, StreamOp::Data(bytes.into()));
        true
    }

    /// Asks the reactor to flush and tear the stream down.
    pub fn close(&self) {
        self.ops.push(self.token, StreamOp::Close);
    }

    /// True once the reactor has torn the connection down (client hung
    /// up, backpressure drop, or shutdown).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for StreamHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHandle")
            .field("token", &self.token)
            .field("closed", &self.is_closed())
            .finish()
    }
}
