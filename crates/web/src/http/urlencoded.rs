//! Percent-encoding and `application/x-www-form-urlencoded` codecs.

/// Percent-encodes a string for use in a query component: everything but
/// unreserved characters is escaped; spaces become `+`.
///
/// ```
/// use powerplay_web::http::urlencoded::encode;
/// assert_eq!(encode("ucb/multiplier"), "ucb%2Fmultiplier");
/// assert_eq!(encode("a b"), "a+b");
/// ```
pub fn encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for byte in input.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            b' ' => out.push('+'),
            other => {
                out.push('%');
                out.push_str(&format!("{other:02X}"));
            }
        }
    }
    out
}

/// Decodes percent-encoding (and `+` as space). Invalid escapes are
/// passed through literally, matching lenient 1990s server behaviour.
pub fn decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 <= bytes.len() => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                }) {
                    Some(value) => {
                        out.push(value);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a query string or form body into `(key, value)` pairs, decoded,
/// preserving order and duplicates.
///
/// ```
/// use powerplay_web::http::urlencoded::parse_pairs;
/// let pairs = parse_pairs("a=1&name=Read+Bank&a=2");
/// assert_eq!(pairs[1], ("name".to_owned(), "Read Bank".to_owned()));
/// assert_eq!(pairs.len(), 3);
/// ```
pub fn parse_pairs(input: &str) -> Vec<(String, String)> {
    input
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (decode(k), decode(v)),
            None => (decode(part), String::new()),
        })
        .collect()
}

/// Encodes pairs into a query string / form body.
pub fn encode_pairs<'a, I>(pairs: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    pairs
        .into_iter()
        .map(|(k, v)| format!("{}={}", encode(k), encode(v)))
        .collect::<Vec<_>>()
        .join("&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_specials() {
        for s in ["a b", "ucb/multiplier", "f / 16", "100%", "µW", "x=y&z"] {
            assert_eq!(decode(&encode(s)), s, "roundtrip of {s:?}");
        }
    }

    #[test]
    fn decode_handles_malformed_escapes() {
        assert_eq!(decode("%"), "%");
        assert_eq!(decode("%2"), "%2");
        assert_eq!(decode("%zz"), "%zz");
        assert_eq!(decode("100%25"), "100%");
    }

    #[test]
    fn parse_pairs_edge_cases() {
        assert!(parse_pairs("").is_empty());
        assert_eq!(parse_pairs("a"), vec![("a".into(), "".into())]);
        assert_eq!(parse_pairs("a="), vec![("a".into(), "".into())]);
        assert_eq!(parse_pairs("a=b=c"), vec![("a".into(), "b=c".into())]);
    }

    #[test]
    fn encode_pairs_composes_with_parse() {
        let encoded = encode_pairs([("formula", "f / 16"), ("name", "Read Bank")]);
        let parsed = parse_pairs(&encoded);
        assert_eq!(parsed[0], ("formula".to_owned(), "f / 16".to_owned()));
        assert_eq!(parsed[1], ("name".to_owned(), "Read Bank".to_owned()));
    }
}
