//! The HTTP server: an epoll readiness reactor plus a CPU worker pool.
//!
//! One reactor thread ([`super::reactor`]) owns every socket — accept,
//! incremental parse, keep-alive, pipelining, deadlines — so open
//! connections cost file descriptors rather than threads. The worker
//! pool sees only complete requests and runs the handler (sheet
//! evaluation, rendering); finished responses return to the reactor over
//! a wake pipe. Load shedding answers 503 at two gates: a connection cap
//! at accept, and a per-request gate once `workers + queue_capacity`
//! requests are in flight — the reactor port of the old bounded accept
//! queue, preserving its observable behavior.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] flips the running
//! flag and wakes the reactor, which stops accepting, closes idle
//! keep-alive connections, lets in-flight requests finish writing, and
//! exits — bounded by [`ServerConfig::shutdown_grace`] so a handler that
//! never returns is abandoned rather than hanging shutdown forever.

use std::fs::File;
use std::io::{self, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use super::reactor::{self, Completions, Job};
use super::request::Request;
use super::response::{Response, Status};
use super::sys;

/// A request handler: pure function from request to response. Handlers
/// run on worker threads, so they must be `Send + Sync`.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync + 'static;

/// A connection filter deciding whether a client address may connect —
/// the paper's "WWW programs enable file access to be restricted to
/// specific machines".
pub type ClientFilter = dyn Fn(std::net::SocketAddr) -> bool + Send + Sync + 'static;

/// Pool sizing and socket policy for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads evaluating handlers. Default: available cores.
    pub workers: usize,
    /// Requests that may wait dispatched-but-unstarted beyond the busy
    /// workers before new requests are answered 503.
    /// Default: `16 * workers` — keep-alive connections multiplex many
    /// requests, so the queue is per-request now, not per-connection.
    pub queue_capacity: usize,
    /// Reactor-enforced read deadline: how long an idle keep-alive
    /// connection may sit, or a partial request may stall (408).
    pub read_timeout: Duration,
    /// Reactor-enforced write deadline for flushing a response.
    pub write_timeout: Duration,
    /// How long [`ServerHandle::shutdown`] waits for in-flight handlers
    /// before abandoning their worker threads.
    pub shutdown_grace: Duration,
    /// Connections the reactor will hold open at once; arrivals past the
    /// cap are answered 503 without reading their request.
    pub max_connections: usize,
    /// How often idle event-stream connections get an SSE heartbeat
    /// comment (`:hb`) so proxies keep them open and dead peers surface.
    pub heartbeat_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ServerConfig {
            workers,
            queue_capacity: workers * 16,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            shutdown_grace: Duration::from_secs(30),
            max_connections: 1024,
            heartbeat_interval: Duration::from_secs(10),
        }
    }
}

/// Count of worker threads still running, so shutdown can wait for the
/// pool to drain with a deadline (a plain `JoinHandle::join` cannot).
struct WorkerExits {
    active: Mutex<usize>,
    cv: Condvar,
}

/// Decrements the active-worker count when dropped, so a worker that
/// unwinds still gets counted out.
struct WorkerExitGuard(Arc<WorkerExits>);

impl Drop for WorkerExitGuard {
    fn drop(&mut self) {
        let mut active = self.0.active.lock().unwrap_or_else(|e| e.into_inner());
        *active -= 1;
        self.0.cv.notify_all();
    }
}

/// A running HTTP server bound to a local address.
pub struct Server {
    addr: std::net::SocketAddr,
    listener: TcpListener,
    handler: Arc<Handler>,
    filter: Option<Arc<ClientFilter>>,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the
    /// default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            addr,
            listener,
            handler: Arc::new(handler),
            filter: None,
            config: ServerConfig::default(),
        })
    }

    /// Like [`Self::bind`] but rejecting (closing immediately) any
    /// connection whose peer address fails `filter` — machine-level
    /// access restriction per the paper's protection section.
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub fn bind_filtered<A: ToSocketAddrs>(
        addr: A,
        filter: impl Fn(std::net::SocketAddr) -> bool + Send + Sync + 'static,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> io::Result<Server> {
        let mut server = Server::bind(addr, handler)?;
        server.filter = Some(Arc::new(filter));
        Ok(server)
    }

    /// Replaces the pool configuration.
    #[must_use]
    pub fn with_config(mut self, config: ServerConfig) -> Server {
        self.config = config;
        self
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Starts the reactor and the worker pool on background threads and
    /// returns a handle for shutdown.
    pub fn start(self) -> ServerHandle {
        let config = self.config;
        let running = Arc::new(AtomicBool::new(true));
        let (wake_rx, wake_tx) = sys::wake_pipe().expect("wake pipe");
        let shutdown_wake = wake_tx.try_clone().expect("wake pipe clone");
        let stream_wake = wake_tx.try_clone().expect("wake pipe clone");
        let completions = Arc::new(Completions::new(wake_tx));
        let streams = Arc::new(super::stream::StreamOps::new(stream_wake));
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_count = config.workers.max(1);
        let exits = Arc::new(WorkerExits {
            active: Mutex::new(worker_count),
            cv: Condvar::new(),
        });

        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let handler = Arc::clone(&self.handler);
                let completions = Arc::clone(&completions);
                let exit_guard = WorkerExitGuard(Arc::clone(&exits));
                thread::spawn(move || {
                    let _exit_guard = exit_guard;
                    loop {
                        // Hold the queue lock only for the claim, not
                        // the evaluation; the reactor never locks it.
                        let claimed = job_rx.lock().expect("worker queue poisoned").recv();
                        let Ok(job) = claimed else { break };
                        // A panicking handler costs its request a 500,
                        // not the process.
                        let response = catch_unwind(AssertUnwindSafe(|| (handler)(&job.request)))
                            .unwrap_or_else(|_| {
                                Response::error(Status::InternalServerError, "handler panicked")
                            });
                        completions.push(job.token, job.seq, response);
                    }
                })
            })
            .collect();

        let reactor_running = Arc::clone(&running);
        let listener = self.listener;
        let filter = self.filter;
        let reactor_config = config.clone();
        let reactor = thread::spawn(move || {
            // The job sender lives on this thread: when the reactor
            // exits it drops, the queue disconnects, and the workers
            // finish what is queued and exit.
            let _ = reactor::run(
                listener,
                filter,
                job_tx,
                completions,
                streams,
                wake_rx,
                reactor_running,
                reactor_config,
            );
        });

        ServerHandle {
            addr: self.addr,
            running,
            wake: shutdown_wake,
            reactor: Mutex::new(Some(reactor)),
            workers: Mutex::new(workers),
            exits,
            shutdown_grace: config.shutdown_grace,
        }
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    wake: File,
    reactor: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    exits: Arc<WorkerExits>,
    shutdown_grace: Duration,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Blocks until the reactor exits (i.e. until [`Self::shutdown`] is
    /// called from another thread).
    pub fn join(self) {
        let reactor = self.reactor.lock().expect("reactor handle poisoned").take();
        if let Some(reactor) = reactor {
            let _ = reactor.join();
        }
    }

    /// Stops accepting connections and drains: idle keep-alive
    /// connections close, in-flight requests finish evaluating and
    /// writing (their responses forced to `Connection: close`), and the
    /// reactor exits once nothing is left — bounded by
    /// [`ServerConfig::shutdown_grace`]. A handler still running past
    /// the grace is abandoned (its thread detached) so shutdown always
    /// returns.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        // Pop the reactor out of epoll_wait; an error here means the
        // reactor already exited and dropped the pipe's read end.
        let _ = (&self.wake).write(&[1u8]);
        let reactor = self.reactor.lock().expect("reactor handle poisoned").take();
        if let Some(reactor) = reactor {
            let _ = reactor.join();
        }
        let workers: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        if workers.is_empty() {
            return; // already shut down once
        }
        // The reactor dropped the job sender on exit; wait (bounded) for
        // the workers to notice and drain.
        let active = self.exits.active.lock().unwrap_or_else(|e| e.into_inner());
        let (active, wait) = self
            .exits
            .cv
            .wait_timeout_while(active, self.shutdown_grace, |active| *active > 0)
            .unwrap_or_else(|e| e.into_inner());
        drop(active);
        if wait.timed_out() {
            return; // abandon stuck workers; their handles are dropped
        }
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{http_get, Method};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::Condvar;

    #[test]
    fn serves_requests_and_shuts_down() {
        let server = Server::bind("127.0.0.1:0", |req| {
            if req.path() == "/hello" {
                Response::html(format!("hi {}", req.query_param("who").unwrap_or_default()))
            } else {
                Response::error(Status::NotFound, "nope")
            }
        })
        .unwrap()
        .start();

        let base = format!("http://{}", server.addr());
        let ok = http_get(&format!("{base}/hello?who=alice")).unwrap();
        assert_eq!(ok.status(), Status::Ok);
        assert_eq!(ok.body_text(), "hi alice");

        let missing = http_get(&format!("{base}/nope")).unwrap();
        assert_eq!(missing.status(), Status::NotFound);

        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::bind("127.0.0.1:0", |req| {
            Response::html(req.query_param("n").unwrap_or_default())
        })
        .unwrap()
        // Enough pool headroom that none of the 8 is load-shed even on
        // a small CI host.
        .with_config(ServerConfig {
            workers: 4,
            queue_capacity: 8,
            ..ServerConfig::default()
        })
        .start();
        let base = format!("http://{}", server.addr());

        let handles: Vec<_> = (0..8)
            .map(|n| {
                let base = base.clone();
                std::thread::spawn(move || {
                    let r = http_get(&format!("{base}/?n={n}")).unwrap();
                    assert_eq!(r.body_text(), n.to_string());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
            .unwrap()
            .start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");
    }

    #[test]
    fn method_enum_is_exposed_to_handlers() {
        let server = Server::bind("127.0.0.1:0", |req| {
            Response::html(match req.method() {
                Method::Get => "get",
                Method::Post => "post",
                Method::Put => "put",
                Method::Delete => "delete",
            })
        })
        .unwrap()
        .start();
        let r = http_get(&format!("http://{}/x", server.addr())).unwrap();
        assert_eq!(r.body_text(), "get");
    }

    #[test]
    fn oversized_header_section_gets_431() {
        let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
            .unwrap()
            .start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(17 * 1024));
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 431"), "got: {buf}");
    }

    #[test]
    fn oversized_body_declaration_gets_413() {
        let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
            .unwrap()
            .start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            5 * 1024 * 1024
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 413"), "got: {buf}");
    }

    #[test]
    fn panicking_handler_gets_500_and_server_survives() {
        let server = Server::bind("127.0.0.1:0", |req| {
            if req.path() == "/boom" {
                panic!("handler exploded");
            }
            Response::html("fine")
        })
        .unwrap()
        .start();
        let base = format!("http://{}", server.addr());
        let boom = http_get(&format!("{base}/boom")).unwrap();
        assert_eq!(boom.status(), Status::InternalServerError);
        let ok = http_get(&format!("{base}/fine")).unwrap();
        assert_eq!(ok.body_text(), "fine");
    }

    /// A gate handlers can block on, so tests control exactly when a
    /// request finishes.
    #[derive(Default)]
    struct GateState {
        open: bool,
        started: usize,
    }

    #[derive(Default)]
    struct Gate {
        state: Mutex<GateState>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::default()
        }

        fn enter(&self) {
            let mut state = self.state.lock().unwrap();
            state.started += 1;
            self.cv.notify_all();
            while !state.open {
                state = self.cv.wait(state).unwrap();
            }
        }

        fn wait_started(&self, n: usize) {
            let mut state = self.state.lock().unwrap();
            while state.started < n {
                state = self.cv.wait(state).unwrap();
            }
        }

        fn release(&self) {
            self.state.lock().unwrap().open = true;
            self.cv.notify_all();
        }
    }

    fn raw_get(addr: std::net::SocketAddr) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        stream
    }

    fn read_status_line(stream: &mut TcpStream) -> String {
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        buf.lines().next().unwrap_or_default().to_owned()
    }

    #[test]
    fn saturated_pool_sheds_with_503() {
        let gate = Gate::new();
        let handler_gate = Arc::clone(&gate);
        let server = Server::bind("127.0.0.1:0", move |_| {
            handler_gate.enter();
            Response::html("served")
        })
        .unwrap()
        .with_config(ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        })
        .start();
        let addr = server.addr();

        // First request occupies the only worker…
        let mut c1 = raw_get(addr);
        gate.wait_started(1);
        // …then two more arrive. One fills the single queue slot and the
        // other is shed with 503 — which is which depends on the order
        // the reactor sees their bytes, so accept either.
        let c2 = raw_get(addr);
        let c3 = raw_get(addr);
        let readers: Vec<_> = [c2, c3]
            .into_iter()
            .map(|mut c| thread::spawn(move || read_status_line(&mut c)))
            .collect();
        // The shed response arrives without the gate opening; the queued
        // request needs the release below. Give the 503 a moment to land,
        // then open the gate for the rest.
        thread::sleep(Duration::from_millis(100));
        gate.release();
        let statuses: Vec<String> = readers.into_iter().map(|r| r.join().unwrap()).collect();
        let shed = statuses
            .iter()
            .filter(|s| s.starts_with("HTTP/1.1 503"))
            .count();
        let served = statuses
            .iter()
            .filter(|s| s.starts_with("HTTP/1.1 200"))
            .count();
        assert_eq!(
            (shed, served),
            (1, 1),
            "expected exactly one shed and one served, got: {statuses:?}"
        );
        assert!(read_status_line(&mut c1).starts_with("HTTP/1.1 200"));
        server.shutdown();
    }

    #[test]
    fn connection_cap_sheds_with_503_before_reading() {
        let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
            .unwrap()
            .with_config(ServerConfig {
                max_connections: 1,
                ..ServerConfig::default()
            })
            .start();
        let addr = server.addr();
        // Occupy the only slot with an idle keep-alive connection.
        let _held = TcpStream::connect(addr).unwrap();
        thread::sleep(Duration::from_millis(50));
        // The next arrival is shed without sending a single byte.
        let mut shed = TcpStream::connect(addr).unwrap();
        let mut buf = String::new();
        shed.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 503"), "got: {buf}");
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let gate = Gate::new();
        let finished = Arc::new(AtomicBool::new(false));
        let handler_gate = Arc::clone(&gate);
        let handler_finished = Arc::clone(&finished);
        let server = Server::bind("127.0.0.1:0", move |_| {
            handler_gate.enter();
            handler_finished.store(true, Ordering::SeqCst);
            Response::html("drained")
        })
        .unwrap()
        .start();
        let addr = server.addr();

        let client = thread::spawn(move || {
            let mut stream = raw_get(addr);
            read_status_line(&mut stream)
        });
        gate.wait_started(1);

        // Release the handler just after shutdown starts waiting on it.
        let releaser = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(100));
                gate.release();
            })
        };
        server.shutdown();
        assert!(
            finished.load(Ordering::SeqCst),
            "shutdown returned before the in-flight handler finished"
        );
        let status = client.join().unwrap();
        assert!(status.starts_with("HTTP/1.1 200"), "got: {status}");
        releaser.join().unwrap();
    }
}
