//! The threaded HTTP server.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use super::request::{ParseRequestError, Request};
use super::response::{Response, Status};

/// A request handler: pure function from request to response. Handlers
/// run on connection threads, so they must be `Send + Sync`.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync + 'static;

/// A connection filter deciding whether a client address may connect —
/// the paper's "WWW programs enable file access to be restricted to
/// specific machines".
pub type ClientFilter = dyn Fn(std::net::SocketAddr) -> bool + Send + Sync + 'static;

/// A running HTTP server bound to a local address.
///
/// One thread per connection with keep-alive and a read timeout — ample
/// for a tool whose 1996 incarnation ran as CGI under httpd.
pub struct Server {
    addr: std::net::SocketAddr,
    listener: TcpListener,
    handler: Arc<Handler>,
    filter: Option<Arc<ClientFilter>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            addr,
            listener,
            handler: Arc::new(handler),
            filter: None,
        })
    }

    /// Like [`Self::bind`] but rejecting (closing immediately) any
    /// connection whose peer address fails `filter` — machine-level
    /// access restriction per the paper's protection section.
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub fn bind_filtered<A: ToSocketAddrs>(
        addr: A,
        filter: impl Fn(std::net::SocketAddr) -> bool + Send + Sync + 'static,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> io::Result<Server> {
        let mut server = Server::bind(addr, handler)?;
        server.filter = Some(Arc::new(filter));
        Ok(server)
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Starts accepting connections on a background thread and returns a
    /// handle for shutdown.
    pub fn start(self) -> ServerHandle {
        let running = Arc::new(AtomicBool::new(true));
        let accept_running = Arc::clone(&running);
        let handler = Arc::clone(&self.handler);
        let filter = self.filter.clone();
        let addr = self.addr;
        let listener = self.listener;
        let join = thread::spawn(move || {
            for stream in listener.incoming() {
                if !accept_running.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        if let Some(filter) = &filter {
                            match stream.peer_addr() {
                                Ok(peer) if filter(peer) => {}
                                _ => continue, // drop the connection
                            }
                        }
                        let handler = Arc::clone(&handler);
                        thread::spawn(move || {
                            let _ = serve_connection(stream, &handler);
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        ServerHandle {
            addr,
            running,
            join: Some(join),
        }
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (i.e. until [`Self::shutdown`]
    /// is called from another thread).
    pub fn join(mut self) {
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Stops accepting new connections.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn serve_connection(stream: TcpStream, handler: &Arc<Handler>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match Request::read_from(&mut reader) {
            Ok(request) => request,
            Err(ParseRequestError::ConnectionClosed) => return Ok(()),
            Err(ParseRequestError::Io(_)) => return Ok(()),
            Err(ParseRequestError::TooLarge) => {
                let r = Response::error(Status::BadRequest, "request too large");
                let _ = r.write_to(&mut writer, false);
                return Ok(());
            }
            Err(e) => {
                let r = Response::error(Status::BadRequest, &e.to_string());
                let _ = r.write_to(&mut writer, false);
                return Ok(());
            }
        };
        let keep_alive = request.keep_alive();
        let response = handler(&request);
        response.write_to(&mut writer, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{http_get, Method};

    #[test]
    fn serves_requests_and_shuts_down() {
        let server = Server::bind("127.0.0.1:0", |req| {
            if req.path() == "/hello" {
                Response::html(format!("hi {}", req.query_param("who").unwrap_or_default()))
            } else {
                Response::error(Status::NotFound, "nope")
            }
        })
        .unwrap()
        .start();

        let base = format!("http://{}", server.addr());
        let ok = http_get(&format!("{base}/hello?who=alice")).unwrap();
        assert_eq!(ok.status(), Status::Ok);
        assert_eq!(ok.body_text(), "hi alice");

        let missing = http_get(&format!("{base}/nope")).unwrap();
        assert_eq!(missing.status(), Status::NotFound);

        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::bind("127.0.0.1:0", |req| {
            Response::html(req.query_param("n").unwrap_or_default())
        })
        .unwrap()
        .start();
        let base = format!("http://{}", server.addr());

        let handles: Vec<_> = (0..8)
            .map(|n| {
                let base = base.clone();
                std::thread::spawn(move || {
                    let r = http_get(&format!("{base}/?n={n}")).unwrap();
                    assert_eq!(r.body_text(), n.to_string());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
            .unwrap()
            .start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");
    }

    #[test]
    fn method_enum_is_exposed_to_handlers() {
        let server = Server::bind("127.0.0.1:0", |req| {
            Response::html(match req.method() {
                Method::Get => "get",
                Method::Post => "post",
            })
        })
        .unwrap()
        .start();
        let r = http_get(&format!("http://{}/x", server.addr())).unwrap();
        assert_eq!(r.body_text(), "get");
    }
}
