//! The HTTP server: a bounded worker pool over blocking sockets.
//!
//! Accepted connections are pushed onto a bounded queue and claimed by a
//! fixed set of worker threads; when the queue is full new arrivals get
//! an immediate `503 Service Unavailable` instead of piling up threads —
//! load shedding a 1996 CGI deployment got for free from `httpd` and a
//! threaded port must do itself. Every socket carries read and write
//! timeouts so a stalled peer can hold a worker for at most one timeout.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] stops the accept
//! loop, wakes idle keep-alive readers by shutting the read half of
//! every live connection, and waits for the workers — so in-flight
//! requests finish writing their responses before it returns. The wait
//! is bounded by [`ServerConfig::shutdown_grace`]: a handler that never
//! returns is abandoned rather than hanging shutdown forever.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use powerplay_telemetry::{Counter, Gauge};

use super::request::{ParseRequestError, Request};
use super::response::{Response, Status};

/// A request handler: pure function from request to response. Handlers
/// run on worker threads, so they must be `Send + Sync`.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync + 'static;

/// A connection filter deciding whether a client address may connect —
/// the paper's "WWW programs enable file access to be restricted to
/// specific machines".
pub type ClientFilter = dyn Fn(std::net::SocketAddr) -> bool + Send + Sync + 'static;

/// Transport-layer metrics, registered once in the process-global
/// telemetry registry (request-level metrics live in the app layer).
struct ServerMetrics {
    connections_total: Counter,
    rejected_total: Counter,
    queue_depth: Gauge,
}

fn server_metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = powerplay_telemetry::global();
        ServerMetrics {
            connections_total: g.counter(
                "powerplay_server_connections_total",
                "Connections accepted (including ones later shed with 503)",
            ),
            rejected_total: g.counter(
                "powerplay_server_rejected_total",
                "Connections answered 503 because the worker queue was full",
            ),
            queue_depth: g.gauge(
                "powerplay_server_queue_depth",
                "Accepted connections waiting for a worker",
            ),
        }
    })
}

/// Pool sizing and socket policy for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections. Default: available cores.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before new
    /// arrivals are answered 503. Default: `2 * workers`.
    pub queue_capacity: usize,
    /// Per-socket read timeout, bounding how long an idle or stalled
    /// peer can hold a worker.
    pub read_timeout: Duration,
    /// Per-socket write timeout.
    pub write_timeout: Duration,
    /// How long [`ServerHandle::shutdown`] waits for in-flight handlers
    /// before abandoning their worker threads.
    pub shutdown_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ServerConfig {
            workers,
            queue_capacity: workers * 2,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            shutdown_grace: Duration::from_secs(30),
        }
    }
}

/// Count of worker threads still running, so shutdown can wait for the
/// pool to drain with a deadline (a plain `JoinHandle::join` cannot).
struct WorkerExits {
    active: Mutex<usize>,
    cv: Condvar,
}

/// Decrements the active-worker count when dropped, so a worker that
/// unwinds still gets counted out.
struct WorkerExitGuard(Arc<WorkerExits>);

impl Drop for WorkerExitGuard {
    fn drop(&mut self) {
        let mut active = self.0.active.lock().unwrap_or_else(|e| e.into_inner());
        *active -= 1;
        self.0.cv.notify_all();
    }
}

/// A running HTTP server bound to a local address.
pub struct Server {
    addr: std::net::SocketAddr,
    listener: TcpListener,
    handler: Arc<Handler>,
    filter: Option<Arc<ClientFilter>>,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the
    /// default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            addr,
            listener,
            handler: Arc::new(handler),
            filter: None,
            config: ServerConfig::default(),
        })
    }

    /// Like [`Self::bind`] but rejecting (closing immediately) any
    /// connection whose peer address fails `filter` — machine-level
    /// access restriction per the paper's protection section.
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub fn bind_filtered<A: ToSocketAddrs>(
        addr: A,
        filter: impl Fn(std::net::SocketAddr) -> bool + Send + Sync + 'static,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> io::Result<Server> {
        let mut server = Server::bind(addr, handler)?;
        server.filter = Some(Arc::new(filter));
        Ok(server)
    }

    /// Replaces the pool configuration.
    #[must_use]
    pub fn with_config(mut self, config: ServerConfig) -> Server {
        self.config = config;
        self
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Starts the worker pool and the accept loop on background threads
    /// and returns a handle for shutdown.
    pub fn start(self) -> ServerHandle {
        let config = self.config;
        let running = Arc::new(AtomicBool::new(true));
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::default();
        let (tx, rx) = sync_channel::<(u64, TcpStream)>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_count = config.workers.max(1);
        let exits = Arc::new(WorkerExits {
            active: Mutex::new(worker_count),
            cv: Condvar::new(),
        });

        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&self.handler);
                let connections = Arc::clone(&connections);
                let config = config.clone();
                let exit_guard = WorkerExitGuard(Arc::clone(&exits));
                thread::spawn(move || {
                    let _exit_guard = exit_guard;
                    loop {
                        // Hold the queue lock only for the claim, not the
                        // service; the sender never locks it.
                        let claimed = rx.lock().expect("worker queue poisoned").recv();
                        let Ok((id, stream)) = claimed else { break };
                        server_metrics().queue_depth.sub(1);
                        let _ = serve_connection(stream, &handler, &config);
                        connections
                            .lock()
                            .expect("connection registry poisoned")
                            .remove(&id);
                    }
                })
            })
            .collect();

        let accept_running = Arc::clone(&running);
        let accept_connections = Arc::clone(&connections);
        let filter = self.filter;
        let listener = self.listener;
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        let accept = thread::spawn(move || {
            let metrics = server_metrics();
            let mut next_id = 0u64;
            for stream in listener.incoming() {
                if !accept_running.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                if let Some(filter) = &filter {
                    match stream.peer_addr() {
                        Ok(peer) if filter(peer) => {}
                        _ => continue, // drop the connection
                    }
                }
                metrics.connections_total.inc();
                let id = next_id;
                next_id += 1;
                // Register a clone so shutdown can wake this socket's
                // reader; workers deregister when the connection ends.
                if let Ok(clone) = stream.try_clone() {
                    accept_connections
                        .lock()
                        .expect("connection registry poisoned")
                        .insert(id, clone);
                }
                metrics.queue_depth.add(1);
                match tx.try_send((id, stream)) {
                    Ok(()) => {}
                    Err(TrySendError::Full((_, mut stream))) => {
                        metrics.queue_depth.sub(1);
                        metrics.rejected_total.inc();
                        accept_connections
                            .lock()
                            .expect("connection registry poisoned")
                            .remove(&id);
                        // Answer on a detached thread: the peer's request
                        // must be drained before the socket closes (or the
                        // close becomes a TCP RST that can destroy the 503
                        // in flight), and that drain must not stall the
                        // accept loop. Lifetime is bounded by the timeouts.
                        thread::spawn(move || {
                            let _ = stream.set_read_timeout(Some(read_timeout));
                            let _ = stream.set_write_timeout(Some(write_timeout));
                            let r = Response::error(
                                Status::ServiceUnavailable,
                                "server busy; try again",
                            );
                            let _ = r.write_to(&mut stream, false);
                            drain_before_close(&mut (&stream), &stream);
                        });
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // The queue sender drops here: workers finish what is
            // already queued, then see the disconnect and exit.
        });

        ServerHandle {
            addr: self.addr,
            running,
            accept: Mutex::new(Some(accept)),
            workers: Mutex::new(workers),
            connections,
            exits,
            shutdown_grace: config.shutdown_grace,
        }
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
    exits: Arc<WorkerExits>,
    shutdown_grace: Duration,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (i.e. until [`Self::shutdown`]
    /// is called from another thread).
    pub fn join(self) {
        let accept = self.accept.lock().expect("accept handle poisoned").take();
        if let Some(accept) = accept {
            let _ = accept.join();
        }
    }

    /// Stops accepting connections and drains the pool: queued
    /// connections are still served, in-flight responses finish writing,
    /// and idle keep-alive readers are woken by shutting their sockets'
    /// read halves. Waits up to [`ServerConfig::shutdown_grace`] for the
    /// workers; a handler still running past the grace is abandoned (its
    /// thread is detached) so shutdown always returns.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        let accept = self.accept.lock().expect("accept handle poisoned").take();
        if let Some(accept) = accept {
            let _ = accept.join();
        }
        // The accept loop has exited, so the registry is now stable:
        // wake every parked reader. In-flight handlers are untouched —
        // only the read half goes away, responses still flush.
        for (_, stream) in self
            .connections
            .lock()
            .expect("connection registry poisoned")
            .drain()
        {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let workers: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        if workers.is_empty() {
            return; // already shut down once
        }
        let active = self.exits.active.lock().unwrap_or_else(|e| e.into_inner());
        let (active, wait) = self
            .exits
            .cv
            .wait_timeout_while(active, self.shutdown_grace, |active| *active > 0)
            .unwrap_or_else(|e| e.into_inner());
        drop(active);
        if wait.timed_out() {
            return; // abandon stuck workers; their handles are dropped
        }
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    stream: TcpStream,
    handler: &Arc<Handler>,
    config: &ServerConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match Request::read_from(&mut reader) {
            Ok(request) => request,
            Err(ParseRequestError::ConnectionClosed | ParseRequestError::Io(_)) => return Ok(()),
            Err(e) => {
                let (status, message) = match e {
                    ParseRequestError::HeadTooLarge => (
                        Status::RequestHeaderFieldsTooLarge,
                        "request header section too large".to_owned(),
                    ),
                    ParseRequestError::BodyTooLarge => {
                        (Status::PayloadTooLarge, "request body too large".to_owned())
                    }
                    e => (Status::BadRequest, e.to_string()),
                };
                let r = Response::error(status, &message);
                let _ = r.write_to(&mut writer, false);
                // The request was rejected part-read: drain what the peer
                // already sent before closing, or the close turns into a
                // TCP RST that can destroy the error response in flight.
                drain_before_close(&mut reader, writer.get_ref());
                return Ok(());
            }
        };
        let keep_alive = request.keep_alive();
        // A panicking handler costs its request a 500, not the process.
        let response = catch_unwind(AssertUnwindSafe(|| handler(&request)))
            .unwrap_or_else(|_| Response::error(Status::InternalServerError, "handler panicked"));
        response.write_to(&mut writer, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Sends FIN (so the peer sees the full response and EOF) and then reads
/// the peer's leftover bytes until it hangs up. Closing a socket with
/// unread data in its receive buffer makes the kernel send RST instead,
/// which can discard a response still in flight — this avoids that. The
/// read loop is bounded by the socket's read timeout.
fn drain_before_close(reader: &mut impl Read, stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let mut scratch = [0u8; 4096];
    while matches!(reader.read(&mut scratch), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{http_get, Method};
    use std::io::{Read, Write};
    use std::sync::Condvar;

    #[test]
    fn serves_requests_and_shuts_down() {
        let server = Server::bind("127.0.0.1:0", |req| {
            if req.path() == "/hello" {
                Response::html(format!("hi {}", req.query_param("who").unwrap_or_default()))
            } else {
                Response::error(Status::NotFound, "nope")
            }
        })
        .unwrap()
        .start();

        let base = format!("http://{}", server.addr());
        let ok = http_get(&format!("{base}/hello?who=alice")).unwrap();
        assert_eq!(ok.status(), Status::Ok);
        assert_eq!(ok.body_text(), "hi alice");

        let missing = http_get(&format!("{base}/nope")).unwrap();
        assert_eq!(missing.status(), Status::NotFound);

        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = Server::bind("127.0.0.1:0", |req| {
            Response::html(req.query_param("n").unwrap_or_default())
        })
        .unwrap()
        // Enough pool headroom that none of the 8 is load-shed even on
        // a small CI host.
        .with_config(ServerConfig {
            workers: 4,
            queue_capacity: 8,
            ..ServerConfig::default()
        })
        .start();
        let base = format!("http://{}", server.addr());

        let handles: Vec<_> = (0..8)
            .map(|n| {
                let base = base.clone();
                std::thread::spawn(move || {
                    let r = http_get(&format!("{base}/?n={n}")).unwrap();
                    assert_eq!(r.body_text(), n.to_string());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
            .unwrap()
            .start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");
    }

    #[test]
    fn method_enum_is_exposed_to_handlers() {
        let server = Server::bind("127.0.0.1:0", |req| {
            Response::html(match req.method() {
                Method::Get => "get",
                Method::Post => "post",
                Method::Put => "put",
                Method::Delete => "delete",
            })
        })
        .unwrap()
        .start();
        let r = http_get(&format!("http://{}/x", server.addr())).unwrap();
        assert_eq!(r.body_text(), "get");
    }

    #[test]
    fn oversized_header_section_gets_431() {
        let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
            .unwrap()
            .start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(17 * 1024));
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 431"), "got: {buf}");
    }

    #[test]
    fn oversized_body_declaration_gets_413() {
        let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
            .unwrap()
            .start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 5 * 1024 * 1024);
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 413"), "got: {buf}");
    }

    #[test]
    fn panicking_handler_gets_500_and_server_survives() {
        let server = Server::bind("127.0.0.1:0", |req| {
            if req.path() == "/boom" {
                panic!("handler exploded");
            }
            Response::html("fine")
        })
        .unwrap()
        .start();
        let base = format!("http://{}", server.addr());
        let boom = http_get(&format!("{base}/boom")).unwrap();
        assert_eq!(boom.status(), Status::InternalServerError);
        let ok = http_get(&format!("{base}/fine")).unwrap();
        assert_eq!(ok.body_text(), "fine");
    }

    /// A gate handlers can block on, so tests control exactly when a
    /// request finishes.
    #[derive(Default)]
    struct GateState {
        open: bool,
        started: usize,
    }

    #[derive(Default)]
    struct Gate {
        state: Mutex<GateState>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::default()
        }

        fn enter(&self) {
            let mut state = self.state.lock().unwrap();
            state.started += 1;
            self.cv.notify_all();
            while !state.open {
                state = self.cv.wait(state).unwrap();
            }
        }

        fn wait_started(&self, n: usize) {
            let mut state = self.state.lock().unwrap();
            while state.started < n {
                state = self.cv.wait(state).unwrap();
            }
        }

        fn release(&self) {
            self.state.lock().unwrap().open = true;
            self.cv.notify_all();
        }
    }

    fn raw_get(addr: std::net::SocketAddr) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        stream
    }

    fn read_status_line(stream: &mut TcpStream) -> String {
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        buf.lines().next().unwrap_or_default().to_owned()
    }

    #[test]
    fn saturated_pool_sheds_with_503() {
        let gate = Gate::new();
        let handler_gate = Arc::clone(&gate);
        let server = Server::bind("127.0.0.1:0", move |_| {
            handler_gate.enter();
            Response::html("served")
        })
        .unwrap()
        .with_config(ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        })
        .start();
        let addr = server.addr();

        // First connection occupies the only worker…
        let mut c1 = raw_get(addr);
        gate.wait_started(1);
        // …second fills the queue (accepted before c3 by FIFO order)…
        let mut c2 = raw_get(addr);
        // …third finds the queue full and is shed immediately.
        let mut c3 = raw_get(addr);
        assert!(
            read_status_line(&mut c3).starts_with("HTTP/1.1 503"),
            "expected 503 for the connection past the queue"
        );

        gate.release();
        assert!(read_status_line(&mut c1).starts_with("HTTP/1.1 200"));
        assert!(read_status_line(&mut c2).starts_with("HTTP/1.1 200"));
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let gate = Gate::new();
        let finished = Arc::new(AtomicBool::new(false));
        let handler_gate = Arc::clone(&gate);
        let handler_finished = Arc::clone(&finished);
        let server = Server::bind("127.0.0.1:0", move |_| {
            handler_gate.enter();
            handler_finished.store(true, Ordering::SeqCst);
            Response::html("drained")
        })
        .unwrap()
        .start();
        let addr = server.addr();

        let client = thread::spawn(move || {
            let mut stream = raw_get(addr);
            read_status_line(&mut stream)
        });
        gate.wait_started(1);

        // Release the handler just after shutdown starts waiting on it.
        let releaser = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(100));
                gate.release();
            })
        };
        server.shutdown();
        assert!(
            finished.load(Ordering::SeqCst),
            "shutdown returned before the in-flight handler finished"
        );
        let status = client.join().unwrap();
        assert!(status.starts_with("HTTP/1.1 200"), "got: {status}");
        releaser.join().unwrap();
    }
}
