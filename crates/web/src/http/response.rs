//! HTTP response construction and serialization.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use super::stream::{OnStreamOpen, StreamHandle};

/// Response status codes PowerPlay emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200
    Ok,
    /// 201 (a PUT created a new design)
    Created,
    /// 302 (post-redirect-get after form submissions)
    Found,
    /// 304 (conditional GET whose `If-None-Match` matched the ETag)
    NotModified,
    /// 400
    BadRequest,
    /// 401 (password-protected instances)
    Unauthorized,
    /// 404
    NotFound,
    /// 405
    MethodNotAllowed,
    /// 408 (a read deadline expired mid-request on the reactor)
    RequestTimeout,
    /// 409 (stale `If-Match` revision on a PUT — optimistic concurrency)
    Conflict,
    /// 410 (a sunset legacy route; the `Link` header names the successor)
    Gone,
    /// 413 (body over the server's size limit)
    PayloadTooLarge,
    /// 428 (a PUT over an existing design without `If-Match`)
    PreconditionRequired,
    /// 431 (header section over the server's size limit)
    RequestHeaderFieldsTooLarge,
    /// 500
    InternalServerError,
    /// 503 (worker pool saturated; try again)
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::Found => 302,
            Status::NotModified => 304,
            Status::BadRequest => 400,
            Status::Unauthorized => 401,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::RequestTimeout => 408,
            Status::Conflict => 409,
            Status::Gone => 410,
            Status::PayloadTooLarge => 413,
            Status::PreconditionRequired => 428,
            Status::RequestHeaderFieldsTooLarge => 431,
            Status::InternalServerError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::Found => "Found",
            Status::NotModified => "Not Modified",
            Status::BadRequest => "Bad Request",
            Status::Unauthorized => "Unauthorized",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::RequestTimeout => "Request Timeout",
            Status::Conflict => "Conflict",
            Status::Gone => "Gone",
            Status::PayloadTooLarge => "Payload Too Large",
            Status::PreconditionRequired => "Precondition Required",
            Status::RequestHeaderFieldsTooLarge => "Request Header Fields Too Large",
            Status::InternalServerError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// An HTTP response under construction.
pub struct Response {
    status: Status,
    headers: BTreeMap<String, String>,
    body: Vec<u8>,
    /// Present on stream responses ([`Response::event_stream`]): the
    /// reactor writes the head and `body` (the initial events) without
    /// a `Content-Length`, converts the connection into a long-lived
    /// writer, and fires the callback with its [`StreamHandle`].
    stream: Option<Arc<Mutex<Option<OnStreamOpen>>>>,
}

impl Clone for Response {
    fn clone(&self) -> Response {
        Response {
            status: self.status,
            headers: self.headers.clone(),
            body: self.body.clone(),
            // The open callback is FnOnce; clones share it (first caller
            // of `take_on_open` wins). Responses are cloned only on the
            // client/test side, never on the serving hot path.
            stream: self.stream.clone(),
        }
    }
}

impl PartialEq for Response {
    fn eq(&self, other: &Response) -> bool {
        self.status == other.status
            && self.headers == other.headers
            && self.body == other.body
            && self.stream.is_none() == other.stream.is_none()
    }
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Response")
            .field("status", &self.status)
            .field("headers", &self.headers)
            .field("body_len", &self.body.len())
            .field("stream", &self.stream.is_some())
            .finish()
    }
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: Status) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
            stream: None,
        }
    }

    /// A 200 `text/event-stream` response that converts its connection
    /// into a long-lived stream. `initial` is the SSE-framed prologue
    /// (snapshot / replayed events) written with the head; `on_open`
    /// fires on the reactor thread with the connection's
    /// [`StreamHandle`] once the stream is live. Handlers served outside
    /// the reactor (unit tests calling the app directly) see a plain
    /// response whose body is the prologue.
    pub fn event_stream(
        initial: impl Into<Vec<u8>>,
        on_open: impl FnOnce(StreamHandle) + Send + 'static,
    ) -> Response {
        let mut r = Response::new(Status::Ok);
        r.set_header("Content-Type", "text/event-stream");
        r.set_header("Cache-Control", "no-cache");
        r.body = initial.into();
        r.stream = Some(Arc::new(Mutex::new(Some(Box::new(on_open)))));
        r
    }

    /// True for stream responses ([`Response::event_stream`]).
    pub fn is_stream(&self) -> bool {
        self.stream.is_some()
    }

    /// Takes the stream-open callback (at most once across clones).
    pub(crate) fn take_on_open(&self) -> Option<OnStreamOpen> {
        self.stream
            .as_ref()?
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// A 200 HTML page.
    pub fn html(body: impl Into<String>) -> Response {
        let mut r = Response::new(Status::Ok);
        r.set_header("Content-Type", "text/html; charset=utf-8");
        r.body = body.into().into_bytes();
        r
    }

    /// A 200 JSON document.
    pub fn json(body: impl Into<String>) -> Response {
        Response::json_with_status(Status::Ok, body)
    }

    /// A JSON document with an explicit status — structured error
    /// bodies (diagnostics) on 4xx responses.
    pub fn json_with_status(status: Status, body: impl Into<String>) -> Response {
        let mut r = Response::new(status);
        r.set_header("Content-Type", "application/json");
        r.body = body.into().into_bytes();
        r
    }

    /// A 200 body with an explicit content type — e.g. the Prometheus
    /// text exposition on `/metrics`.
    pub fn with_content_type(content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        let mut r = Response::new(Status::Ok);
        r.set_header("Content-Type", content_type);
        r.body = body.into();
        r
    }

    /// A 302 redirect.
    pub fn redirect(location: &str) -> Response {
        let mut r = Response::new(Status::Found);
        r.set_header("Location", location);
        r
    }

    /// An error page with a plain-text body.
    pub fn error(status: Status, message: &str) -> Response {
        let mut r = Response::new(status);
        r.set_header("Content-Type", "text/plain; charset=utf-8");
        r.body = message.as_bytes().to_vec();
        r
    }

    /// The response status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// A header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Sets a header.
    pub fn set_header(&mut self, name: &str, value: &str) {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_owned());
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    pub(crate) fn from_parts(
        status: Status,
        headers: BTreeMap<String, String>,
        body: Vec<u8>,
    ) -> Response {
        Response {
            status,
            headers,
            body,
            stream: None,
        }
    }

    /// Writes the response to a stream (server side). Header names are
    /// stored lowercased for case-insensitive lookup but serialized in
    /// canonical `Train-Case` — matching the casing the request builder
    /// emits, so neither side depends on the other's case handling.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        use std::fmt::Write as _;
        // One allocation for the whole head; this runs once per response
        // on the serving hot path.
        let mut head = String::with_capacity(96 + self.headers.len() * 48);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        );
        for (name, value) in &self.headers {
            let _ = write!(head, "{}: {value}\r\n", super::canonical_header_case(name));
        }
        let _ = write!(head, "Content-Length: {}\r\n", self.body.len());
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }

    /// Serializes a stream response's head plus initial events: no
    /// `Content-Length` (the body runs until the connection closes) and
    /// `Connection: close` so byte-counting clients read to EOF.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub(crate) fn write_stream_head<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        use std::fmt::Write as _;
        let mut head = String::with_capacity(96 + self.headers.len() * 48);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        );
        for (name, value) in &self.headers {
            let _ = write!(head, "{}: {value}\r\n", super::canonical_header_case(name));
        }
        head.push_str("Connection: close\r\n\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::Created.code(), 201);
        assert_eq!(Status::NotFound.code(), 404);
        assert_eq!(Status::RequestTimeout.code(), 408);
        assert_eq!(Status::RequestTimeout.reason(), "Request Timeout");
        assert_eq!(Status::Conflict.code(), 409);
        assert_eq!(Status::Gone.code(), 410);
        assert_eq!(Status::Gone.reason(), "Gone");
        assert_eq!(Status::PreconditionRequired.code(), 428);
        assert_eq!(Status::Found.reason(), "Found");
        assert_eq!(Status::PayloadTooLarge.code(), 413);
        assert_eq!(Status::RequestHeaderFieldsTooLarge.code(), 431);
        assert_eq!(Status::ServiceUnavailable.code(), 503);
    }

    #[test]
    fn html_response_has_content_type() {
        let r = Response::html("<html></html>");
        assert_eq!(r.status(), Status::Ok);
        assert_eq!(r.header("content-type"), Some("text/html; charset=utf-8"));
        assert_eq!(r.body_text(), "<html></html>");
    }

    #[test]
    fn redirect_carries_location() {
        let r = Response::redirect("/menu?user=alice");
        assert_eq!(r.status(), Status::Found);
        assert_eq!(r.header("Location"), Some("/menu?user=alice"));
    }

    #[test]
    fn serialization_contains_length_and_connection() {
        let r = Response::json("{}");
        let mut out = Vec::new();
        r.write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"), "got: {text}");
        assert!(text.contains("Connection: close"), "got: {text}");
        assert!(text.ends_with("{}"));
    }

    #[test]
    fn serialized_header_casing_is_canonical_and_lookup_is_insensitive() {
        let mut r = Response::json("{}");
        r.set_header("ETAG", "\"3\"");
        r.set_header("x-powered-by", "powerplay");
        // Lookups on the in-memory response are case-insensitive.
        assert_eq!(r.header("etag"), Some("\"3\""));
        assert_eq!(r.header("ETag"), Some("\"3\""));
        let mut out = Vec::new();
        r.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Etag: \"3\"\r\n"), "got: {text}");
        assert!(text.contains("X-Powered-By: powerplay\r\n"), "got: {text}");
        assert!(
            text.contains("Content-Type: application/json\r\n"),
            "got: {text}"
        );
        assert!(text.contains("Connection: keep-alive\r\n"), "got: {text}");
    }
}
