//! Per-connection state machine for the readiness reactor.
//!
//! Each connection owns a read buffer fed by non-blocking reads, a
//! write buffer drained by non-blocking writes, and a parse cursor
//! driven by [`Request::parse_prefix`]. The reactor calls into the
//! machine on readiness events and timer expiry; the machine never
//! blocks and never touches epoll itself — it reports the interest set
//! it wants and the reactor reconciles registrations.
//!
//! Pipelining runs *concurrently*: every complete request in the buffer
//! is assigned a sequence number and dispatched to the worker pool at
//! once (up to [`MAX_CONN_IN_FLIGHT`]), and finished responses park in a
//! reorder buffer until their turn — so one slow request doesn't
//! serialize the whole batch through the pool, yet responses still leave
//! in request order as HTTP/1.1 requires. Locally-generated responses
//! (parse errors, load-shed 503s) enter the same reorder buffer, which
//! keeps them correctly sequenced behind responses still being computed.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use super::request::{ParseRequestError, Request};
use super::response::{Response, Status};
use super::stream::OnStreamOpen;

/// Read buffer high-water mark: a whole request (head + body) plus room
/// for pipelined successors. Beyond this the reactor stops reading until
/// responses drain — backpressure instead of unbounded buffering.
const READ_BUF_LIMIT: usize = 8 * 1024 * 1024;

/// Requests one connection may have at the workers simultaneously;
/// deeper pipelines wait in the read buffer so a single peer cannot
/// monopolize the pool.
pub(crate) const MAX_CONN_IN_FLIGHT: usize = 32;

/// Outcome of one event-driven step; tells the reactor what to do with
/// the registration.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Step {
    /// Keep the connection; interest flags may have changed.
    Keep,
    /// Deregister and drop the connection.
    Close,
}

/// What the connection does after its write buffer drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Serving: parse requests, write responses, repeat.
    Open,
    /// A `Connection: close` (or error) response is queued: flush it,
    /// send FIN, then drain the peer's leftovers.
    FlushThenClose,
    /// FIN sent; discarding bytes until the peer hangs up, so the close
    /// never turns into an RST that could destroy the response in flight
    /// (the reactor port of the blocking server's `drain_before_close`).
    Draining,
    /// A long-lived event stream (SSE): no more request parsing, the
    /// write buffer is fed by publishers through the reactor, reads only
    /// detect the peer hanging up. Ends with the connection.
    Streaming,
}

/// Why the current deadline is armed; decides what expiry means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeadlineKind {
    /// Idle keep-alive or mid-request read deadline. Expiry answers 408
    /// if a partial request is buffered, else just closes.
    Read,
    /// Response flush deadline. Expiry closes — the peer stopped reading.
    Write,
    /// No deadline enforced (requests are with the workers; the
    /// shutdown grace bounds stuck handlers instead).
    Parked,
    /// Streaming keep-alive: expiry queues an SSE heartbeat comment and
    /// re-arms, so idle streams are never reaped by proxies (and dead
    /// peers surface as write errors).
    Heartbeat,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    pub state: ConnState,
    pub read_buf: Vec<u8>,
    pub write_buf: Vec<u8>,
    pub write_pos: usize,
    /// Requests dispatched to workers whose responses have not come back.
    pub in_flight: usize,
    /// Next sequence number to assign at parse.
    seq_parse: u64,
    /// Next sequence number to serialize onto the wire.
    seq_send: u64,
    /// Responses waiting for earlier sequence numbers to finish.
    reorder: BTreeMap<u64, Response>,
    /// The sequence whose response carries `Connection: close`; set by a
    /// close-requesting request, a parse error, or a shed — parsing
    /// stops once set.
    pub close_after: Option<u64>,
    /// Peer sent FIN; serve what is buffered, then close.
    pub half_closed: bool,
    pub deadline: Instant,
    pub deadline_kind: DeadlineKind,
    /// Interest flags currently registered with epoll (reconciled by
    /// the reactor after each step).
    pub registered_read: bool,
    pub registered_write: bool,
    /// Set once the connection becomes a stream: the flag publishers
    /// watch. The reactor flips it on teardown.
    pub stream_closed: Option<Arc<AtomicBool>>,
}

/// What `advance_parse` produced.
pub(crate) enum Parsed {
    /// Nothing complete yet (or the connection is saturated/closing).
    None,
    /// A complete request, ready for dispatch under `seq`.
    Request { seq: u64, request: Box<Request> },
    /// The prefix was unservable; the mapped error response has been
    /// sequenced into the reorder buffer and parsing has stopped.
    Rejected,
}

impl Conn {
    pub fn new(stream: TcpStream, now: Instant, read_deadline: Instant) -> Conn {
        Conn {
            stream,
            state: ConnState::Open,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: 0,
            seq_parse: 0,
            seq_send: 0,
            reorder: BTreeMap::new(),
            close_after: None,
            half_closed: false,
            deadline: read_deadline.max(now),
            deadline_kind: DeadlineKind::Read,
            registered_read: true,
            registered_write: false,
            stream_closed: None,
        }
    }

    /// True once this connection carries an event stream.
    pub fn is_streaming(&self) -> bool {
        self.state == ConnState::Streaming
    }

    /// Bytes queued but not yet written — the streaming backpressure
    /// measure the reactor caps.
    pub fn stream_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// A request is being computed or a response is waiting its turn.
    pub fn busy(&self) -> bool {
        self.in_flight > 0 || !self.reorder.is_empty()
    }

    /// The interest set this connection currently wants.
    pub fn wants_read(&self) -> bool {
        match self.state {
            // Backpressure: stop reading once the buffer is saturated.
            ConnState::Open => !self.half_closed && self.read_buf.len() < READ_BUF_LIMIT,
            ConnState::FlushThenClose => false,
            ConnState::Draining => true,
            // Keep reading to learn promptly when the subscriber hangs
            // up; whatever it sends is discarded.
            ConnState::Streaming => !self.half_closed,
        }
    }

    pub fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Non-blocking read into the buffer. Returns `Close` on fatal
    /// errors or on EOF with nothing left to serve.
    pub fn fill_read_buf(&mut self, scratch: &mut [u8]) -> Step {
        loop {
            if self.state == ConnState::Open && self.read_buf.len() >= READ_BUF_LIMIT {
                return Step::Keep; // backpressure; resume when drained
            }
            match self.stream.read(scratch) {
                Ok(0) => {
                    if self.state == ConnState::Draining {
                        return Step::Close; // peer finished hanging up
                    }
                    if self.state == ConnState::Streaming {
                        return Step::Close; // subscriber hung up; stream over
                    }
                    self.half_closed = true;
                    // Anything buffered (requests being computed, an
                    // unflushed response) still gets served; with
                    // nothing in flight the connection is simply done.
                    if !self.busy() && !self.wants_write() && self.read_buf.is_empty() {
                        return Step::Close;
                    }
                    return Step::Keep;
                }
                Ok(n) => {
                    if matches!(self.state, ConnState::Draining | ConnState::Streaming) {
                        continue; // discard; only EOF matters now
                    }
                    self.read_buf.extend_from_slice(&scratch[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Step::Close,
            }
        }
    }

    /// Tries to parse the next request off the buffer; the reactor calls
    /// this in a loop to dispatch a whole pipelined batch concurrently.
    /// No-op while saturated or once parsing has stopped (a close or
    /// error is already sequenced).
    pub fn advance_parse(&mut self, now: Instant, read_deadline: Instant) -> Parsed {
        if self.state != ConnState::Open
            || self.close_after.is_some()
            || self.in_flight >= MAX_CONN_IN_FLIGHT
        {
            return Parsed::None;
        }
        match Request::parse_prefix(&self.read_buf) {
            Ok(Some((request, consumed))) => {
                self.read_buf.drain(..consumed);
                let seq = self.seq_parse;
                self.seq_parse += 1;
                if !request.keep_alive() {
                    self.close_after = Some(seq);
                }
                self.in_flight += 1;
                self.deadline_kind = DeadlineKind::Parked;
                Parsed::Request {
                    seq,
                    request: Box::new(request),
                }
            }
            Ok(None) => {
                if self.half_closed {
                    // The peer hung up mid-request; nothing to answer.
                    if !self.busy() && !self.wants_write() {
                        self.read_buf.clear();
                    }
                    return Parsed::None;
                }
                if self.busy() {
                    // Responses are pending; their write deadlines (or
                    // the parked grace) govern until the batch drains.
                    return Parsed::None;
                }
                // An idle connection waits out the keep-alive timeout; a
                // partial request keeps the stricter read deadline armed.
                if self.deadline_kind != DeadlineKind::Read {
                    self.deadline_kind = DeadlineKind::Read;
                    self.deadline = read_deadline.max(now);
                }
                Parsed::None
            }
            Err(e) => {
                let status = match e {
                    ParseRequestError::HeadTooLarge => Status::RequestHeaderFieldsTooLarge,
                    ParseRequestError::BodyTooLarge => Status::PayloadTooLarge,
                    _ => Status::BadRequest,
                };
                let message = match status {
                    Status::RequestHeaderFieldsTooLarge => {
                        "request header section too large".to_owned()
                    }
                    Status::PayloadTooLarge => "request body too large".to_owned(),
                    _ => e.to_string(),
                };
                let seq = self.seq_parse;
                self.seq_parse += 1;
                self.sequence_local(seq, Response::error(status, &message));
                Parsed::Rejected
            }
        }
    }

    /// Sequences a locally-generated response (parse error, shed 503)
    /// behind whatever is still being computed, and stops parsing.
    pub fn sequence_local(&mut self, seq: u64, response: Response) {
        self.close_after = Some(seq);
        self.reorder.insert(seq, response);
    }

    /// Records a worker-computed response for `seq`.
    pub fn complete(&mut self, seq: u64, response: Response) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.reorder.insert(seq, response);
    }

    /// Serializes every response whose turn has come into the write
    /// buffer. With `draining` (server shutdown), the batch's last
    /// response is forced to `Connection: close`.
    ///
    /// A stream response converts the connection: its head and initial
    /// events are queued without a `Content-Length`, the state flips to
    /// [`ConnState::Streaming`], and the handler's open callback is
    /// returned for the reactor to fire (it owns the token and the op
    /// queue a [`super::stream::StreamHandle`] needs). Pipelined
    /// requests behind a stream can never be answered — the body never
    /// ends — so their buffered responses are dropped.
    pub fn emit_ready(
        &mut self,
        draining: bool,
        now: Instant,
        write_deadline: Instant,
    ) -> Option<OnStreamOpen> {
        while let Some(response) = self.reorder.remove(&self.seq_send) {
            let seq = self.seq_send;
            self.seq_send += 1;
            if response.is_stream() {
                let on_open = response.take_on_open();
                response
                    .write_stream_head(&mut self.write_buf)
                    .expect("writing to a Vec cannot fail");
                self.state = ConnState::Streaming;
                self.reorder.clear();
                self.read_buf.clear();
                return on_open;
            }
            let mut keep_alive = self.close_after != Some(seq);
            if draining && !self.busy() {
                keep_alive = false; // last response before shutdown
            }
            self.queue_response(&response, keep_alive, now, write_deadline);
        }
        None
    }

    /// Serializes a response into the write buffer and arms the write
    /// deadline. With `keep_alive == false` the connection flushes and
    /// then drains to close.
    pub fn queue_response(
        &mut self,
        response: &Response,
        keep_alive: bool,
        now: Instant,
        write_deadline: Instant,
    ) {
        response
            .write_to(&mut self.write_buf, keep_alive)
            .expect("writing to a Vec cannot fail");
        if !keep_alive {
            self.state = ConnState::FlushThenClose;
        }
        self.deadline = write_deadline.max(now);
        self.deadline_kind = DeadlineKind::Write;
    }

    /// Non-blocking flush of the write buffer. On full flush the
    /// connection either returns to parsing (keep-alive) or FINs and
    /// drains (close), with `drain_deadline` bounding the drain.
    pub fn flush(&mut self, now: Instant, drain_deadline: Instant) -> Step {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Step::Close,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Step::Close,
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        if self.state == ConnState::FlushThenClose {
            // FIN first so the peer sees the full response and EOF, then
            // read out its leftovers; closing with unread bytes queued
            // makes the kernel send RST instead.
            let _ = self.stream.shutdown(Shutdown::Write);
            self.state = ConnState::Draining;
            self.deadline = drain_deadline.max(now);
            self.deadline_kind = DeadlineKind::Read;
            if self.half_closed {
                return Step::Close; // peer already hung up; nothing to drain
            }
        }
        Step::Keep
    }

    /// Timer expiry. Returns the 408 decision: `Some(step)` when the
    /// deadline was real and acted on, `None` when it had been
    /// superseded (the reactor then reschedules the current one).
    /// `heartbeat_deadline` is the next heartbeat instant, used when a
    /// streaming connection's heartbeat timer fires.
    pub fn on_deadline(
        &mut self,
        now: Instant,
        write_deadline: Instant,
        heartbeat_deadline: Instant,
    ) -> Option<Step> {
        if now < self.deadline {
            return None; // stale wheel entry; reschedule
        }
        match self.deadline_kind {
            DeadlineKind::Parked => None,
            DeadlineKind::Heartbeat => {
                // An SSE comment line: ignored by consumers, keeps the
                // connection warm through proxies and surfaces dead
                // peers as write errors.
                self.write_buf.extend_from_slice(b":hb\n\n");
                self.deadline = heartbeat_deadline.max(now);
                Some(Step::Keep)
            }
            DeadlineKind::Write => Some(Step::Close),
            DeadlineKind::Read => {
                if self.state == ConnState::Draining {
                    return Some(Step::Close); // peer never hung up
                }
                if !self.read_buf.is_empty() && self.state == ConnState::Open && !self.busy() {
                    // Mid-request stall (slow loris, stalled body):
                    // answer 408 and close. An idle keep-alive
                    // connection just closes silently.
                    self.queue_response(
                        &Response::error(Status::RequestTimeout, "request timed out"),
                        false,
                        now,
                        write_deadline,
                    );
                    return Some(Step::Keep);
                }
                Some(Step::Close)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// A connected non-blocking socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (server, client)
    }

    fn now_plus(ms: u64) -> (Instant, Instant) {
        let now = Instant::now();
        (now, now + Duration::from_millis(ms))
    }

    #[test]
    fn parses_across_partial_reads_and_assigns_sequences() {
        let (server, mut client) = pair();
        let (now, later) = now_plus(1000);
        let mut conn = Conn::new(server, now, later);
        let mut scratch = [0u8; 4096];

        use std::io::Write as _;
        client.write_all(b"GET /x HTTP/1.1\r\nHo").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.fill_read_buf(&mut scratch), Step::Keep);
        assert!(matches!(conn.advance_parse(now, later), Parsed::None));

        client
            .write_all(b"st: a\r\n\r\nGET /y HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.fill_read_buf(&mut scratch), Step::Keep);
        let Parsed::Request { seq, request } = conn.advance_parse(now, later) else {
            panic!("expected a complete request");
        };
        assert_eq!((seq, request.path()), (0, "/x"));
        // Concurrent pipelining: the second request dispatches without
        // waiting for the first response.
        let Parsed::Request { seq, request } = conn.advance_parse(now, later) else {
            panic!("expected the pipelined request");
        };
        assert_eq!((seq, request.path()), (1, "/y"));
        assert_eq!(conn.in_flight, 2);
        assert!(matches!(conn.advance_parse(now, later), Parsed::None));
    }

    #[test]
    fn responses_emit_in_sequence_order_regardless_of_completion_order() {
        let (server, mut client) = pair();
        let (now, later) = now_plus(1000);
        let mut conn = Conn::new(server, now, later);
        let mut scratch = [0u8; 4096];
        use std::io::Write as _;
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        conn.fill_read_buf(&mut scratch);
        assert!(matches!(
            conn.advance_parse(now, later),
            Parsed::Request { seq: 0, .. }
        ));
        assert!(matches!(
            conn.advance_parse(now, later),
            Parsed::Request { seq: 1, .. }
        ));

        // The second request finishes first: nothing emits yet.
        conn.complete(1, Response::html("b"));
        conn.emit_ready(false, now, later);
        assert!(!conn.wants_write());
        // The first completes: both emit, in order.
        conn.complete(0, Response::html("a"));
        conn.emit_ready(false, now, later);
        let text = String::from_utf8(conn.write_buf.clone()).unwrap();
        let a = text.find("\r\n\r\na").expect("response a on the wire");
        let b = text.find("\r\n\r\nb").expect("response b on the wire");
        assert!(a < b, "responses out of order: {text}");
        assert!(!conn.busy());
    }

    #[test]
    fn bad_prefix_sequences_mapped_error_and_stops_parsing() {
        let (server, mut client) = pair();
        let (now, later) = now_plus(1000);
        let mut conn = Conn::new(server, now, later);
        let mut scratch = [0u8; 4096];
        use std::io::Write as _;
        client.write_all(b"NONSENSE\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        conn.fill_read_buf(&mut scratch);
        let Parsed::Rejected = conn.advance_parse(now, later) else {
            panic!("expected rejection");
        };
        assert!(matches!(conn.advance_parse(now, later), Parsed::None));
        conn.emit_ready(false, now, later);
        let text = String::from_utf8(conn.write_buf.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        assert_eq!(conn.state, ConnState::FlushThenClose);
        assert!(conn.wants_write());
    }

    #[test]
    fn deadline_mid_request_answers_408_idle_closes_silently() {
        let (server, mut client) = pair();
        let (now, later) = now_plus(10);
        let mut conn = Conn::new(server, now, later);
        let mut scratch = [0u8; 4096];

        // Idle (empty buffer): expiry closes without a response.
        let expired = now + Duration::from_millis(20);
        assert_eq!(
            conn.on_deadline(expired, expired, expired),
            Some(Step::Close)
        );

        // Partial request buffered: expiry queues a 408.
        let mut conn = Conn::new(conn.stream.try_clone().unwrap(), now, later);
        use std::io::Write as _;
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        conn.fill_read_buf(&mut scratch);
        assert!(matches!(conn.advance_parse(now, later), Parsed::None));
        assert_eq!(
            conn.on_deadline(expired, expired, expired),
            Some(Step::Keep)
        );
        let text = String::from_utf8(conn.write_buf.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 408"), "got: {text}");
        assert_eq!(conn.state, ConnState::FlushThenClose);
    }

    #[test]
    fn stale_deadline_is_reported_for_reschedule() {
        let (server, _client) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(server, now, now + Duration::from_secs(5));
        assert_eq!(conn.on_deadline(now, now, now), None);
    }
}
