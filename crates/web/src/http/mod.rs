//! A minimal HTTP/1.1 implementation on `std::net`.
//!
//! Scope: exactly what a 1996 CGI-style tool needs — `GET`/`POST`,
//! `Content-Length` bodies, keep-alive, URL-encoded forms — implemented
//! defensively (size limits, timeouts) because [`remote`](crate::remote)
//! accepts connections from other sites.

pub mod base64;

mod client;
mod request;
mod response;
mod server;
pub mod urlencoded;

pub use client::{http_delete, http_get, http_get_basic_auth, http_post, http_put, ClientError};
pub use request::{Method, ParseRequestError, Request};
pub use response::{Response, Status};
pub use server::{Server, ServerHandle};
