//! A minimal HTTP/1.1 implementation on `std::net`.
//!
//! Scope: exactly what a 1996 CGI-style tool needs — `GET`/`POST`,
//! `Content-Length` bodies, keep-alive, URL-encoded forms — implemented
//! defensively (size limits, timeouts) because [`remote`](crate::remote)
//! accepts connections from other sites.
//!
//! Serving runs on a readiness reactor ([`server`]): a single epoll
//! event loop multiplexes every connection (keep-alive, pipelining,
//! deadlines) while a small worker pool evaluates sheets. The syscall
//! surface is vendored in [`sys`] — no async runtime crates.

pub mod base64;

mod client;
mod conn;
mod reactor;
mod request;
mod response;
mod server;
mod stream;
mod sys;
pub mod urlencoded;
mod wheel;

pub use client::{
    http_delete, http_get, http_get_basic_auth, http_post, http_put, read_response, ClientError,
};
pub use request::{Method, ParseRequestError, Request};
pub use response::{Response, Status};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stream::StreamHandle;

/// Canonical `Train-Case` for a header name stored lowercased:
/// `content-length` → `Content-Length`, `etag` → `Etag`. Both the
/// request builder and the response serializer emit this casing, so a
/// strict peer sees conventional headers while our own lookups stay
/// case-insensitive.
pub(crate) fn canonical_header_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut upper_next = true;
    for c in name.chars() {
        if c == '-' {
            out.push('-');
            upper_next = true;
        } else if upper_next {
            out.extend(c.to_uppercase());
            upper_next = false;
        } else {
            out.extend(c.to_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod header_case_tests {
    use super::canonical_header_case;

    #[test]
    fn train_cases_each_dash_segment() {
        assert_eq!(canonical_header_case("content-length"), "Content-Length");
        assert_eq!(canonical_header_case("etag"), "Etag");
        assert_eq!(canonical_header_case("x-powered-by"), "X-Powered-By");
        assert_eq!(canonical_header_case("CONNECTION"), "Connection");
        assert_eq!(canonical_header_case(""), "");
    }
}
