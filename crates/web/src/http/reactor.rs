//! The readiness event loop: one thread multiplexing every connection.
//!
//! The blocking server pinned one worker thread per in-flight
//! connection, so its ceiling was the pool size regardless of how little
//! each request cost. Here a single reactor thread owns *all* sockets —
//! non-blocking accept, incremental parse ([`Conn`]), buffered write —
//! and the worker pool touches only complete requests: the reactor sends
//! a [`Job`] down an mpsc channel, a worker evaluates the handler, and
//! the finished [`Response`] comes back through [`Completions`] plus one
//! byte on a wake pipe that pops `epoll_wait`. Thousands of keep-alive
//! connections cost file descriptors, not threads.
//!
//! Deadlines ride a [`TimerWheel`]: each loop iteration advances the
//! wheel to now and expires stalled peers (408 mid-request, silent close
//! when idle, hard close on a stuck write). Load shedding moved from the
//! accept queue to two explicit gates — a connection cap at accept and a
//! per-request gate when dispatched-but-unfinished jobs reach
//! `workers + queue_capacity`, both answering 503.
//!
//! Connection slots are generation-tagged: the epoll token is
//! `generation << 32 | index`, so a completion or timer for a connection
//! that died (and whose slot was reused) misses the lookup instead of
//! hitting the wrong peer.

use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use powerplay_telemetry::{Counter, Gauge};

use super::conn::{Conn, ConnState, DeadlineKind, Parsed, Step};
use super::request::Request;
use super::response::{Response, Status};
use super::server::{ClientFilter, ServerConfig};
use super::stream::{OnStreamOpen, StreamHandle, StreamOp, StreamOps};
use super::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use super::wheel::TimerWheel;

/// Reserved tokens: real connections use `gen << 32 | index`, which
/// reaches these values only after 2^32 generations on a 2^32-sized slab.
const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;

const EVENT_CAPACITY: usize = 1024;
const READ_SCRATCH: usize = 64 * 1024;

/// Streaming backpressure cap: bytes a subscriber may have queued but
/// unwritten before the reactor drops it. A consumer that stops reading
/// costs one bounded buffer and then its connection — never the other
/// subscribers' latency.
pub(crate) const STREAM_BUF_LIMIT: usize = 256 * 1024;

/// Wheel geometry: 25ms ticks over 512 slots span 12.8s — enough for the
/// default 10s socket deadlines without clamping; longer deadlines park
/// in the far slot and hop (see [`TimerWheel`]).
const TICK: Duration = Duration::from_millis(25);
const WHEEL_SLOTS: usize = 512;

/// A complete request handed to the worker pool. `seq` is the
/// connection-local sequence number the response must be emitted under.
pub(crate) struct Job {
    pub token: u64,
    pub seq: u64,
    pub request: Request,
}

/// The worker → reactor return path: finished responses plus a wake
/// byte so `epoll_wait` returns. The wake byte is deduplicated with an
/// atomic flag — under pipelined load many completions land between two
/// reactor wakeups, and one byte (one syscall) covers all of them.
pub(crate) struct Completions {
    done: Mutex<Vec<(u64, u64, Response)>>,
    signaled: AtomicBool,
    wake: File,
}

impl Completions {
    pub fn new(wake: File) -> Completions {
        Completions {
            done: Mutex::new(Vec::new()),
            signaled: AtomicBool::new(false),
            wake,
        }
    }

    pub fn push(&self, token: u64, seq: u64, response: Response) {
        self.done
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((token, seq, response));
        if !self.signaled.swap(true, Ordering::SeqCst) {
            let _ = (&self.wake).write(&[1u8]);
        }
    }

    fn drain(&self) -> Vec<(u64, u64, Response)> {
        // Clear the signal *before* taking the list: a worker pushing
        // right after the take sees the cleared flag and re-wakes; at
        // worst the reactor gets one spurious (empty) extra wakeup.
        self.signaled.store(false, Ordering::SeqCst);
        std::mem::take(&mut *self.done.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Transport metrics. `powerplay_server_*` series carry over from the
/// blocking server (dashboards keep working); `powerplay_reactor_*` are
/// new visibility into the event loop itself.
struct Metrics {
    connections_total: Counter,
    rejected_total: Counter,
    queue_depth: Gauge,
    wakeups_total: Counter,
    ready_events_total: Counter,
    open_connections: Gauge,
    events_dropped_total: Counter,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = powerplay_telemetry::global();
        Metrics {
            connections_total: g.counter(
                "powerplay_server_connections_total",
                "Connections accepted (including ones later shed with 503)",
            ),
            rejected_total: g.counter(
                "powerplay_server_rejected_total",
                "Requests answered 503 by load shedding (connection cap or full worker queue)",
            ),
            queue_depth: g.gauge(
                "powerplay_server_queue_depth",
                "Requests dispatched to the worker pool and not yet answered",
            ),
            wakeups_total: g.counter(
                "powerplay_reactor_wakeups_total",
                "Times epoll_wait returned to the reactor loop",
            ),
            ready_events_total: g.counter(
                "powerplay_reactor_ready_events_total",
                "Readiness events delivered across all wakeups",
            ),
            open_connections: g.gauge(
                "powerplay_reactor_open_connections",
                "Connections currently registered with the reactor",
            ),
            events_dropped_total: g.counter(
                "powerplay_events_dropped_total",
                "Event-stream subscribers dropped for exceeding the backpressure cap",
            ),
        }
    })
}

struct Entry {
    gen: u32,
    conn: Option<Conn>,
    /// The deadline instant currently planted in the wheel, if any —
    /// dedupes scheduling so each connection keeps at most one live
    /// wheel entry per revolution.
    scheduled: Option<Instant>,
}

pub(crate) struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    wake_rx: File,
    filter: Option<Arc<ClientFilter>>,
    job_tx: Sender<Job>,
    completions: Arc<Completions>,
    streams: Arc<StreamOps>,
    running: Arc<AtomicBool>,
    config: ServerConfig,
    entries: Vec<Entry>,
    free: Vec<usize>,
    open: usize,
    /// Requests dispatched to workers and not yet completed; the shed
    /// gate compares this against `workers + queue_capacity`.
    pending_jobs: usize,
    wheel: TimerWheel,
    shutdown_deadline: Option<Instant>,
}

/// Runs the event loop until shutdown. Consumes the listener.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    listener: TcpListener,
    filter: Option<Arc<ClientFilter>>,
    job_tx: Sender<Job>,
    completions: Arc<Completions>,
    streams: Arc<StreamOps>,
    wake_rx: File,
    running: Arc<AtomicBool>,
    config: ServerConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    // The wake pipe is already O_NONBLOCK from `sys::wake_pipe`.
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
    epoll.add(wake_rx.as_raw_fd(), WAKE_TOKEN, true, false)?;
    let mut reactor = Reactor {
        epoll,
        listener,
        wake_rx,
        filter,
        job_tx,
        completions,
        streams,
        running,
        config,
        entries: Vec::new(),
        free: Vec::new(),
        open: 0,
        pending_jobs: 0,
        wheel: TimerWheel::new(TICK, WHEEL_SLOTS, Instant::now()),
        shutdown_deadline: None,
    };
    reactor.event_loop();
    Ok(())
}

impl Reactor {
    fn event_loop(&mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; EVENT_CAPACITY];
        let mut scratch = vec![0u8; READ_SCRATCH];
        loop {
            let now = Instant::now();
            if self.check_shutdown(now) {
                break;
            }
            // Sleep until the next timer tick, or indefinitely when no
            // deadline is armed; draining additionally bounds the sleep
            // by the grace deadline so a stuck handler (whose completion
            // will never wake us) cannot hang shutdown.
            let mut timeout = self.wheel.poll_timeout(now);
            if let Some(deadline) = self.shutdown_deadline {
                let bound = deadline.saturating_duration_since(now);
                timeout = Some(timeout.map_or(bound, |t| t.min(bound)));
            }
            let Ok(n) = self.epoll.wait(&mut events, timeout) else {
                break;
            };
            let m = metrics();
            m.wakeups_total.inc();
            m.ready_events_total.add(n as u64);
            for event in &events[..n] {
                let (bits, token) = (event.events, event.data);
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.drain_wake(),
                    token => self.conn_ready(token, bits, &mut scratch),
                }
            }
            self.collect_completions();
            self.apply_stream_ops();
            self.fire_timers(Instant::now());
        }
        // Force-close whatever is left (grace expired or fatal error) so
        // the open-connections gauge lands back at zero.
        for idx in 0..self.entries.len() {
            self.close(idx);
        }
    }

    /// True while shutdown has been requested (drain mode).
    fn draining(&self) -> bool {
        self.shutdown_deadline.is_some() || !self.running.load(Ordering::SeqCst)
    }

    /// Enters and monitors drain mode; returns true when the loop should
    /// exit (drained, or grace expired).
    fn check_shutdown(&mut self, now: Instant) -> bool {
        if self.running.load(Ordering::SeqCst) {
            return false;
        }
        if self.shutdown_deadline.is_none() {
            self.shutdown_deadline = Some(now + self.config.shutdown_grace);
            let _ = self.epoll.delete(self.listener.as_raw_fd());
            // Idle keep-alive connections close immediately; ones with a
            // request in flight (or a response still flushing) get the
            // grace period to finish. Event streams drain with a final
            // `bye` event (best-effort flush) and close — an SSE client
            // never hangs up on its own, so waiting on it would just
            // burn the whole grace.
            for idx in 0..self.entries.len() {
                let Some(conn) = self.entries[idx].conn.as_mut() else {
                    continue;
                };
                let close = if conn.is_streaming() {
                    conn.write_buf
                        .extend_from_slice(b"event: bye\ndata: {}\n\n");
                    let _ = conn.flush(now, now + self.config.read_timeout);
                    true
                } else {
                    conn.state == ConnState::Open
                        && !conn.busy()
                        && !conn.wants_write()
                        && conn.read_buf.is_empty()
                };
                if close {
                    self.close(idx);
                }
            }
        }
        self.open == 0 || self.shutdown_deadline.is_some_and(|d| now >= d)
    }

    fn accept_ready(&mut self) {
        if self.draining() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if let Some(filter) = &self.filter {
                        if !filter(peer) {
                            continue; // drop the connection
                        }
                    }
                    metrics().connections_total.inc();
                    let shed = self.open >= self.config.max_connections.max(1);
                    self.register(stream, Instant::now(), shed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Registers an accepted socket under a fresh generation-tagged
    /// token. `shed` connections get an immediate 503 and never reach
    /// the parser — the connection-cap gate.
    fn register(&mut self, stream: TcpStream, now: Instant, shed: bool) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let mut conn = Conn::new(stream, now, now + self.config.read_timeout);
        if shed {
            metrics().rejected_total.inc();
            conn.queue_response(
                &Response::error(Status::ServiceUnavailable, "server busy; try again"),
                false,
                now,
                now + self.config.write_timeout,
            );
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.entries.push(Entry {
                gen: 0,
                conn: None,
                scheduled: None,
            });
            self.entries.len() - 1
        });
        let token = pack(idx, self.entries[idx].gen);
        let (r, w) = (conn.wants_read(), conn.wants_write());
        conn.registered_read = r;
        conn.registered_write = w;
        if self
            .epoll
            .add(conn.stream.as_raw_fd(), token, r, w)
            .is_err()
        {
            self.free.push(idx);
            return; // drop the connection
        }
        self.entries[idx].conn = Some(conn);
        self.open += 1;
        metrics().open_connections.add(1);
        self.finish_step(idx);
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    fn conn_ready(&mut self, token: u64, bits: u32, scratch: &mut [u8]) {
        let Some(idx) = self.lookup(token) else {
            return; // the connection died earlier in this batch
        };
        let now = Instant::now();
        let errored = bits & (EPOLLERR | EPOLLHUP) != 0;
        let writable = errored || bits & EPOLLOUT != 0;
        let readable = errored || bits & (EPOLLIN | EPOLLRDHUP) != 0;
        let drain_deadline = now + self.config.read_timeout;
        let conn = self.entries[idx].conn.as_mut().expect("looked up");
        // Write before read: flushing frees buffer space and may
        // transition the connection's state (keep-alive vs drain).
        if writable && conn.wants_write() && conn.flush(now, drain_deadline) == Step::Close {
            self.close(idx);
            return;
        }
        let conn = self.entries[idx].conn.as_mut().expect("looked up");
        if readable && conn.fill_read_buf(scratch) == Step::Close {
            self.close(idx);
            return;
        }
        self.service(idx, now);
    }

    /// Parse-and-dispatch the whole pipelined batch → emit every
    /// response whose turn has come → one optimistic flush → reconcile.
    /// The common tail of every connection interaction.
    fn service(&mut self, idx: usize, now: Instant) {
        let draining = self.draining();
        let read_deadline = now + self.config.read_timeout;
        let write_deadline = now + self.config.write_timeout;
        // Dispatch every complete request at once (up to the per-conn
        // in-flight cap): pipelined batches spread across the worker
        // pool instead of trickling through one at a time. Shutdown
        // stops parsing — buffered extras are dropped with the close.
        if !draining {
            loop {
                let conn = self.entries[idx].conn.as_mut().expect("looked up");
                match conn.advance_parse(now, read_deadline) {
                    Parsed::Request { seq, request } => {
                        if !self.dispatch(idx, seq, *request) {
                            break; // shed or pool gone; parsing stopped
                        }
                    }
                    Parsed::Rejected | Parsed::None => break,
                }
            }
        }
        let Some(conn) = self.entries[idx].conn.as_mut() else {
            return;
        };
        if let Some(on_open) = conn.emit_ready(draining, now, write_deadline) {
            // The response converted this connection into an event
            // stream; register it as a long-lived writer and hand the
            // handler its publish-side handle.
            self.open_stream(idx, on_open, now);
        }
        let Some(conn) = self.entries[idx].conn.as_mut() else {
            return;
        };
        // Optimistic flush: sockets are almost always writable, so
        // skipping the epoll round-trip for the common case is the
        // difference between one and two syscall batches per response —
        // and the whole emitted batch goes out in one write.
        if conn.wants_write() && conn.flush(now, read_deadline) == Step::Close {
            self.close(idx);
            return;
        }
        // With the wire drained, re-arm the deadline that matches what
        // the connection is actually waiting on: parked while requests
        // compute, the idle/read deadline otherwise.
        let Some(conn) = self.entries[idx].conn.as_mut() else {
            return;
        };
        if conn.state == ConnState::Open && !conn.wants_write() {
            if conn.busy() {
                conn.deadline_kind = DeadlineKind::Parked;
            } else if conn.deadline_kind != DeadlineKind::Read {
                conn.deadline_kind = DeadlineKind::Read;
                conn.deadline = read_deadline;
            }
        }
        self.finish_step(idx);
    }

    /// Hands a parsed request to the worker pool, or sheds it with 503
    /// when `workers + queue_capacity` requests are already in flight —
    /// the reactor port of the blocking server's bounded accept queue.
    /// Returns false when the request was answered locally (parsing on
    /// this connection has stopped).
    fn dispatch(&mut self, idx: usize, seq: u64, request: Request) -> bool {
        let shed_at = self.config.workers.max(1) + self.config.queue_capacity;
        let token = pack(idx, self.entries[idx].gen);
        if self.pending_jobs >= shed_at {
            metrics().rejected_total.inc();
            let conn = self.entries[idx].conn.as_mut().expect("looked up");
            conn.in_flight -= 1;
            // Sequenced behind responses still computing, so the 503
            // lands in pipeline order like any other response.
            conn.sequence_local(
                seq,
                Response::error(Status::ServiceUnavailable, "server busy; try again"),
            );
            false
        } else if self
            .job_tx
            .send(Job {
                token,
                seq,
                request,
            })
            .is_ok()
        {
            self.pending_jobs += 1;
            metrics().queue_depth.add(1);
            true
        } else {
            // Worker pool gone (only plausible mid-shutdown).
            let conn = self.entries[idx].conn.as_mut().expect("looked up");
            conn.in_flight -= 1;
            conn.sequence_local(
                seq,
                Response::error(Status::InternalServerError, "worker pool unavailable"),
            );
            false
        }
    }

    /// Files finished responses into their connections' reorder buffers,
    /// then services each touched connection once — responses that are
    /// next in sequence go out, and freed in-flight slots pull more
    /// pipelined requests off the read buffer.
    fn collect_completions(&mut self) {
        let done = self.completions.drain();
        if done.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut touched: Vec<usize> = Vec::new();
        for (token, seq, response) in done {
            self.pending_jobs -= 1;
            metrics().queue_depth.sub(1);
            let Some(idx) = self.lookup(token) else {
                continue; // connection died while the worker ran
            };
            let conn = self.entries[idx].conn.as_mut().expect("looked up");
            conn.complete(seq, response);
            if !touched.contains(&idx) {
                touched.push(idx);
            }
        }
        // One emit + flush per connection per wakeup, however many of
        // its responses completed since the last one.
        for idx in touched {
            if self.entries[idx].conn.is_some() {
                self.service(idx, now);
            }
        }
    }

    /// Arms the heartbeat timer for a freshly-converted stream and fires
    /// the handler's open callback with a [`StreamHandle`] — the
    /// generation-tagged token plus the shared op queue and closed flag.
    fn open_stream(&mut self, idx: usize, on_open: OnStreamOpen, now: Instant) {
        let token = pack(idx, self.entries[idx].gen);
        let closed = Arc::new(AtomicBool::new(false));
        let conn = self.entries[idx].conn.as_mut().expect("looked up");
        conn.stream_closed = Some(Arc::clone(&closed));
        conn.deadline = now + self.config.heartbeat_interval;
        conn.deadline_kind = DeadlineKind::Heartbeat;
        on_open(StreamHandle {
            token,
            ops: Arc::clone(&self.streams),
            closed,
        });
    }

    /// Applies queued publisher ops to their streaming connections:
    /// appends event bytes (dropping subscribers past the backpressure
    /// cap), handles close requests, then flushes each touched
    /// connection once.
    fn apply_stream_ops(&mut self) {
        let ops = self.streams.drain();
        if ops.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut touched: Vec<usize> = Vec::new();
        for (token, op) in ops {
            let Some(idx) = self.lookup(token) else {
                continue; // stream died; publishers see the closed flag
            };
            let conn = self.entries[idx].conn.as_mut().expect("looked up");
            if !conn.is_streaming() {
                continue;
            }
            match op {
                StreamOp::Data(bytes) => {
                    if conn.stream_backlog() + bytes.len() > STREAM_BUF_LIMIT {
                        // A consumer that stopped reading: drop it rather
                        // than buffer without bound or stall the others.
                        metrics().events_dropped_total.inc();
                        self.close(idx);
                        touched.retain(|&t| t != idx);
                        continue;
                    }
                    conn.write_buf.extend_from_slice(&bytes);
                }
                StreamOp::Close => {
                    conn.state = ConnState::FlushThenClose;
                }
            }
            if !touched.contains(&idx) {
                touched.push(idx);
            }
        }
        for idx in touched {
            let Some(conn) = self.entries[idx].conn.as_mut() else {
                continue;
            };
            if conn.wants_write() && conn.flush(now, now + self.config.read_timeout) == Step::Close
            {
                self.close(idx);
                continue;
            }
            self.finish_step(idx);
        }
    }

    fn fire_timers(&mut self, now: Instant) {
        let mut due = Vec::new();
        self.wheel.advance(now, |token| due.push(token));
        for token in due {
            let Some(idx) = self.lookup(token) else {
                continue; // lazily-cancelled entry for a dead connection
            };
            self.entries[idx].scheduled = None;
            let conn = self.entries[idx].conn.as_mut().expect("looked up");
            match conn.on_deadline(
                now,
                now + self.config.write_timeout,
                now + self.config.heartbeat_interval,
            ) {
                // Stale or parked: finish_step re-plants the live
                // deadline (clamped far deadlines hop slots this way).
                None => {}
                Some(Step::Close) => {
                    self.close(idx);
                    continue;
                }
                // A 408 was queued; push it out now if possible.
                Some(Step::Keep)
                    if conn.flush(now, now + self.config.read_timeout) == Step::Close =>
                {
                    self.close(idx);
                    continue;
                }
                Some(Step::Keep) => {}
            }
            self.finish_step(idx);
        }
    }

    /// Reconciles a connection's epoll interest and wheel entry with
    /// what it now wants, and reaps connections that have served out.
    fn finish_step(&mut self, idx: usize) {
        let draining = self.draining();
        let mut close = false;
        {
            let Reactor {
                epoll,
                entries,
                wheel,
                ..
            } = self;
            let entry = &mut entries[idx];
            let Some(conn) = entry.conn.as_mut() else {
                return;
            };
            let token = pack(idx, entry.gen);
            let served_out = conn.state == ConnState::Open
                && !conn.busy()
                && !conn.wants_write()
                && conn.read_buf.is_empty();
            if served_out && (conn.half_closed || draining) {
                close = true;
            } else {
                let (r, w) = (conn.wants_read(), conn.wants_write());
                if (r, w) != (conn.registered_read, conn.registered_write) {
                    if epoll.modify(conn.stream.as_raw_fd(), token, r, w).is_ok() {
                        conn.registered_read = r;
                        conn.registered_write = w;
                    } else {
                        close = true;
                    }
                }
                if !close && conn.deadline_kind != DeadlineKind::Parked {
                    // Plant at most one wheel entry per connection: only
                    // when none is live or the deadline moved earlier.
                    // Later deadlines are found by the stale-check when
                    // the old entry fires.
                    let due = conn.deadline;
                    if entry.scheduled.is_none_or(|s| due < s) {
                        wheel.schedule(token, due);
                        entry.scheduled = Some(due);
                    }
                }
            }
        }
        if close {
            self.close(idx);
        }
    }

    fn close(&mut self, idx: usize) {
        let entry = &mut self.entries[idx];
        let Some(conn) = entry.conn.take() else {
            return;
        };
        if let Some(flag) = &conn.stream_closed {
            // Publishers learn of the teardown on their next send.
            flag.store(true, Ordering::SeqCst);
        }
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        entry.gen = entry.gen.wrapping_add(1);
        entry.scheduled = None;
        self.free.push(idx);
        self.open -= 1;
        metrics().open_connections.sub(1);
        // A completion still in flight for this connection misses the
        // generation check and is dropped; pending_jobs is decremented
        // when it arrives, not here.
    }

    fn lookup(&self, token: u64) -> Option<usize> {
        let (idx, gen) = unpack(token);
        let entry = self.entries.get(idx)?;
        (entry.gen == gen && entry.conn.is_some()).then_some(idx)
    }
}

fn pack(idx: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | idx as u64
}

fn unpack(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}
