//! A hashed timer wheel for connection deadlines.
//!
//! The blocking server charged each socket an `SO_RCVTIMEO`/`SO_SNDTIMEO`;
//! on the reactor a stalled peer must instead be noticed by the event
//! loop itself. The wheel holds every connection's next deadline in a
//! ring of coarse slots (one tick each); each loop iteration advances
//! the ring to *now* and hands due tokens back to the reactor.
//!
//! Entries are lazily cancelled: the reactor re-checks the connection's
//! actual deadline when a token fires and reschedules it if it moved
//! (a keep-alive connection that saw traffic) or the slot was reused.
//! Deadlines beyond the ring's span park in the furthest slot and hop
//! forward when they fire — firing *late by up to one tick* is the only
//! imprecision, which is fine for multi-second socket timeouts.

use std::time::{Duration, Instant};

pub(crate) struct TimerWheel {
    slots: Vec<Vec<u64>>,
    tick: Duration,
    /// Index of the slot covering `base`.
    cursor: usize,
    /// Start of the current tick; advances by whole ticks only.
    base: Instant,
    /// Tokens currently planted in the ring; when zero the event loop
    /// may sleep indefinitely instead of waking every tick.
    live: usize,
}

impl TimerWheel {
    pub fn new(tick: Duration, slots: usize, now: Instant) -> TimerWheel {
        assert!(slots >= 2 && tick > Duration::ZERO);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
            base: now,
            live: 0,
        }
    }

    /// Schedules `token` to fire at or shortly after `deadline`.
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        let delta = deadline.saturating_duration_since(self.base);
        // Round up so a deadline never fires early, clamp into the ring.
        let ticks = delta
            .as_nanos()
            .div_ceil(self.tick.as_nanos().max(1))
            .min(self.slots.len() as u128 - 1) as usize;
        // `ticks == 0` (already due) still waits one tick: the reactor
        // checks deadlines against `Instant::now` when tokens fire.
        let slot = (self.cursor + ticks.max(1)) % self.slots.len();
        self.slots[slot].push(token);
        self.live += 1;
    }

    /// How long `epoll_wait` may sleep before the next tick boundary,
    /// or `None` when nothing is scheduled (sleep until I/O).
    pub fn poll_timeout(&self, now: Instant) -> Option<Duration> {
        if self.live == 0 {
            return None;
        }
        Some((self.base + self.tick).saturating_duration_since(now))
    }

    /// Advances the ring to `now`, handing every token in passed slots
    /// to `fire`.
    pub fn advance(&mut self, now: Instant, mut fire: impl FnMut(u64)) {
        while now.saturating_duration_since(self.base) >= self.tick {
            self.base += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            for token in std::mem::take(&mut self.slots[self.cursor]) {
                self.live -= 1;
                fire(token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel, now: Instant) -> Vec<u64> {
        let mut fired = Vec::new();
        wheel.advance(now, |t| fired.push(t));
        fired
    }

    #[test]
    fn fires_at_or_after_the_deadline_never_before() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(tick, 16, t0);
        wheel.schedule(1, t0 + Duration::from_millis(25));

        assert!(drain(&mut wheel, t0 + Duration::from_millis(20)).is_empty());
        assert_eq!(drain(&mut wheel, t0 + Duration::from_millis(30)), vec![1]);
    }

    #[test]
    fn deadlines_beyond_the_span_clamp_to_the_furthest_slot() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(tick, 4, t0);
        wheel.schedule(9, t0 + Duration::from_secs(60));
        // Fires (early) once the clamped slot comes around; the reactor
        // re-checks the real deadline and reschedules.
        let fired = drain(&mut wheel, t0 + Duration::from_millis(40));
        assert_eq!(fired, vec![9]);
    }

    #[test]
    fn many_tokens_in_one_slot_all_fire() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, t0);
        for token in 0..5 {
            wheel.schedule(token, t0 + Duration::from_millis(15));
        }
        let mut fired = drain(&mut wheel, t0 + Duration::from_millis(20));
        fired.sort_unstable();
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn poll_timeout_tracks_the_next_tick() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(50);
        let mut wheel = TimerWheel::new(tick, 8, t0);
        // Nothing scheduled: the event loop may sleep until I/O.
        assert_eq!(wheel.poll_timeout(t0), None);
        wheel.schedule(1, t0 + tick);
        assert!(wheel.poll_timeout(t0).unwrap() <= tick);
        assert_eq!(wheel.poll_timeout(t0 + tick * 2), Some(Duration::ZERO));
        // Once the token fires the wheel goes quiet again.
        wheel.advance(t0 + tick * 2, |_| {});
        assert_eq!(wheel.poll_timeout(t0 + tick * 2), None);
    }
}
