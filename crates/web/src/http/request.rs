//! HTTP request parsing.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::BufRead;

use super::urlencoded;

/// Maximum accepted header section size.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted body size (designs and libraries are small).
const MAX_BODY: usize = 4 * 1024 * 1024;

/// Request methods PowerPlay serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `PUT` (v1 design resources)
    Put,
    /// `DELETE` (v1 design resources)
    Delete,
}

impl Method {
    /// Parses the method token.
    pub fn from_token(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        })
    }
}

/// Error produced while reading a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseRequestError {
    /// The connection closed before a complete request arrived.
    ConnectionClosed,
    /// The request line or headers were malformed.
    Malformed(String),
    /// The method is not supported.
    UnsupportedMethod(String),
    /// The request line or header section exceeded the size limit
    /// (answered with 431 Request Header Fields Too Large).
    HeadTooLarge,
    /// The declared body exceeded the size limit (answered with
    /// 413 Payload Too Large).
    BodyTooLarge,
    /// An I/O error occurred.
    Io(String),
}

impl fmt::Display for ParseRequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRequestError::ConnectionClosed => write!(f, "connection closed"),
            ParseRequestError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseRequestError::UnsupportedMethod(m) => write!(f, "unsupported method `{m}`"),
            ParseRequestError::HeadTooLarge => write!(f, "request header section too large"),
            ParseRequestError::BodyTooLarge => write!(f, "request body too large"),
            ParseRequestError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for ParseRequestError {}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    method: Method,
    /// Decoded path, e.g. `/element`.
    path: String,
    /// Raw (undecoded) query string.
    query: String,
    headers: BTreeMap<String, String>,
    body: Vec<u8>,
}

impl Request {
    /// Builds a request in memory (used by the client and tests).
    pub fn new(method: Method, path_and_query: &str) -> Request {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_owned(), q.to_owned()),
            None => (path_and_query.to_owned(), String::new()),
        };
        Request {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// The request method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The decoded path component.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The raw query string.
    pub fn query(&self) -> &str {
        &self.query
    }

    /// A header value, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The request body.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Query parameters, decoded, in order.
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        urlencoded::parse_pairs(&self.query)
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query_pairs()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Form fields from an `application/x-www-form-urlencoded` body.
    pub fn form_pairs(&self) -> Vec<(String, String)> {
        urlencoded::parse_pairs(&String::from_utf8_lossy(&self.body))
    }

    /// First form field with the given name.
    pub fn form_param(&self, name: &str) -> Option<String> {
        self.form_pairs()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Whether the client asked to keep the connection open.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => !v.eq_ignore_ascii_case("close"),
            None => true, // HTTP/1.1 default
        }
    }

    /// Reads one request from a buffered stream, blocking until it is
    /// complete (the client path; the server's readiness reactor uses
    /// the resumable [`Self::parse_prefix`] instead).
    ///
    /// # Errors
    ///
    /// Returns [`ParseRequestError`] on malformed input, size-limit
    /// violations, unsupported methods, or I/O failure.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Request, ParseRequestError> {
        let request_line = read_line(reader)?;
        if request_line.is_empty() {
            return Err(ParseRequestError::ConnectionClosed);
        }
        let (method, target) = parse_request_line(&request_line)?;
        let target = target.to_owned();

        let mut headers = BTreeMap::new();
        let mut head_size = request_line.len();
        loop {
            let line = read_line(reader)?;
            head_size += line.len();
            if head_size > MAX_HEAD {
                return Err(ParseRequestError::HeadTooLarge);
            }
            if line.is_empty() {
                break;
            }
            let (name, value) = parse_header_line(&line)?;
            headers.insert(name, value);
        }

        let body = match declared_body_len(&headers)? {
            0 => Vec::new(),
            len => {
                let mut body = vec![0u8; len];
                reader
                    .read_exact(&mut body)
                    .map_err(|e| ParseRequestError::Io(e.to_string()))?;
                body
            }
        };
        Ok(Self::assemble(method, &target, headers, body))
    }

    /// Attempts to parse one complete request from the front of `buf`
    /// without consuming anything — the resumable entry point for the
    /// readiness reactor, which accumulates bytes as the socket delivers
    /// them and re-polls after every read.
    ///
    /// Returns `Ok(None)` while the request is still incomplete, or
    /// `Ok(Some((request, consumed)))` once `buf[..consumed]` holds a
    /// whole request (pipelined successors may follow at `consumed`).
    /// Leading CRLFs are skipped, per RFC 9112's robustness note.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRequestError`] as soon as the prefix is known to
    /// be unservable: malformed head, unsupported method, or a head or
    /// declared body over the size limits — even if more bytes are still
    /// in flight.
    pub fn parse_prefix(buf: &[u8]) -> Result<Option<(Request, usize)>, ParseRequestError> {
        let skipped = buf
            .iter()
            .take_while(|&&b| b == b'\r' || b == b'\n')
            .count();
        let buf = &buf[skipped..];
        let Some((head_len, after_head)) = find_head_end(buf) else {
            if buf.len() > MAX_HEAD {
                return Err(ParseRequestError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD {
            return Err(ParseRequestError::HeadTooLarge);
        }
        let head = std::str::from_utf8(&buf[..head_len])
            .map_err(|_| ParseRequestError::Malformed("non-UTF-8 header section".into()))?;
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let request_line = lines
            .next()
            .ok_or_else(|| ParseRequestError::Malformed("empty request line".into()))?;
        let (method, target) = parse_request_line(request_line)?;
        let mut headers = BTreeMap::new();
        for line in lines {
            let (name, value) = parse_header_line(line)?;
            headers.insert(name, value);
        }

        let body_len = declared_body_len(&headers)?;
        let total = after_head + body_len;
        if buf.len() < total {
            return Ok(None); // body still arriving
        }
        let body = buf[after_head..total].to_vec();
        let request = Self::assemble(method, target, headers, body);
        Ok(Some((request, skipped + total)))
    }

    fn assemble(
        method: Method,
        target: &str,
        headers: BTreeMap<String, String>,
        body: Vec<u8>,
    ) -> Request {
        let (raw_path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q.to_owned()),
            None => (target, String::new()),
        };
        Request {
            method,
            path: urlencoded::decode(raw_path),
            query,
            headers,
            body,
        }
    }

    /// Sets a header (names are case-insensitive), for tests and
    /// clients building requests programmatically.
    pub fn set_header(&mut self, name: &str, value: &str) {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_owned());
    }

    /// Sets the body and its `Content-Type`.
    pub fn set_body(&mut self, body: Vec<u8>, content_type: &str) {
        self.headers
            .insert("content-type".into(), content_type.to_owned());
        self.body = body;
    }

    /// Serializes the request for sending (client side). Header names
    /// go out in canonical `Train-Case` regardless of how they were set;
    /// the parser on the far side is case-insensitive either way.
    pub(crate) fn to_bytes(&self, host: &str, keep_alive: bool) -> Vec<u8> {
        let mut target = self.path.clone();
        if !self.query.is_empty() {
            target.push('?');
            target.push_str(&self.query);
        }
        let mut out = format!("{} {} HTTP/1.1\r\nHost: {host}\r\n", self.method, target);
        for (name, value) in &self.headers {
            out.push_str(&format!(
                "{}: {value}\r\n",
                super::canonical_header_case(name)
            ));
        }
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        out.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

/// Parses `METHOD target HTTP/1.x` into its method and target.
fn parse_request_line(line: &str) -> Result<(Method, &str), ParseRequestError> {
    let mut parts = line.split_whitespace();
    let method_token = parts
        .next()
        .ok_or_else(|| ParseRequestError::Malformed("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseRequestError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseRequestError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseRequestError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let method = Method::from_token(method_token)
        .ok_or_else(|| ParseRequestError::UnsupportedMethod(method_token.to_owned()))?;
    Ok((method, target))
}

/// Parses `Name: value` into a lowercased name and trimmed value, so
/// lookups through [`Request::header`] are case-insensitive no matter
/// what casing the peer sent.
fn parse_header_line(line: &str) -> Result<(String, String), ParseRequestError> {
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| ParseRequestError::Malformed(format!("bad header `{line}`")))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
}

/// The body length a header section declares, bounded by [`MAX_BODY`].
fn declared_body_len(headers: &BTreeMap<String, String>) -> Result<usize, ParseRequestError> {
    match headers.get("content-length") {
        None => Ok(0),
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| ParseRequestError::Malformed("bad content-length".into()))?;
            if len > MAX_BODY {
                return Err(ParseRequestError::BodyTooLarge);
            }
            Ok(len)
        }
    }
}

/// Finds the end of the header section: the first line break followed
/// immediately by another (accepting bare-`\n` line endings). Returns
/// `(head_len, bytes_consumed_through_terminator)`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf.len() > i + 1 && buf[i + 1] == b'\n' {
                return Some((i, i + 2));
            }
            if buf.len() > i + 2 && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some((i, i + 3));
            }
        }
        i += 1;
    }
    None
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<String, ParseRequestError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| ParseRequestError::Io(e.to_string()))?;
    if n == 0 {
        return Ok(String::new());
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    if line.len() > MAX_HEAD {
        return Err(ParseRequestError::HeadTooLarge);
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseRequestError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /element?name=ucb%2Fmultiplier&user=alice HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
        assert_eq!(req.method(), Method::Get);
        assert_eq!(req.path(), "/element");
        assert_eq!(req.query_param("name").as_deref(), Some("ucb/multiplier"));
        assert_eq!(req.query_param("user").as_deref(), Some("alice"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body().is_empty());
    }

    #[test]
    fn parses_post_with_form_body() {
        let body = "bw_a=8&bw_b=16&formula=f+%2F+16";
        let raw = format!(
            "POST /eval HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse(&raw).unwrap();
        assert_eq!(req.method(), Method::Post);
        assert_eq!(req.form_param("bw_a").as_deref(), Some("8"));
        assert_eq!(req.form_param("formula").as_deref(), Some("f / 16"));
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = parse("GET / HTTP/1.1\r\nX-Custom-Header: value\r\n\r\n").unwrap();
        assert_eq!(req.header("x-custom-header"), Some("value"));
        assert_eq!(req.header("X-CUSTOM-HEADER"), Some("value"));
    }

    #[test]
    fn keep_alive_defaults() {
        assert!(parse("GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive());
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .keep_alive());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            parse(""),
            Err(ParseRequestError::ConnectionClosed)
        ));
        assert!(matches!(
            parse("PATCH / HTTP/1.1\r\n\r\n"),
            Err(ParseRequestError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            parse("GET /\r\n\r\n"),
            Err(ParseRequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(ParseRequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nBadHeader\r\n\r\n"),
            Err(ParseRequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(ParseRequestError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&raw), Err(ParseRequestError::BodyTooLarge)));
        // Right at the limit is still accepted (the body just has to
        // actually arrive).
        let body = "x".repeat(100);
        let ok = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn rejects_oversized_header_section() {
        // One huge header line.
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD + 1)
        );
        assert!(matches!(parse(&raw), Err(ParseRequestError::HeadTooLarge)));
        // Many small header lines adding up past the limit.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEAD / 10) {
            raw.push_str(&format!("X-H{i}: {i:08}\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), Err(ParseRequestError::HeadTooLarge)));
    }

    #[test]
    fn parses_put_and_delete() {
        let req =
            parse("PUT /api/v1/designs/alice/lum HTTP/1.1\r\nIf-Match: \"3\"\r\n\r\n").unwrap();
        assert_eq!(req.method(), Method::Put);
        assert_eq!(req.header("if-match"), Some("\"3\""));
        let req = parse("DELETE /api/v1/designs/alice/lum HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method(), Method::Delete);
    }

    #[test]
    fn path_is_percent_decoded() {
        let req = parse("GET /doc/ucb%2Fsram HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path(), "/doc/ucb/sram");
    }

    #[test]
    fn client_serialization_roundtrips() {
        let mut req = Request::new(Method::Post, "/api/element?name=x");
        req.set_body(b"{\"a\":1}".to_vec(), "application/json");
        let bytes = req.to_bytes("example.org", false);
        let parsed = Request::read_from(&mut BufReader::new(bytes.as_slice())).unwrap();
        assert_eq!(parsed.method(), Method::Post);
        assert_eq!(parsed.path(), "/api/element");
        assert_eq!(parsed.query_param("name").as_deref(), Some("x"));
        assert_eq!(parsed.body(), b"{\"a\":1}");
        assert_eq!(parsed.header("content-type"), Some("application/json"));
    }

    #[test]
    fn serialized_headers_use_canonical_casing_and_lookups_stay_insensitive() {
        let mut req = Request::new(Method::Get, "/");
        req.set_header("X-CUSTOM-marker", "v");
        let keep = String::from_utf8(req.to_bytes("example.org", true)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "got: {keep}");
        assert!(keep.contains("Content-Length: 0\r\n"), "got: {keep}");
        assert!(keep.contains("X-Custom-Marker: v\r\n"), "got: {keep}");
        let close = String::from_utf8(req.to_bytes("example.org", false)).unwrap();
        assert!(close.contains("Connection: close\r\n"), "got: {close}");
        // Whatever casing went over the wire, the receiving parser's
        // lookups are case-insensitive.
        let parsed = Request::read_from(&mut BufReader::new(keep.as_bytes())).unwrap();
        assert_eq!(parsed.header("x-custom-marker"), Some("v"));
        assert_eq!(parsed.header("X-CUSTOM-MARKER"), Some("v"));
        assert_eq!(parsed.header("Connection"), Some("keep-alive"));
    }

    #[test]
    fn parse_prefix_is_resumable_byte_by_byte() {
        let raw = b"GET /a?n=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        for cut in 0..raw.len() - 1 {
            assert_eq!(
                Request::parse_prefix(&raw[..cut]).unwrap(),
                None,
                "cut at {cut} should be incomplete"
            );
        }
        let (req, consumed) = Request::parse_prefix(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.path(), "/a");
        assert_eq!(req.query_param("n").as_deref(), Some("1"));
    }

    #[test]
    fn parse_prefix_matches_blocking_parser_on_bodies() {
        let body = "bw_a=8&bw_b=16";
        let raw = format!(
            "POST /eval HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        // Head complete but body short by one byte: incomplete.
        assert_eq!(
            Request::parse_prefix(&raw.as_bytes()[..raw.len() - 1]).unwrap(),
            None
        );
        let (incremental, consumed) = Request::parse_prefix(raw.as_bytes()).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        let blocking = parse(&raw).unwrap();
        assert_eq!(incremental, blocking);
    }

    #[test]
    fn parse_prefix_finds_pipelined_requests_back_to_back() {
        let raw = b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, n1) = Request::parse_prefix(raw).unwrap().unwrap();
        assert_eq!(first.path(), "/one");
        assert!(first.keep_alive());
        let (second, n2) = Request::parse_prefix(&raw[n1..]).unwrap().unwrap();
        assert_eq!(second.path(), "/two");
        assert!(!second.keep_alive());
        assert_eq!(n1 + n2, raw.len());
    }

    #[test]
    fn parse_prefix_rejects_oversized_prefixes_early() {
        // No terminator in sight but already past the head limit.
        let huge = vec![b'a'; MAX_HEAD + 2];
        assert!(matches!(
            Request::parse_prefix(&huge),
            Err(ParseRequestError::HeadTooLarge)
        ));
        // An oversized declared body is rejected before it arrives.
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            Request::parse_prefix(raw.as_bytes()),
            Err(ParseRequestError::BodyTooLarge)
        ));
    }

    #[test]
    fn parse_prefix_skips_leading_crlf_between_pipelined_requests() {
        let raw = b"\r\nGET / HTTP/1.1\r\n\r\n";
        let (req, consumed) = Request::parse_prefix(raw).unwrap().unwrap();
        assert_eq!(req.path(), "/");
        assert_eq!(consumed, raw.len());
    }
}
