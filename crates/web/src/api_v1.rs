//! The versioned JSON API: `/api/v1/`.
//!
//! The pre-v1 `/api/*` endpoints grew one query parameter at a time out
//! of the 1996 CGI scripts; this module is the deliberate redesign. It
//! is a *resource* router — designs are addressed as
//! `/api/v1/designs/{user}/{name}`, and the durable store's revision
//! number is the HTTP validator:
//!
//! * `GET` answers with `ETag: "{rev}"` and honours `If-None-Match`
//!   (a `304` costs one store lookup — no JSON serialization, no
//!   hashing, no recompilation);
//! * `PUT` requires `If-Match: "{rev}"` (or `*` to force); a stale tag
//!   is a `409 Conflict`, a missing one on an existing design is a
//!   `428 Precondition Required` — optimistic concurrency end to end;
//! * `GET .../revisions` lists the bounded history and
//!   `POST .../rollback` restores any revision in it (as a *new*
//!   revision, so history stays append-only);
//! * `POST .../play|sweep|sensitivities|lint|analyze` run the engine
//!   (or the abstract interpreter) against the stored design, sharing
//!   the compiled-plan cache with the legacy API; `analyze` bodies are
//!   cached beside the plan, so an unchanged design answers without
//!   re-analyzing;
//! * `POST /api/v1/libraries` accepts a raw Liberty (`.lib`) source,
//!   lowers every cell to an EQ-1 element (see `crates/liberty`),
//!   persists the import as a revisioned store document, and registers
//!   the elements — imports survive restarts like saved designs.
//!   Parse failures answer 400 with the E017 report in `diagnostics`.
//!
//! Every v1 error is the uniform envelope
//! `{"error": {"code", "message", "diagnostics"?}}` — machine-readable
//! `code`, human-readable `message`, structured detail where it exists
//! (lint reports for evaluation failures, `expected`/`actual` revisions
//! for conflicts). The legacy `/api/*` routes keep answering but carry
//! `Deprecation`/`Link` headers (see `PowerPlayApp::decorate_legacy`).

use std::sync::Arc;

use powerplay_json::Json;
use powerplay_sheet::Sheet;
use powerplay_store::StoreError;

use crate::app::{LegacyMode, PowerPlayApp, LIBRARY_SHARD};
use crate::cache::PlanCache;
use crate::events::sse_frame;
use crate::http::{Method, Request, Response, Status};

/// Routes one `/api/v1/...` request. Called from `PowerPlayApp::route`
/// after authorization; always answers (unknown resources get a 404
/// envelope, never a fall-through to the page router).
pub(crate) fn respond(app: &PowerPlayApp, req: &Request) -> Response {
    let rest = req.path().strip_prefix("/api/v1").unwrap_or("");
    let segments: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
    let result = match segments.as_slice() {
        // `GET /api/v1` — the machine-readable route index.
        [] => match req.method() {
            Method::Get => Ok(route_index(app)),
            _ => Err(method_not_allowed("GET")),
        },
        ["stats"] => match req.method() {
            Method::Get => Ok(stats_get()),
            _ => Err(method_not_allowed("GET")),
        },
        ["sensitivities"] => match req.method() {
            Method::Post => sensitivities_body_post(app, req),
            _ => Err(method_not_allowed("POST")),
        },
        ["models"] => match req.method() {
            Method::Post => models_post(app, req),
            _ => Err(method_not_allowed("POST")),
        },
        ["library"] => match req.method() {
            Method::Get => Ok(Response::json(app.registry.read().to_json().to_string())),
            _ => Err(method_not_allowed("GET")),
        },
        ["libraries"] => match req.method() {
            Method::Get => libraries_list(app),
            Method::Post => libraries_post(app, req),
            _ => Err(method_not_allowed("GET, POST")),
        },
        ["libraries", name] => match req.method() {
            Method::Get => library_get(app, name),
            _ => Err(method_not_allowed("GET")),
        },
        // Element names contain `/` (e.g. `ucb/sram`), so the element
        // resource swallows all remaining segments.
        ["elements", name @ ..] if !name.is_empty() => match req.method() {
            Method::Get => element_get(app, &name.join("/")),
            _ => Err(method_not_allowed("GET")),
        },
        ["designs", user] => match req.method() {
            Method::Get => designs_list(app, user),
            _ => Err(method_not_allowed("GET")),
        },
        ["designs", user, name] => match req.method() {
            Method::Get => design_get(app, req, user, name),
            Method::Put => design_put(app, req, user, name),
            Method::Delete => design_delete(app, user, name),
            _ => Err(method_not_allowed("GET, PUT, DELETE")),
        },
        ["designs", user, name, "revisions"] => match req.method() {
            Method::Get => revisions_get(app, user, name),
            _ => Err(method_not_allowed("GET")),
        },
        ["designs", user, name, "events"] => match req.method() {
            Method::Get => events_get(app, req, user, name),
            _ => Err(method_not_allowed("GET")),
        },
        ["designs", user, name, "rollback"] => match req.method() {
            Method::Post => rollback_post(app, req, user, name),
            _ => Err(method_not_allowed("POST")),
        },
        ["designs", user, name, "play"] => match req.method() {
            Method::Post => play_post(app, user, name),
            _ => Err(method_not_allowed("POST")),
        },
        ["designs", user, name, "sweep"] => match req.method() {
            Method::Post => sweep_post(app, req, user, name),
            _ => Err(method_not_allowed("POST")),
        },
        ["designs", user, name, "sensitivities"] => match req.method() {
            Method::Post => sensitivities_post(app, user, name),
            _ => Err(method_not_allowed("POST")),
        },
        ["designs", user, name, "lint"] => match req.method() {
            Method::Post => lint_post(app, user, name),
            _ => Err(method_not_allowed("POST")),
        },
        ["designs", user, name, "analyze"] => match req.method() {
            Method::Post => analyze_post(app, user, name),
            _ => Err(method_not_allowed("POST")),
        },
        _ => Err(envelope(
            Status::NotFound,
            "not_found",
            "no such API v1 resource",
            None,
        )),
    };
    result.unwrap_or_else(|error| error)
}

// --- the error envelope ---------------------------------------------------

/// Builds the uniform v1 error response:
/// `{"error": {"code", "message", "diagnostics"?}}`.
fn envelope(status: Status, code: &str, message: &str, diagnostics: Option<Json>) -> Response {
    let mut fields = vec![("code", Json::from(code)), ("message", Json::from(message))];
    if let Some(diagnostics) = diagnostics {
        fields.push(("diagnostics", diagnostics));
    }
    Response::json_with_status(
        status,
        Json::object([("error", Json::object(fields))]).to_string(),
    )
}

fn method_not_allowed(allow: &str) -> Response {
    let mut response = envelope(
        Status::MethodNotAllowed,
        "method_not_allowed",
        &format!("this resource supports: {allow}"),
        None,
    );
    response.set_header("Allow", allow);
    response
}

/// Maps a [`StoreError`] onto the envelope. Conflicts carry the
/// expected/actual revisions as diagnostics so a client can recover
/// (refetch, rebase, retry with the fresh tag) without parsing prose.
fn store_error(err: StoreError) -> Response {
    match err {
        StoreError::InvalidUsername(user) => envelope(
            Status::BadRequest,
            "invalid_name",
            &format!("invalid username `{user}` (want [a-zA-Z0-9_-], at most 32 chars)"),
            None,
        ),
        StoreError::InvalidDesignName(name) => envelope(
            Status::BadRequest,
            "invalid_name",
            &format!("invalid design name `{name}` (want [a-zA-Z0-9_-], at most 32 chars)"),
            None,
        ),
        StoreError::Conflict {
            design,
            expected,
            actual,
        } => envelope(
            Status::Conflict,
            "conflict",
            &format!(
                "design `{design}` is at revision {actual}, not {expected}; \
                 refetch and retry with If-Match: \"{actual}\""
            ),
            Some(Json::object([
                ("expected", Json::from(expected as f64)),
                ("actual", Json::from(actual as f64)),
            ])),
        ),
        StoreError::NotFound { design } => envelope(
            Status::NotFound,
            "not_found",
            &format!("no design `{design}`"),
            None,
        ),
        StoreError::UnknownRevision { design, rev } => envelope(
            Status::NotFound,
            "unknown_revision",
            &format!("design `{design}` has no revision {rev} in its retained history"),
            None,
        ),
        StoreError::Io(err) => envelope(
            Status::InternalServerError,
            "storage",
            &format!("storage failure: {err}"),
            None,
        ),
        StoreError::Corrupt(msg) => envelope(
            Status::InternalServerError,
            "corrupt",
            &format!("storage corruption: {msg}"),
            None,
        ),
    }
}

/// Evaluation failures answer 400 with the lint-report shape the static
/// analyzer uses, inside the envelope's `diagnostics`.
fn play_error(err: &powerplay_sheet::EvaluateSheetError) -> Response {
    let report: powerplay_lint::LintReport =
        std::iter::once(powerplay_lint::diagnostic_for_play_error(err)).collect();
    envelope(
        Status::BadRequest,
        "evaluation_failed",
        "the design failed to evaluate",
        Some(report.to_json()),
    )
}

// --- shared plumbing ------------------------------------------------------

/// The strong validator a stored revision renders as.
fn rev_etag(rev: u64) -> String {
    format!("\"{rev}\"")
}

fn load(
    app: &PowerPlayApp,
    user: &str,
    name: &str,
) -> Result<(u64, std::sync::Arc<Sheet>), Response> {
    match app.store.load(user, name) {
        Ok(Some((rev, sheet))) => Ok((rev, sheet)),
        Ok(None) => Err(envelope(
            Status::NotFound,
            "not_found",
            &format!("no design `{name}` for user `{user}`"),
            None,
        )),
        Err(err) => Err(store_error(err)),
    }
}

fn body_json(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(req.body()).map_err(|_| {
        envelope(
            Status::BadRequest,
            "invalid_body",
            "body must be UTF-8 JSON",
            None,
        )
    })?;
    Json::parse(text)
        .map_err(|e| envelope(Status::BadRequest, "invalid_body", &e.to_string(), None))
}

/// Parses an `If-Match` revision tag: `"3"` (the canonical strong form)
/// or a bare `3`.
fn parse_if_match(tag: &str) -> Option<u64> {
    let tag = tag.trim();
    let tag = tag
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(tag);
    tag.parse().ok()
}

/// Answers from the per-`(revision, registry-generation)` body cache,
/// building and storing the serialized body on a miss. Correct for any
/// resource that is pure in the stored content at `rev` and the
/// library registry — `analyze` and the imported-library detail both
/// qualify, so they share this helper (and the cache's LRU accounting).
fn with_cached_body(
    app: &PowerPlayApp,
    key: u64,
    build: impl FnOnce() -> Result<String, Response>,
) -> Result<Response, Response> {
    if let Some(body) = app.plan_cache.cached_analysis(key) {
        return Ok(Response::json(body.as_str().to_owned()));
    }
    let body = build()?;
    app.plan_cache
        .store_analysis(key, std::sync::Arc::new(body.clone()));
    Ok(Response::json(body))
}

fn report_json(report: &powerplay_sheet::SheetReport) -> Json {
    let rows: Json = report
        .rows()
        .iter()
        .map(|r| {
            Json::object([
                ("name", Json::from(r.name())),
                ("power_w", Json::from(r.power().value())),
            ])
        })
        .collect();
    Json::object([
        ("total_w", Json::from(report.total_power().value())),
        ("rows", rows),
    ])
}

// --- design resources -----------------------------------------------------

fn element_get(app: &PowerPlayApp, name: &str) -> Result<Response, Response> {
    let registry = app.registry.read();
    match registry.get(name) {
        Some(element) => Ok(Response::json(element.to_json().to_string())),
        None => Err(envelope(
            Status::NotFound,
            "not_found",
            &format!("unknown element `{name}`"),
            None,
        )),
    }
}

fn designs_list(app: &PowerPlayApp, user: &str) -> Result<Response, Response> {
    let designs: Json = app
        .store
        .list(user)
        .map_err(store_error)?
        .into_iter()
        .map(|d| {
            Json::object([
                ("name", Json::from(d.name)),
                ("rev", Json::from(d.rev as f64)),
                ("revisions", Json::from(d.revisions)),
            ])
        })
        .collect();
    Ok(Response::json(
        Json::object([("user", Json::from(user)), ("designs", designs)]).to_string(),
    ))
}

fn design_get(
    app: &PowerPlayApp,
    req: &Request,
    user: &str,
    name: &str,
) -> Result<Response, Response> {
    let (rev, sheet) = load(app, user, name)?;
    let etag = rev_etag(rev);
    if let Some(not_modified) = PowerPlayApp::not_modified(req, &etag) {
        return Ok(not_modified);
    }
    let revisions = app
        .store
        .revisions(user, name)
        .map_err(store_error)?
        .map_or(0, |revs| revs.len());
    let mut response = Response::json(
        Json::object([
            ("user", Json::from(user)),
            ("name", Json::from(name)),
            ("rev", Json::from(rev as f64)),
            ("revisions", Json::from(revisions)),
            ("design", sheet.to_json()),
        ])
        .to_string(),
    );
    response.set_header("ETag", &etag);
    Ok(response)
}

fn design_put(
    app: &PowerPlayApp,
    req: &Request,
    user: &str,
    name: &str,
) -> Result<Response, Response> {
    let json = body_json(req)?;
    let sheet = Sheet::from_json(&json)
        .map_err(|e| envelope(Status::BadRequest, "invalid_body", &e.to_string(), None))?;
    let current = app.store.current_rev(user, name).map_err(store_error)?;
    let expected = match req.header("if-match") {
        // No validator: creating is fine (expected revision 0 = "must
        // not exist yet"), but blind overwrites of live designs are
        // exactly the lost-update the revision scheme exists to stop.
        None if current > 0 => {
            return Err(envelope(
                Status::PreconditionRequired,
                "precondition_required",
                &format!(
                    "design `{name}` exists at revision {current}; \
                     send If-Match: \"{current}\" to update it (or If-Match: * to force)"
                ),
                None,
            ));
        }
        None => Some(0),
        Some("*") => None,
        Some(tag) => Some(parse_if_match(tag).ok_or_else(|| {
            envelope(
                Status::BadRequest,
                "invalid_if_match",
                &format!("cannot parse If-Match `{tag}` as a revision tag"),
                None,
            )
        })?),
    };
    let rev = app
        .store
        .save(user, name, &sheet, expected)
        .map_err(|err| conflict_event(app, user, name, err))
        .map_err(store_error)?;
    let status = if current == 0 {
        Status::Created
    } else {
        Status::Ok
    };
    let mut response = Response::json_with_status(
        status,
        Json::object([
            ("user", Json::from(user)),
            ("name", Json::from(name)),
            ("rev", Json::from(rev as f64)),
        ])
        .to_string(),
    );
    response.set_header("ETag", &rev_etag(rev));
    Ok(response)
}

fn design_delete(app: &PowerPlayApp, user: &str, name: &str) -> Result<Response, Response> {
    match app.store.delete(user, name) {
        Ok(true) => Ok(Response::json(
            Json::object([("deleted", Json::from(true))]).to_string(),
        )),
        Ok(false) => Err(envelope(
            Status::NotFound,
            "not_found",
            &format!("no design `{name}` for user `{user}`"),
            None,
        )),
        Err(err) => Err(store_error(err)),
    }
}

fn revisions_get(app: &PowerPlayApp, user: &str, name: &str) -> Result<Response, Response> {
    let (revs, floor) = app
        .store
        .revision_history(user, name)
        .map_err(store_error)?
        .ok_or_else(|| {
            envelope(
                Status::NotFound,
                "not_found",
                &format!("no design `{name}` for user `{user}`"),
                None,
            )
        })?;
    let current = revs.first().copied().unwrap_or(0);
    Ok(Response::json(
        Json::object([
            ("user", Json::from(user)),
            ("name", Json::from(name)),
            ("current", Json::from(current as f64)),
            // The floor lets clients tell truncation from short
            // history: revisions `floor` and below once existed but are
            // no longer retained (0 = nothing was ever lost).
            ("floor", Json::from(floor as f64)),
            (
                "revisions",
                revs.into_iter().map(|r| r as f64).collect::<Json>(),
            ),
        ])
        .to_string(),
    ))
}

fn rollback_post(
    app: &PowerPlayApp,
    req: &Request,
    user: &str,
    name: &str,
) -> Result<Response, Response> {
    let json = body_json(req)?;
    let rev = json
        .get("rev")
        .and_then(Json::as_f64)
        .filter(|r| r.fract() == 0.0 && *r >= 1.0)
        .ok_or_else(|| {
            envelope(
                Status::BadRequest,
                "invalid_body",
                "body must be {\"rev\": <revision to restore>}",
                None,
            )
        })? as u64;
    let expected = match req.header("if-match") {
        None | Some("*") => None,
        Some(tag) => Some(parse_if_match(tag).ok_or_else(|| {
            envelope(
                Status::BadRequest,
                "invalid_if_match",
                &format!("cannot parse If-Match `{tag}` as a revision tag"),
                None,
            )
        })?),
    };
    let new_rev = app
        .store
        .rollback(user, name, rev, expected)
        .map_err(|err| conflict_event(app, user, name, err))
        .map_err(store_error)?;
    let mut response = Response::json(
        Json::object([
            ("user", Json::from(user)),
            ("name", Json::from(name)),
            ("rev", Json::from(new_rev as f64)),
            ("restored", Json::from(rev as f64)),
        ])
        .to_string(),
    );
    response.set_header("ETag", &rev_etag(new_rev));
    Ok(response)
}

// --- event streams --------------------------------------------------------

/// Passes a [`StoreError`] through, publishing a transient `conflict`
/// event on the design's topic when it is a revision conflict — the
/// collaborator whose PUT just lost learns immediately, and so does
/// everyone else watching the design.
fn conflict_event(app: &PowerPlayApp, user: &str, name: &str, err: StoreError) -> StoreError {
    if let StoreError::Conflict {
        expected, actual, ..
    } = &err
    {
        let data = Json::object([
            ("user", Json::from(user)),
            ("name", Json::from(name)),
            ("expected", Json::from(*expected as f64)),
            ("actual", Json::from(*actual as f64)),
        ]);
        app.events
            .publish_transient(user, name, sse_frame("conflict", None, &data.to_string()));
    }
    err
}

/// The event payload shared by `snapshot` and replayed `revision`
/// frames: the design identity, its validator, and the evaluated
/// report (`null` when the design does not evaluate).
fn event_data(app: &PowerPlayApp, user: &str, name: &str, rev: u64, sheet: &Sheet) -> Json {
    let plan = app.plan_for(app.stored_key(user, name, rev), sheet);
    let report = plan.play().map(|r| report_json(&r)).unwrap_or(Json::Null);
    Json::object([
        ("user", Json::from(user)),
        ("name", Json::from(name)),
        ("rev", Json::from(rev as f64)),
        ("author", Json::from(user)),
        ("etag", Json::from(rev_etag(rev))),
        ("report", report),
    ])
}

/// `GET /api/v1/designs/{user}/{name}/events` — a Server-Sent Events
/// stream of the design's life: a `snapshot` (or, resuming via
/// `Last-Event-ID`, the missed `revision`s) as the prologue, then live
/// `revision` / `conflict` / `deleted` events as collaborators work,
/// `:hb` heartbeats while they don't, and a final `bye` when the server
/// drains. Event ids are revision numbers, so `Last-Event-ID` resume is
/// exact while the bounded history retains the gap; beyond it the
/// stream resyncs with a fresh `snapshot`.
fn events_get(
    app: &PowerPlayApp,
    req: &Request,
    user: &str,
    name: &str,
) -> Result<Response, Response> {
    let (current, sheet) = load(app, user, name)?;
    let last: Option<u64> = req
        .header("last-event-id")
        .and_then(|v| v.trim().parse().ok());

    // EventSource reconnect hint, then the prologue frames. `current`
    // is the highest revision the prologue covers; the stream-open
    // callback below subscribes with that watermark and the hub's ring
    // replays anything committed while this response was in flight.
    let mut prologue = b"retry: 2000\n\n".to_vec();
    let replayable = last.is_some_and(|l| l <= current);
    if replayable {
        let last = last.expect("replayable implies present");
        let (revs, floor) = app
            .store
            .revision_history(user, name)
            .map_err(store_error)?
            .unwrap_or((Vec::new(), 0));
        if last < floor {
            // Part of the gap fell out of the bounded history; exact
            // replay is impossible, so resync from the snapshot.
            let data = event_data(app, user, name, current, &sheet);
            let snapshot = with_design(data, &sheet);
            prologue.extend_from_slice(&sse_frame("snapshot", Some(current), &snapshot));
        } else {
            for rev in revs.into_iter().rev().filter(|r| *r > last) {
                let Some(stored) = app.store.load_rev(user, name, rev).map_err(store_error)? else {
                    continue;
                };
                let data = event_data(app, user, name, rev, &stored);
                prologue.extend_from_slice(&sse_frame("revision", Some(rev), &data.to_string()));
            }
        }
    } else {
        // No resume point (or one from a deleted-and-recreated
        // lineage): late joiners start from a full snapshot.
        let data = event_data(app, user, name, current, &sheet);
        let snapshot = with_design(data, &sheet);
        prologue.extend_from_slice(&sse_frame("snapshot", Some(current), &snapshot));
    }

    let hub = Arc::clone(app.events());
    let (user, name) = (user.to_owned(), name.to_owned());
    Ok(Response::event_stream(prologue, move |handle| {
        hub.subscribe(&user, &name, current, handle);
    }))
}

/// Extends an event payload with the full design document (snapshots
/// carry the sheet so a joiner needs no second fetch).
fn with_design(mut data: Json, sheet: &Sheet) -> String {
    data.set("design", sheet.to_json());
    data.to_string()
}

// --- engine resources -----------------------------------------------------

fn play_post(app: &PowerPlayApp, user: &str, name: &str) -> Result<Response, Response> {
    let (rev, sheet) = load(app, user, name)?;
    let plan = app.plan_for(app.stored_key(user, name, rev), &sheet);
    let report = plan.play().map_err(|e| play_error(&e))?;
    Ok(Response::json(
        Json::object([
            ("rev", Json::from(rev as f64)),
            ("report", report_json(&report)),
        ])
        .to_string(),
    ))
}

fn sweep_post(
    app: &PowerPlayApp,
    req: &Request,
    user: &str,
    name: &str,
) -> Result<Response, Response> {
    let json = body_json(req)?;
    let bad_body = || {
        envelope(
            Status::BadRequest,
            "invalid_body",
            "body must be {\"global\": <name>, \"values\": [<numbers>]}",
            None,
        )
    };
    let global = json
        .get("global")
        .and_then(Json::as_str)
        .ok_or_else(bad_body)?;
    let values: Vec<f64> = json
        .get("values")
        .and_then(Json::as_array)
        .ok_or_else(bad_body)?
        .iter()
        .map(|v| v.as_f64().ok_or_else(bad_body))
        .collect::<Result<_, _>>()?;
    let (rev, sheet) = load(app, user, name)?;
    let plan = app.plan_for(app.stored_key(user, name, rev), &sheet);
    let curve = powerplay_sheet::whatif::sweep_compiled(&plan, global, &values)
        .map_err(|e| play_error(&e))?;
    let series: Json = curve
        .into_iter()
        .map(|(value, report)| {
            Json::object([
                ("value", Json::from(value)),
                ("total_w", Json::from(report.total_power().value())),
            ])
        })
        .collect();
    Ok(Response::json(
        Json::object([
            ("rev", Json::from(rev as f64)),
            ("global", Json::from(global)),
            ("series", series),
        ])
        .to_string(),
    ))
}

fn sensitivities_post(app: &PowerPlayApp, user: &str, name: &str) -> Result<Response, Response> {
    let (rev, sheet) = load(app, user, name)?;
    let plan = app.plan_for(app.stored_key(user, name, rev), &sheet);
    let sens =
        powerplay_sheet::whatif::sensitivities_compiled(&plan).map_err(|e| play_error(&e))?;
    let ranking: Json = sens
        .into_iter()
        .map(|(global, s)| {
            Json::object([
                ("global", Json::from(global)),
                ("sensitivity", Json::from(s)),
            ])
        })
        .collect();
    Ok(Response::json(
        Json::object([("rev", Json::from(rev as f64)), ("sensitivities", ranking)]).to_string(),
    ))
}

fn lint_post(app: &PowerPlayApp, user: &str, name: &str) -> Result<Response, Response> {
    let (rev, sheet) = load(app, user, name)?;
    let report = powerplay_lint::lint_sheet(&sheet, &app.registry.read());
    Ok(Response::json(
        Json::object([("rev", Json::from(rev as f64)), ("lint", report.to_json())]).to_string(),
    ))
}

/// `POST .../analyze` — abstract interpretation over the compiled plan:
/// proven bounds, monotone inputs, and the E015/E016/W114–W118
/// diagnostics. The analysis is pure in the plan, so the serialized
/// body is cached beside the compiled plan and an unchanged design
/// answers without re-analyzing.
fn analyze_post(app: &PowerPlayApp, user: &str, name: &str) -> Result<Response, Response> {
    let (rev, sheet) = load(app, user, name)?;
    let key = app.stored_key(user, name, rev);
    with_cached_body(app, key, || {
        let plan = app.plan_for(key, &sheet);
        let bounds = powerplay_analysis::analyze(&plan).map_err(|e| play_error(&e))?;
        Ok(Json::object([
            ("rev", Json::from(rev as f64)),
            ("bounds", bounds.to_json()),
        ])
        .to_string())
    })
}

// --- surface cleanup: index, stats, body-shape engines, model upload ------

/// Every v1 route, one entry per method, for the machine-readable
/// index. Path templates use `{placeholder}` segments.
const V1_ROUTES: &[(&str, &str)] = &[
    ("GET", "/api/v1"),
    ("GET", "/api/v1/stats"),
    ("POST", "/api/v1/sensitivities"),
    ("POST", "/api/v1/models"),
    ("GET", "/api/v1/library"),
    ("GET", "/api/v1/libraries"),
    ("POST", "/api/v1/libraries"),
    ("GET", "/api/v1/libraries/{name}"),
    ("GET", "/api/v1/elements/{name}"),
    ("GET", "/api/v1/designs/{user}"),
    ("GET", "/api/v1/designs/{user}/{name}"),
    ("PUT", "/api/v1/designs/{user}/{name}"),
    ("DELETE", "/api/v1/designs/{user}/{name}"),
    ("GET", "/api/v1/designs/{user}/{name}/revisions"),
    ("GET", "/api/v1/designs/{user}/{name}/events"),
    ("POST", "/api/v1/designs/{user}/{name}/rollback"),
    ("POST", "/api/v1/designs/{user}/{name}/play"),
    ("POST", "/api/v1/designs/{user}/{name}/sweep"),
    ("POST", "/api/v1/designs/{user}/{name}/sensitivities"),
    ("POST", "/api/v1/designs/{user}/{name}/lint"),
    ("POST", "/api/v1/designs/{user}/{name}/analyze"),
];

/// The legacy routes that answer on more than one method.
fn legacy_methods(route: &str) -> &'static [&'static str] {
    match route {
        "/api/design" | "/api/lint" => &["GET", "POST"],
        _ => &["GET"],
    }
}

/// `GET /api/v1` — the route index: every v1 route plus the deprecated
/// legacy routes with their sunset state and successor, so clients can
/// discover the surface (and its deprecations) without prose.
fn route_index(app: &PowerPlayApp) -> Response {
    let mode = app.legacy_mode();
    let mut routes: Vec<Json> = V1_ROUTES
        .iter()
        .map(|(method, path)| {
            Json::object([
                ("method", Json::from(*method)),
                ("path", Json::from(*path)),
                ("deprecated", Json::from(false)),
            ])
        })
        .collect();
    for (route, successor) in PowerPlayApp::LEGACY_API_ROUTES {
        for method in legacy_methods(route) {
            routes.push(Json::object([
                ("method", Json::from(*method)),
                ("path", Json::from(*route)),
                ("deprecated", Json::from(true)),
                ("sunset", Json::from(mode == LegacyMode::Off)),
                ("successor", Json::from(*successor)),
            ]));
        }
    }
    Response::json(
        Json::object([
            ("version", Json::from("v1")),
            ("legacy_mode", Json::from(mode.as_str())),
            ("routes", routes.into_iter().collect::<Json>()),
        ])
        .to_string(),
    )
}

/// `GET /api/v1/stats` — the telemetry snapshot as JSON: the
/// machine-readable sibling of the human `/stats` panel (which stays on
/// the page router). Quantiles are the same log2-bucket estimates the
/// panel shows.
fn stats_get() -> Response {
    let snap = powerplay_telemetry::global().snapshot();
    let counters: Json = snap
        .counters
        .iter()
        .map(|(name, v)| {
            Json::object([
                ("name", Json::from(name.as_str())),
                ("value", Json::from(*v as f64)),
            ])
        })
        .collect();
    let gauges: Json = snap
        .gauges
        .iter()
        .map(|(name, v)| {
            Json::object([
                ("name", Json::from(name.as_str())),
                ("value", Json::from(*v as f64)),
            ])
        })
        .collect();
    let quantile = |h: &powerplay_telemetry::HistogramSnapshot, q: f64| {
        h.quantile_seconds(q)
            .filter(|v| v.is_finite())
            .map_or(Json::Null, Json::from)
    };
    let histograms: Json = snap
        .histograms
        .iter()
        .map(|h| {
            Json::object([
                ("name", Json::from(h.name.as_str())),
                ("count", Json::from(h.count as f64)),
                ("sum_seconds", Json::from(h.sum_seconds)),
                ("p50_seconds", quantile(h, 0.5)),
                ("p90_seconds", quantile(h, 0.9)),
                ("p99_seconds", quantile(h, 0.99)),
            ])
        })
        .collect();
    Response::json(
        Json::object([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
        .to_string(),
    )
}

/// `POST /api/v1/sensitivities` with a sheet JSON document as the body
/// — the what-if ranking for an *unsaved* design (editor integrations,
/// CI), completing the v1 migration of the legacy query-parameter
/// route. The compiled plan is cached by canonicalized content hash,
/// like `POST /api/design` bodies.
fn sensitivities_body_post(app: &PowerPlayApp, req: &Request) -> Result<Response, Response> {
    let json = body_json(req)?;
    let sheet = Sheet::from_json(&json)
        .map_err(|e| envelope(Status::BadRequest, "invalid_body", &e.to_string(), None))?;
    let key = PlanCache::key(
        &sheet.to_json().to_string(),
        app.registry.read().generation(),
    );
    let plan = app.plan_for(key, &sheet);
    let sens =
        powerplay_sheet::whatif::sensitivities_compiled(&plan).map_err(|e| play_error(&e))?;
    let ranking: Json = sens
        .into_iter()
        .map(|(global, s)| {
            Json::object([
                ("global", Json::from(global)),
                ("sensitivity", Json::from(s)),
            ])
        })
        .collect();
    Ok(Response::json(
        Json::object([("sensitivities", ranking)]).to_string(),
    ))
}

/// `POST /api/v1/models` with a JSON model document — the v1 successor
/// of the HTML `/model/new` form: name, class, parameter declarations,
/// and the model formulas, linted before registration exactly like the
/// form path. Answers 201 with the registered element.
fn models_post(app: &PowerPlayApp, req: &Request) -> Result<Response, Response> {
    use powerplay_library::{ElementClass, ElementModel, LibraryElement, ParamDecl};

    let json = body_json(req)?;
    let bad = |msg: &str| envelope(Status::BadRequest, "invalid_body", msg, None);
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .filter(|n| !n.is_empty())
        .ok_or_else(|| bad("`name` is required"))?;
    let class_id = json.get("class").and_then(Json::as_str).unwrap_or("");
    let class = ElementClass::from_id(class_id)
        .ok_or_else(|| bad(&format!("unknown class `{class_id}`")))?;
    let doc = json
        .get("doc")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_owned();

    let mut params = Vec::new();
    if let Some(items) = json.get("params").and_then(Json::as_array) {
        for item in items {
            let pname = item
                .get("name")
                .and_then(Json::as_str)
                .filter(|n| !n.is_empty())
                .ok_or_else(|| bad("each parameter needs a `name`"))?;
            let default = item
                .get("default")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(&format!("parameter `{pname}` needs a numeric `default`")))?;
            let pdoc = item.get("doc").and_then(Json::as_str).unwrap_or("");
            params.push(ParamDecl::new(pname, default, pdoc));
        }
    }

    let model_json = json.get("model");
    let formula = |field: &str| -> Result<Option<powerplay_expr::Expr>, Response> {
        match model_json
            .and_then(|m| m.get(field))
            .and_then(Json::as_str)
            .filter(|s| !s.trim().is_empty())
        {
            None => Ok(None),
            Some(src) => powerplay_expr::Expr::parse(src)
                .map(Some)
                .map_err(|e| bad(&format!("formula `{field}`: {e}"))),
        }
    };
    let cap_partial = match (formula("cap_partial")?, formula("swing")?) {
        (Some(c), Some(s)) => Some((c, s)),
        (None, None) => None,
        _ => return Err(bad("cap_partial and swing must be given together")),
    };
    let model = ElementModel {
        cap_full: formula("cap_full")?,
        cap_partial,
        static_current: formula("static_current")?,
        power_direct: formula("power_direct")?,
        area: formula("area")?,
        delay: formula("delay")?,
    };

    let element = LibraryElement::new(name.to_owned(), class, doc, params, model);
    let report = powerplay_lint::lint_element(&element);
    if report.has_errors() {
        return Err(envelope(
            Status::BadRequest,
            "invalid_model",
            "the model failed lint",
            Some(report.to_json()),
        ));
    }
    let body = element.to_json().to_string();
    app.registry.write().insert(element);
    let mut response = Response::json_with_status(Status::Created, body);
    response.set_header("Location", &format!("/api/v1/elements/{name}"));
    Ok(response)
}

// --- imported libraries ---------------------------------------------------

/// A Liberty library name reduced to the store's document-name charset
/// (`[a-zA-Z0-9_-]`, at most 32 chars); real library names are rarely
/// that tame (`gscl45nm.db`, vendor dots and pluses).
fn library_doc_name(library: &str) -> String {
    let mut name: String = library
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .take(32)
        .collect();
    if name.is_empty() {
        name.push_str("library");
    }
    name
}

/// `GET /api/v1/libraries` — every imported library with its revision,
/// provenance hash, and cell counts.
fn libraries_list(app: &PowerPlayApp) -> Result<Response, Response> {
    let docs = app.store.list_docs(LIBRARY_SHARD).map_err(store_error)?;
    let mut items = Vec::new();
    for doc in docs {
        let Some((rev, body)) = app
            .store
            .load_doc(LIBRARY_SHARD, &doc.name)
            .map_err(store_error)?
        else {
            continue;
        };
        items.push(Json::object([
            ("name", Json::from(doc.name.as_str())),
            ("library", body["name"].clone()),
            ("rev", Json::from(rev as f64)),
            ("source_hash", body["source_hash"].clone()),
            ("cells_parsed", body["cells_parsed"].clone()),
            ("cells_mapped", body["cells_mapped"].clone()),
        ]));
    }
    Ok(Response::json(
        Json::object([("libraries", items.into_iter().collect::<Json>())]).to_string(),
    ))
}

/// `GET /api/v1/libraries/{name}` — one import's manifest: provenance,
/// cell counts, and the registered element names. Pure in `(rev,
/// generation)`, so the body shares the analyze cache.
fn library_get(app: &PowerPlayApp, name: &str) -> Result<Response, Response> {
    let Some((rev, body)) = app
        .store
        .load_doc(LIBRARY_SHARD, name)
        .map_err(store_error)?
    else {
        return Err(envelope(
            Status::NotFound,
            "not_found",
            &format!("no imported library `{name}`"),
            None,
        ));
    };
    let key = app.stored_key(LIBRARY_SHARD, name, rev);
    with_cached_body(app, key, || {
        let elements: Json = body["elements"]
            .as_array()
            .map(|items| items.iter().map(|e| e["name"].clone()).collect())
            .unwrap_or_default();
        Ok(Json::object([
            ("name", Json::from(name)),
            ("library", body["name"].clone()),
            ("rev", Json::from(rev as f64)),
            ("source_hash", body["source_hash"].clone()),
            ("cells_parsed", body["cells_parsed"].clone()),
            ("cells_mapped", body["cells_mapped"].clone()),
            ("elements", elements),
        ])
        .to_string())
    })
}

/// `POST /api/v1/libraries` with a raw Liberty (`.lib`) source body —
/// the real-world front door: parse, lower every cell to an EQ-1
/// element, persist the import as a revisioned document under the
/// reserved `_libraries` shard, and register the elements (which bumps
/// the registry generation, invalidating cached plans). The diagnostic
/// report rides along in the success body; E017 failures answer 400
/// with the report in `diagnostics`.
fn libraries_post(app: &PowerPlayApp, req: &Request) -> Result<Response, Response> {
    let text = std::str::from_utf8(req.body()).map_err(|_| {
        envelope(
            Status::BadRequest,
            "invalid_body",
            "body must be a UTF-8 Liberty (.lib) source",
            None,
        )
    })?;
    let import = powerplay_liberty::import_str(text, "api");
    if import.report.has_errors() {
        return Err(envelope(
            Status::BadRequest,
            "unparsable_library",
            "the Liberty source did not import",
            Some(import.report.to_json()),
        ));
    }
    let doc_name = library_doc_name(&import.library);
    let manifest = Json::object([
        ("name", Json::from(import.library.as_str())),
        (
            "source_hash",
            Json::from(format!("{:016x}", import.source_hash)),
        ),
        ("cells_parsed", Json::from(import.cells_parsed as f64)),
        ("cells_mapped", Json::from(import.cells_mapped as f64)),
        (
            "elements",
            import.elements.iter().map(|e| e.to_json()).collect(),
        ),
    ]);
    // Re-importing the same library name supersedes the previous
    // import as a new document revision (history stays append-only).
    let rev = app
        .store
        .save_doc(LIBRARY_SHARD, &doc_name, &manifest, None)
        .map_err(store_error)?;
    let element_names: Json = import
        .elements
        .iter()
        .map(|e| Json::from(e.name()))
        .collect();
    {
        let mut registry = app.registry.write();
        for element in import.elements {
            registry.insert(element);
        }
    }
    let mut response = Response::json_with_status(
        Status::Created,
        Json::object([
            ("name", Json::from(doc_name.as_str())),
            ("library", Json::from(import.library.as_str())),
            ("rev", Json::from(rev as f64)),
            (
                "source_hash",
                Json::from(format!("{:016x}", import.source_hash)),
            ),
            ("cells_parsed", Json::from(import.cells_parsed as f64)),
            ("cells_mapped", Json::from(import.cells_mapped as f64)),
            ("elements", element_names),
            ("report", import.report.to_json()),
        ])
        .to_string(),
    );
    response.set_header("ETag", &rev_etag(rev));
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerplay_library::builtin::ucb_library;
    use std::sync::Arc;

    fn app(tag: &str) -> Arc<PowerPlayApp> {
        let dir = std::env::temp_dir().join(format!("powerplay-v1-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PowerPlayApp::new(ucb_library(), dir)
    }

    fn sheet_json() -> String {
        let mut sheet = Sheet::new("d");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2e6").unwrap();
        sheet
            .add_element_row("R", "ucb/register", [("bits", "16")])
            .unwrap();
        sheet.to_json().to_string()
    }

    fn put(app: &PowerPlayApp, path: &str, body: &str, if_match: Option<&str>) -> Response {
        let mut req = Request::new(Method::Put, path);
        req.set_body(body.as_bytes().to_vec(), "application/json");
        if let Some(tag) = if_match {
            req.set_header("If-Match", tag);
        }
        app.handle(&req)
    }

    fn post(app: &PowerPlayApp, path: &str, body: &str) -> Response {
        let mut req = Request::new(Method::Post, path);
        req.set_body(body.as_bytes().to_vec(), "application/json");
        app.handle(&req)
    }

    fn get(app: &PowerPlayApp, path: &str) -> Response {
        app.handle(&Request::new(Method::Get, path))
    }

    fn error_code(response: &Response) -> String {
        let parsed = Json::parse(&response.body_text()).expect("envelope is JSON");
        parsed["error"]["code"]
            .as_str()
            .expect("error.code present")
            .to_owned()
    }

    #[test]
    fn put_creates_then_requires_if_match() {
        let app = app("putflow");
        let body = sheet_json();

        // First PUT without a validator creates revision 1.
        let created = put(&app, "/api/v1/designs/a/d", &body, None);
        assert_eq!(created.status(), Status::Created, "{}", created.body_text());
        assert_eq!(created.header("etag"), Some("\"1\""));

        // A second blind PUT is refused: the design now exists.
        let blind = put(&app, "/api/v1/designs/a/d", &body, None);
        assert_eq!(blind.status(), Status::PreconditionRequired);
        assert_eq!(error_code(&blind), "precondition_required");

        // With the current tag it succeeds and bumps the revision.
        let updated = put(&app, "/api/v1/designs/a/d", &body, Some("\"1\""));
        assert_eq!(updated.status(), Status::Ok, "{}", updated.body_text());
        assert_eq!(updated.header("etag"), Some("\"2\""));

        // A stale tag is a structured 409 with both revisions.
        let stale = put(&app, "/api/v1/designs/a/d", &body, Some("\"1\""));
        assert_eq!(stale.status(), Status::Conflict);
        assert_eq!(error_code(&stale), "conflict");
        let parsed = Json::parse(&stale.body_text()).unwrap();
        assert_eq!(
            parsed["error"]["diagnostics"]["expected"].as_f64(),
            Some(1.0)
        );
        assert_eq!(parsed["error"]["diagnostics"]["actual"].as_f64(), Some(2.0));

        // `*` forces through regardless.
        let forced = put(&app, "/api/v1/designs/a/d", &body, Some("*"));
        assert_eq!(forced.status(), Status::Ok);
        assert_eq!(forced.header("etag"), Some("\"3\""));

        // A garbage validator is a clean 400.
        let garbage = put(&app, "/api/v1/designs/a/d", &body, Some("latest"));
        assert_eq!(garbage.status(), Status::BadRequest);
        assert_eq!(error_code(&garbage), "invalid_if_match");
    }

    #[test]
    fn get_serves_revision_etags_and_304() {
        let app = app("getrev");
        put(&app, "/api/v1/designs/a/d", &sheet_json(), None);
        let first = get(&app, "/api/v1/designs/a/d");
        assert_eq!(first.status(), Status::Ok);
        assert_eq!(first.header("etag"), Some("\"1\""));
        let parsed = Json::parse(&first.body_text()).unwrap();
        assert_eq!(parsed["rev"].as_f64(), Some(1.0));
        assert_eq!(parsed["design"]["name"].as_str(), Some("d"));

        let mut conditional = Request::new(Method::Get, "/api/v1/designs/a/d");
        conditional.set_header("If-None-Match", "\"1\"");
        let not_modified = app.handle(&conditional);
        assert_eq!(not_modified.status(), Status::NotModified);
        assert!(not_modified.body().is_empty());

        // A new revision invalidates the tag.
        put(&app, "/api/v1/designs/a/d", &sheet_json(), Some("\"1\""));
        let refreshed = app.handle(&conditional);
        assert_eq!(refreshed.status(), Status::Ok);
        assert_eq!(refreshed.header("etag"), Some("\"2\""));
    }

    #[test]
    fn revisions_rollback_and_delete() {
        let app = app("history");
        let mut sheet = Sheet::new("d");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2e6").unwrap();
        put(
            &app,
            "/api/v1/designs/a/d",
            &sheet.to_json().to_string(),
            None,
        );
        sheet.set_global("vdd", "3.3").unwrap();
        put(
            &app,
            "/api/v1/designs/a/d",
            &sheet.to_json().to_string(),
            Some("\"1\""),
        );

        let listed = get(&app, "/api/v1/designs/a/d/revisions");
        assert_eq!(listed.status(), Status::Ok);
        let parsed = Json::parse(&listed.body_text()).unwrap();
        assert_eq!(parsed["current"].as_f64(), Some(2.0));
        let revs: Vec<f64> = parsed["revisions"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r.as_f64().unwrap())
            .collect();
        assert_eq!(revs, vec![2.0, 1.0]);

        // Rolling back to revision 1 mints revision 3 with 1's content.
        let rolled = post(&app, "/api/v1/designs/a/d/rollback", "{\"rev\": 1}");
        assert_eq!(rolled.status(), Status::Ok, "{}", rolled.body_text());
        assert_eq!(rolled.header("etag"), Some("\"3\""));
        let restored = get(&app, "/api/v1/designs/a/d");
        let parsed = Json::parse(&restored.body_text()).unwrap();
        let vdd = parsed["design"]["globals"]
            .as_array()
            .unwrap()
            .iter()
            .find(|g| g["name"].as_str() == Some("vdd"))
            .expect("vdd global present");
        assert_eq!(vdd["formula"].as_str(), Some("1.5"));

        // An unretained revision is a structured 404.
        let missing = post(&app, "/api/v1/designs/a/d/rollback", "{\"rev\": 99}");
        assert_eq!(missing.status(), Status::NotFound);
        assert_eq!(error_code(&missing), "unknown_revision");

        // The designs listing shows the history depth.
        let designs = get(&app, "/api/v1/designs/a");
        let parsed = Json::parse(&designs.body_text()).unwrap();
        let entry = &parsed["designs"].as_array().unwrap()[0];
        assert_eq!(entry["name"].as_str(), Some("d"));
        assert_eq!(entry["rev"].as_f64(), Some(3.0));
        assert_eq!(entry["revisions"].as_f64(), Some(3.0));

        // Delete, then everything 404s with the envelope.
        let mut del = Request::new(Method::Delete, "/api/v1/designs/a/d");
        let deleted = app.handle(&del);
        assert_eq!(deleted.status(), Status::Ok);
        del = Request::new(Method::Delete, "/api/v1/designs/a/d");
        let gone = app.handle(&del);
        assert_eq!(gone.status(), Status::NotFound);
        assert_eq!(error_code(&gone), "not_found");
        assert_eq!(error_code(&get(&app, "/api/v1/designs/a/d")), "not_found");
    }

    #[test]
    fn engine_endpoints_share_the_stored_design() {
        let app = app("engine");
        put(&app, "/api/v1/designs/a/d", &sheet_json(), None);

        let played = post(&app, "/api/v1/designs/a/d/play", "");
        assert_eq!(played.status(), Status::Ok, "{}", played.body_text());
        let parsed = Json::parse(&played.body_text()).unwrap();
        assert!(parsed["report"]["total_w"].as_f64().unwrap() > 0.0);

        let swept = post(
            &app,
            "/api/v1/designs/a/d/sweep",
            "{\"global\": \"vdd\", \"values\": [1.0, 2.0]}",
        );
        assert_eq!(swept.status(), Status::Ok, "{}", swept.body_text());
        let parsed = Json::parse(&swept.body_text()).unwrap();
        assert_eq!(parsed["series"].as_array().unwrap().len(), 2);

        let ranked = post(&app, "/api/v1/designs/a/d/sensitivities", "");
        assert_eq!(ranked.status(), Status::Ok, "{}", ranked.body_text());

        let linted = post(&app, "/api/v1/designs/a/d/lint", "");
        assert_eq!(linted.status(), Status::Ok, "{}", linted.body_text());

        let analyzed = post(&app, "/api/v1/designs/a/d/analyze", "");
        assert_eq!(analyzed.status(), Status::Ok, "{}", analyzed.body_text());
        let parsed = Json::parse(&analyzed.body_text()).unwrap();
        let total = &parsed["bounds"]["total_power"];
        let lo = total["lo"].as_f64().expect("lo");
        let hi = total["hi"].as_f64().expect("hi");
        assert!(lo > 0.0 && hi >= lo, "bad bounds [{lo}, {hi}]");
        assert_eq!(total["nan_possible"].as_bool(), Some(false));
        // The concrete play must land inside the proven interval.
        let played = Json::parse(&post(&app, "/api/v1/designs/a/d/play", "").body_text()).unwrap();
        let total_w = played["report"]["total_w"].as_f64().unwrap();
        assert!(
            lo <= total_w && total_w <= hi,
            "{total_w} not in [{lo}, {hi}]"
        );
        // A repeat answers from the cached analysis body, bit-identical.
        let again = post(&app, "/api/v1/designs/a/d/analyze", "");
        assert_eq!(again.body_text(), analyzed.body_text());

        // Bad sweep bodies get the envelope, not a panic or a bare 400.
        let bad = post(&app, "/api/v1/designs/a/d/sweep", "{\"global\": \"vdd\"}");
        assert_eq!(bad.status(), Status::BadRequest);
        assert_eq!(error_code(&bad), "invalid_body");
    }

    #[test]
    fn unknown_resources_and_methods_use_the_envelope() {
        let app = app("envelope");
        let missing = get(&app, "/api/v1/nonsense");
        assert_eq!(missing.status(), Status::NotFound);
        assert_eq!(error_code(&missing), "not_found");

        let library = get(&app, "/api/v1/library");
        assert_eq!(library.status(), Status::Ok);
        let wrong = post(&app, "/api/v1/library", "");
        assert_eq!(wrong.status(), Status::MethodNotAllowed);
        assert_eq!(wrong.header("allow"), Some("GET"));
        assert_eq!(error_code(&wrong), "method_not_allowed");

        let element = get(&app, "/api/v1/elements/ucb/register");
        assert_eq!(element.status(), Status::Ok);
        let unknown = get(&app, "/api/v1/elements/ucb/flux-capacitor");
        assert_eq!(unknown.status(), Status::NotFound);
        assert_eq!(error_code(&unknown), "not_found");

        // Path traversal in names is refused by the store's validator.
        let bad = put(&app, "/api/v1/designs/..%2F..%2Fetc/d", &sheet_json(), None);
        assert!(
            bad.status() == Status::BadRequest || bad.status() == Status::NotFound,
            "traversal must not reach the filesystem: {:?}",
            bad.status()
        );
    }

    /// A small but real Liberty source: units, a template, a cell with
    /// internal power and leakage.
    const LIB_SRC: &str = r#"library (api_demo) {
        voltage_unit : "1V";
        leakage_power_unit : "1nW";
        capacitive_load_unit (1, pf);
        nom_voltage : 1.1;
        lu_table_template (e2) {
            variable_1 : input_net_transition;
            index_1 ("0.1, 0.5");
        }
        cell (INVX1) {
            area : 1.2;
            cell_leakage_power : 2.0;
            pin (A) { direction : input; capacitance : 0.004; }
            pin (Y) {
                direction : output;
                internal_power () {
                    related_pin : "A";
                    rise_power (e2) { values ("0.010, 0.014"); }
                    fall_power (e2) { values ("0.012, 0.016"); }
                }
            }
        }
    }"#;

    #[test]
    fn library_import_registers_persists_and_lists() {
        let dir =
            std::env::temp_dir().join(format!("powerplay-v1-libimport-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app1 = PowerPlayApp::new(ucb_library(), dir.clone());

        let created = post(&app1, "/api/v1/libraries", LIB_SRC);
        assert_eq!(created.status(), Status::Created, "{}", created.body_text());
        assert_eq!(created.header("etag"), Some("\"1\""));
        let parsed = Json::parse(&created.body_text()).unwrap();
        assert_eq!(parsed["library"].as_str(), Some("api_demo"));
        assert_eq!(parsed["cells_parsed"].as_f64(), Some(1.0));
        assert_eq!(parsed["cells_mapped"].as_f64(), Some(1.0));
        assert_eq!(
            parsed["elements"].as_array().unwrap()[0].as_str(),
            Some("api_demo/INVX1")
        );

        // The element answers on the element resource and the library
        // listing immediately.
        let element = get(&app1, "/api/v1/elements/api_demo/INVX1");
        assert_eq!(element.status(), Status::Ok, "{}", element.body_text());
        let listed = get(&app1, "/api/v1/libraries");
        let parsed = Json::parse(&listed.body_text()).unwrap();
        let entry = &parsed["libraries"].as_array().unwrap()[0];
        assert_eq!(entry["library"].as_str(), Some("api_demo"));
        assert_eq!(entry["cells_mapped"].as_f64(), Some(1.0));

        // The detail view carries provenance and element names, and a
        // repeat answers bit-identically from the cached body.
        let detail = get(&app1, "/api/v1/libraries/api_demo");
        assert_eq!(detail.status(), Status::Ok, "{}", detail.body_text());
        let parsed = Json::parse(&detail.body_text()).unwrap();
        assert_eq!(parsed["source_hash"].as_str().map(str::len), Some(16));
        assert_eq!(
            parsed["elements"].as_array().unwrap()[0].as_str(),
            Some("api_demo/INVX1")
        );
        let again = get(&app1, "/api/v1/libraries/api_demo");
        assert_eq!(again.body_text(), detail.body_text());

        // A design can drive the imported cell end to end.
        let mut sheet = Sheet::new("d");
        sheet.set_global("vdd", "1.1").unwrap();
        sheet.set_global("f", "1e9").unwrap();
        sheet
            .add_element_row("inv", "api_demo/INVX1", [("activity", "0.5")])
            .unwrap();
        put(
            &app1,
            "/api/v1/designs/a/d",
            &sheet.to_json().to_string(),
            None,
        );
        let played = post(&app1, "/api/v1/designs/a/d/play", "");
        assert_eq!(played.status(), Status::Ok, "{}", played.body_text());
        let parsed = Json::parse(&played.body_text()).unwrap();
        assert!(parsed["report"]["total_w"].as_f64().unwrap() > 0.0);

        // Restart: a fresh app over the same data directory reloads the
        // import from the store and the element still resolves.
        drop(app1);
        let app2 = PowerPlayApp::new(ucb_library(), dir);
        let element = get(&app2, "/api/v1/elements/api_demo/INVX1");
        assert_eq!(
            element.status(),
            Status::Ok,
            "import must survive restart: {}",
            element.body_text()
        );
        let played = post(&app2, "/api/v1/designs/a/d/play", "");
        assert_eq!(played.status(), Status::Ok, "{}", played.body_text());
    }

    #[test]
    fn malformed_library_answers_400_with_e017_diagnostics() {
        let app = app("libbad");
        let bad = post(&app, "/api/v1/libraries", "library (broken) {\n  cell (X {");
        assert_eq!(bad.status(), Status::BadRequest);
        assert_eq!(error_code(&bad), "unparsable_library");
        let parsed = Json::parse(&bad.body_text()).unwrap();
        let diags = parsed["error"]["diagnostics"]["diagnostics"]
            .as_array()
            .expect("report diagnostics present");
        assert_eq!(diags[0]["code"].as_str(), Some("E017"));
        // Nothing was persisted or registered.
        let listed = get(&app, "/api/v1/libraries");
        let parsed = Json::parse(&listed.body_text()).unwrap();
        assert!(parsed["libraries"].as_array().unwrap().is_empty());
        let missing = get(&app, "/api/v1/libraries/broken");
        assert_eq!(missing.status(), Status::NotFound);
    }

    #[test]
    fn revisions_report_the_history_floor() {
        let app = app("floor");
        let body = sheet_json();
        put(&app, "/api/v1/designs/a/d", &body, None);
        put(&app, "/api/v1/designs/a/d", &body, Some("\"1\""));

        // Full history retained: the floor is zero.
        let listed = Json::parse(&get(&app, "/api/v1/designs/a/d/revisions").body_text()).unwrap();
        assert_eq!(listed["floor"].as_f64(), Some(0.0));

        // Delete, recreate: the new lineage starts past the erased
        // revisions, and the floor records what can never be rolled
        // back to.
        app.handle(&Request::new(Method::Delete, "/api/v1/designs/a/d"));
        let recreated = put(&app, "/api/v1/designs/a/d", &body, None);
        assert_eq!(recreated.header("etag"), Some("\"3\""));
        let listed = Json::parse(&get(&app, "/api/v1/designs/a/d/revisions").body_text()).unwrap();
        assert_eq!(listed["current"].as_f64(), Some(3.0));
        assert_eq!(listed["floor"].as_f64(), Some(2.0));
        let revs: Vec<f64> = listed["revisions"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r.as_f64().unwrap())
            .collect();
        assert_eq!(revs, vec![3.0]);
    }

    #[test]
    fn route_index_lists_v1_and_deprecated_routes() {
        let app = app("index");
        let index = get(&app, "/api/v1");
        assert_eq!(index.status(), Status::Ok);
        let parsed = Json::parse(&index.body_text()).unwrap();
        assert_eq!(parsed["version"].as_str(), Some("v1"));
        assert_eq!(parsed["legacy_mode"].as_str(), Some("warn"));
        let routes = parsed["routes"].as_array().unwrap();
        let find = |method: &str, path: &str| {
            routes
                .iter()
                .find(|r| r["method"].as_str() == Some(method) && r["path"].as_str() == Some(path))
                .unwrap_or_else(|| panic!("{method} {path} missing from index"))
        };
        let events = find("GET", "/api/v1/designs/{user}/{name}/events");
        assert_eq!(events["deprecated"].as_bool(), Some(false));
        let legacy = find("GET", "/api/sweep");
        assert_eq!(legacy["deprecated"].as_bool(), Some(true));
        assert_eq!(legacy["sunset"].as_bool(), Some(false));
        assert_eq!(
            legacy["successor"].as_str(),
            Some("/api/v1/designs/{user}/{name}/sweep")
        );
        // /api/design answers on both methods; both are indexed.
        find("GET", "/api/design");
        find("POST", "/api/design");
    }

    #[test]
    fn legacy_off_sunsets_with_410_and_successor_link() {
        let app = app("sunset");
        app.set_legacy_mode(LegacyMode::Off);
        let gone = get(&app, "/api/library");
        assert_eq!(gone.status(), Status::Gone);
        assert_eq!(error_code(&gone), "gone");
        assert_eq!(gone.header("deprecation"), Some("true"));
        assert_eq!(
            gone.header("link"),
            Some("</api/v1/library>; rel=\"successor-version\"")
        );
        // The remaining-traffic counter still counts sunset hits.
        let metrics = get(&app, "/metrics").body_text();
        assert!(
            metrics.contains("powerplay_web_legacy_api_total{route=\"/api/library\"}"),
            "{metrics}"
        );
        // The index reflects the switch; v1 routes are untouched.
        let parsed = Json::parse(&get(&app, "/api/v1").body_text()).unwrap();
        assert_eq!(parsed["legacy_mode"].as_str(), Some("off"));
        assert_eq!(get(&app, "/api/v1/library").status(), Status::Ok);

        // `on` serves the legacy route bare, no deprecation headers.
        app.set_legacy_mode(LegacyMode::On);
        let bare = get(&app, "/api/library");
        assert_eq!(bare.status(), Status::Ok);
        assert_eq!(bare.header("deprecation"), None);
    }

    #[test]
    fn stats_resource_serializes_the_telemetry_snapshot() {
        let app = app("stats");
        put(&app, "/api/v1/designs/a/d", &sheet_json(), None);
        let stats = get(&app, "/api/v1/stats");
        assert_eq!(stats.status(), Status::Ok);
        let parsed = Json::parse(&stats.body_text()).unwrap();
        assert!(!parsed["counters"].as_array().unwrap().is_empty());
        assert!(parsed["histograms"].as_array().is_some());
    }

    #[test]
    fn sensitivities_accepts_a_sheet_body() {
        let app = app("sensbody");
        let ranked = post(&app, "/api/v1/sensitivities", &sheet_json());
        assert_eq!(ranked.status(), Status::Ok, "{}", ranked.body_text());
        let parsed = Json::parse(&ranked.body_text()).unwrap();
        let ranking = parsed["sensitivities"].as_array().unwrap();
        assert!(!ranking.is_empty());
        assert!(ranking[0]["global"].as_str().is_some());
        assert!(ranking[0]["sensitivity"].as_f64().is_some());

        let bad = post(&app, "/api/v1/sensitivities", "{\"not\": \"a sheet\"}");
        assert_eq!(bad.status(), Status::BadRequest);
        assert_eq!(error_code(&bad), "invalid_body");
    }

    #[test]
    fn model_upload_registers_a_usable_element() {
        let app = app("models");
        let model = r#"{
            "name": "custom/alu16",
            "class": "computation",
            "doc": "uploaded via the v1 API",
            "params": [{"name": "bits", "default": 16, "doc": "word width"}],
            "model": {"cap_full": "bits * 0.4e-12", "static_current": "1e-9"}
        }"#;
        let created = post(&app, "/api/v1/models", model);
        assert_eq!(created.status(), Status::Created, "{}", created.body_text());
        assert_eq!(
            created.header("location"),
            Some("/api/v1/elements/custom/alu16")
        );
        // The element answers on the element resource and drives a
        // design end to end.
        let element = get(&app, "/api/v1/elements/custom/alu16");
        assert_eq!(element.status(), Status::Ok);
        let mut sheet = Sheet::new("d");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2e6").unwrap();
        sheet
            .add_element_row("alu", "custom/alu16", [("bits", "32")])
            .unwrap();
        put(
            &app,
            "/api/v1/designs/a/d",
            &sheet.to_json().to_string(),
            None,
        );
        let played = post(&app, "/api/v1/designs/a/d/play", "");
        assert_eq!(played.status(), Status::Ok, "{}", played.body_text());

        // A model with a broken formula is refused with a clean 400.
        let bad = post(
            &app,
            "/api/v1/models",
            r#"{"name": "custom/bad", "class": "computation", "model": {"cap_full": "((("}}"#,
        );
        assert_eq!(bad.status(), Status::BadRequest);
        assert_eq!(error_code(&bad), "invalid_body");
        assert_eq!(
            get(&app, "/api/v1/elements/custom/bad").status(),
            Status::NotFound
        );
    }

    #[test]
    fn event_stream_prologue_carries_snapshot_or_replay() {
        let app = app("events");
        let body = sheet_json();
        put(&app, "/api/v1/designs/a/d", &body, None);
        put(&app, "/api/v1/designs/a/d", &body, Some("\"1\""));

        // A fresh subscriber gets a snapshot of the current revision.
        let stream = get(&app, "/api/v1/designs/a/d/events");
        assert_eq!(stream.status(), Status::Ok);
        assert_eq!(stream.header("content-type"), Some("text/event-stream"));
        let prologue = String::from_utf8(stream.body().to_vec()).unwrap();
        assert!(prologue.starts_with("retry: 2000\n\n"), "{prologue}");
        assert!(prologue.contains("event: snapshot\n"), "{prologue}");
        assert!(prologue.contains("id: 2\n"), "{prologue}");

        // A resume from revision 1 replays exactly the missed revision.
        let mut resume = Request::new(Method::Get, "/api/v1/designs/a/d/events");
        resume.set_header("Last-Event-ID", "1");
        let stream = app.handle(&resume);
        let prologue = String::from_utf8(stream.body().to_vec()).unwrap();
        assert!(prologue.contains("event: revision\n"), "{prologue}");
        assert!(prologue.contains("id: 2\n"), "{prologue}");
        assert!(!prologue.contains("event: snapshot\n"), "{prologue}");

        // A resume already at the head replays nothing.
        let mut current = Request::new(Method::Get, "/api/v1/designs/a/d/events");
        current.set_header("Last-Event-ID", "2");
        let stream = app.handle(&current);
        let prologue = String::from_utf8(stream.body().to_vec()).unwrap();
        assert!(!prologue.contains("event:"), "{prologue}");

        // A resume from a revision ahead of this lineage (stale id from
        // a deleted ancestor) resyncs with a snapshot.
        let mut stale = Request::new(Method::Get, "/api/v1/designs/a/d/events");
        stale.set_header("Last-Event-ID", "99");
        let stream = app.handle(&stale);
        let prologue = String::from_utf8(stream.body().to_vec()).unwrap();
        assert!(prologue.contains("event: snapshot\n"), "{prologue}");

        // An unknown design refuses the stream with the envelope.
        let missing = get(&app, "/api/v1/designs/a/nope/events");
        assert_eq!(missing.status(), Status::NotFound);
        assert_eq!(error_code(&missing), "not_found");
    }

    #[test]
    fn legacy_api_advertises_deprecation_and_successor() {
        let app = app("legacy");
        let legacy = get(&app, "/api/library");
        assert_eq!(legacy.status(), Status::Ok);
        assert_eq!(legacy.header("deprecation"), Some("true"));
        assert_eq!(
            legacy.header("link"),
            Some("</api/v1/library>; rel=\"successor-version\"")
        );
        // v1 responses carry no deprecation marker.
        let v1 = get(&app, "/api/v1/library");
        assert_eq!(v1.header("deprecation"), None);
        // The remaining-traffic counter is exported.
        let metrics = get(&app, "/metrics").body_text();
        assert!(
            metrics.contains("powerplay_web_legacy_api_total{route=\"/api/library\"}"),
            "{metrics}"
        );
    }
}
