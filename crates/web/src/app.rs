//! The PowerPlay web application: menu, library browser, element forms,
//! the design spreadsheet, model authoring, and the JSON API.
//!
//! All state lives server-side (registry + per-user design files), and
//! the user is identified by a `user` parameter threaded through every
//! URL — faithful to the 1996 CGI implementation, which had no cookies.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use powerplay_expr::Scope;
use powerplay_json::Json;
use powerplay_library::{ElementClass, ElementModel, LibraryElement, ParamDecl, Registry};
use powerplay_sheet::{ReplayState, RowModel, Sheet, SheetReport};
use powerplay_store::StoreChange;
use powerplay_telemetry::{profile, Counter, Gauge, Histogram};
use powerplay_units::format;

use crate::cache::{self, PlanCache};
use crate::events::{sse_frame, EventHub};
use crate::html;
use crate::http::urlencoded::{encode, encode_pairs};
use crate::http::{Method, Request, Response, Server, ServerHandle, Status};
use crate::session::UserStore;

/// Request-level metrics, registered once in the process-global
/// telemetry registry (transport-level metrics live in the server).
struct HttpMetrics {
    requests_2xx: Counter,
    requests_3xx: Counter,
    requests_4xx: Counter,
    requests_5xx: Counter,
    request_seconds: Histogram,
    inflight: Gauge,
}

impl HttpMetrics {
    fn class_of(&self, code: u16) -> &Counter {
        match code {
            200..=299 => &self.requests_2xx,
            300..=399 => &self.requests_3xx,
            400..=499 => &self.requests_4xx,
            _ => &self.requests_5xx,
        }
    }
}

fn http_metrics() -> &'static HttpMetrics {
    static METRICS: OnceLock<HttpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = powerplay_telemetry::global();
        let counter = |class: &str| {
            g.counter_with(
                "powerplay_http_requests_total",
                &[("class", class)],
                "Requests handled, by status class",
            )
        };
        HttpMetrics {
            requests_2xx: counter("2xx"),
            requests_3xx: counter("3xx"),
            requests_4xx: counter("4xx"),
            requests_5xx: counter("5xx"),
            request_seconds: g.histogram(
                "powerplay_http_request_seconds",
                "Wall time routing one request to its response",
            ),
            inflight: g.gauge(
                "powerplay_http_inflight",
                "Requests currently being handled",
            ),
        }
    })
}

/// Compiled plans the app keeps warm; a handful of designs per active
/// user, far beyond what one 1996-scale instance needs.
const PLAN_CACHE_CAPACITY: usize = 32;

/// The reserved store shard holding imported Liberty libraries as
/// revisioned JSON documents. The leading underscore keeps it out of
/// the way of real usernames in the UI; it passes the store's name
/// validator like any other shard, so imports share the WAL, snapshot,
/// and crash-recovery machinery with user designs. Public so the CLI
/// inspector can read the same shard.
pub const LIBRARY_SHARD: &str = "_libraries";

/// How the deprecated pre-v1 `/api/*` routes answer (the sunset
/// switch, `serve --legacy-api=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegacyMode {
    /// Answer normally, no deprecation headers (for deployments whose
    /// clients choke on unknown headers).
    On,
    /// Answer normally but advertise `Deprecation` + successor `Link`
    /// headers (the default).
    Warn,
    /// Refuse with `410 Gone` carrying the successor `Link`.
    Off,
}

impl LegacyMode {
    /// Parses the `--legacy-api=` flag value.
    pub fn parse(s: &str) -> Option<LegacyMode> {
        match s {
            "on" => Some(LegacyMode::On),
            "warn" => Some(LegacyMode::Warn),
            "off" => Some(LegacyMode::Off),
            _ => None,
        }
    }

    /// The flag spelling, for the route index.
    pub fn as_str(self) -> &'static str {
        match self {
            LegacyMode::On => "on",
            LegacyMode::Warn => "warn",
            LegacyMode::Off => "off",
        }
    }
}

/// The application: a shared model registry plus the user store.
pub struct PowerPlayApp {
    pub(crate) registry: RwLock<Registry>,
    pub(crate) store: UserStore,
    /// Compiled plans + `/api/design` bodies keyed by design revision
    /// (stored designs) or content hash (unsaved posts) and registry
    /// generation (see [`crate::cache`]).
    pub(crate) plan_cache: PlanCache,
    /// Fan-out hub for `GET .../events` SSE streams, fed by the store's
    /// change hook. `Arc` so stream-open callbacks can subscribe after
    /// the handler returned.
    pub(crate) events: Arc<EventHub>,
    /// Per-design incremental-replay baselines for revision-event
    /// reports: consecutive commits against an unchanged plan replay
    /// only the dirty rows.
    replay: Mutex<HashMap<(String, String), ReplayState>>,
    /// The legacy-API sunset switch.
    legacy: RwLock<LegacyMode>,
    /// HTTP Basic credentials; `None` = open access (the public Berkeley
    /// instance), `Some` = "password-restricted access" per the paper's
    /// protection section.
    credentials: Option<Vec<(String, String)>>,
}

impl PowerPlayApp {
    /// Creates the application with an initial library and a data
    /// directory for user designs.
    ///
    /// # Panics
    ///
    /// Panics if the data directory cannot be created.
    pub fn new(registry: Registry, data_dir: PathBuf) -> Arc<PowerPlayApp> {
        let store = UserStore::open(data_dir).expect("create data directory");
        let registry = Self::with_imported_libraries(registry, &store);
        Self::finish(PowerPlayApp {
            registry: RwLock::new(registry),
            store,
            plan_cache: PlanCache::new(PLAN_CACHE_CAPACITY),
            events: Arc::new(EventHub::new()),
            replay: Mutex::new(HashMap::new()),
            legacy: RwLock::new(LegacyMode::Warn),
            credentials: None,
        })
    }

    /// Wraps the app in its `Arc` and registers the store change hook
    /// feeding the event hub. The hook holds a `Weak` back-reference
    /// (the app owns the store, the store holds the hook — a strong
    /// reference would leak the cycle).
    fn finish(app: PowerPlayApp) -> Arc<PowerPlayApp> {
        let app = Arc::new(app);
        let weak = Arc::downgrade(&app);
        app.store.set_change_hook(Arc::new(move |change| {
            if let Some(app) = weak.upgrade() {
                app.on_store_change(change);
            }
        }));
        app
    }

    /// Merges every element of every persisted Liberty import back into
    /// the registry — `POST /api/v1/libraries` survives a restart the
    /// same way saved designs do. Elements that fail to decode (a store
    /// written by a newer schema) are skipped rather than fatal.
    fn with_imported_libraries(mut registry: Registry, store: &UserStore) -> Registry {
        let Ok(docs) = store.list_docs(LIBRARY_SHARD) else {
            return registry;
        };
        for doc in docs {
            let Ok(Some((_, body))) = store.load_doc(LIBRARY_SHARD, &doc.name) else {
                continue;
            };
            let Some(items) = body["elements"].as_array() else {
                continue;
            };
            for item in items {
                if let Ok(element) = LibraryElement::from_json(item) {
                    registry.insert(element);
                }
            }
        }
        registry
    }

    /// Like [`Self::new`], but every request must carry HTTP Basic
    /// credentials from the given list — the paper's "password-restricted
    /// access" for proprietary designs. (For full isolation, bind the
    /// server to a loopback/firewalled interface or use
    /// [`crate::http::Server::bind_filtered`].)
    ///
    /// # Panics
    ///
    /// Panics if the data directory cannot be created or the credential
    /// list is empty.
    pub fn with_password_protection(
        registry: Registry,
        data_dir: PathBuf,
        credentials: Vec<(String, String)>,
    ) -> Arc<PowerPlayApp> {
        assert!(!credentials.is_empty(), "need at least one credential");
        let store = UserStore::open(data_dir).expect("create data directory");
        let registry = Self::with_imported_libraries(registry, &store);
        Self::finish(PowerPlayApp {
            registry: RwLock::new(registry),
            store,
            plan_cache: PlanCache::new(PLAN_CACHE_CAPACITY),
            events: Arc::new(EventHub::new()),
            replay: Mutex::new(HashMap::new()),
            legacy: RwLock::new(LegacyMode::Warn),
            credentials: Some(credentials),
        })
    }

    fn authorize(&self, req: &Request) -> Result<(), Response> {
        let Some(credentials) = &self.credentials else {
            return Ok(());
        };
        let presented = req
            .header("authorization")
            .and_then(|h| h.strip_prefix("Basic "))
            .and_then(crate::http::base64::decode)
            .map(|bytes| String::from_utf8_lossy(&bytes).into_owned());
        let ok = presented.as_deref().is_some_and(|cred| {
            cred.split_once(':').is_some_and(|(user, password)| {
                credentials.iter().any(|(u, p)| u == user && p == password)
            })
        });
        if ok {
            Ok(())
        } else {
            let mut response =
                Response::error(Status::Unauthorized, "this PowerPlay instance is private");
            response.set_header("WWW-Authenticate", "Basic realm=\"PowerPlay\"");
            Err(response)
        }
    }

    /// Read access to the registry (tests, remote merge).
    pub fn registry(&self) -> &RwLock<Registry> {
        &self.registry
    }

    /// The design store.
    pub fn store(&self) -> &UserStore {
        &self.store
    }

    /// The SSE fan-out hub (tests, the events endpoint).
    pub fn events(&self) -> &Arc<EventHub> {
        &self.events
    }

    /// Flips the legacy-API sunset switch (`serve --legacy-api=`).
    pub fn set_legacy_mode(&self, mode: LegacyMode) {
        *self.legacy.write() = mode;
    }

    /// The current legacy-API mode.
    pub fn legacy_mode(&self) -> LegacyMode {
        *self.legacy.read()
    }

    /// The store change hook: turns every committed design mutation
    /// into an SSE event on its `(user, design)` topic. Runs inside the
    /// shard's write lock (ordering guarantee), so it must not call
    /// back into the store — everything here works from the committed
    /// sheet it was handed plus the plan cache and registry.
    fn on_store_change(&self, change: &StoreChange<'_>) {
        match change {
            StoreChange::Saved {
                user,
                design,
                rev,
                sheet,
            } => {
                // Library-shard documents are not designs; their
                // "saves" are Liberty imports with no spreadsheet to
                // report on.
                if user.starts_with('_') {
                    return;
                }
                let committed = Instant::now();
                let report = self.revision_report(user, design, *rev, sheet);
                let data = Json::object([
                    ("user", Json::from(*user)),
                    ("name", Json::from(*design)),
                    ("rev", Json::from(*rev as f64)),
                    ("author", Json::from(*user)),
                    ("etag", Json::from(format!("\"{rev}\""))),
                    ("report", report.unwrap_or(Json::Null)),
                ]);
                let frame = sse_frame("revision", Some(*rev), &data.to_string());
                self.events.publish(user, design, *rev, frame, committed);
            }
            StoreChange::Deleted { user, design, rev } => {
                if user.starts_with('_') {
                    return;
                }
                // No new revision is minted, so the event carries no id
                // (and is not retained for replay): late joiners see
                // the design's absence in their snapshot instead.
                let data = Json::object([
                    ("user", Json::from(*user)),
                    ("name", Json::from(*design)),
                    ("rev", Json::from(*rev as f64)),
                ]);
                let frame = sse_frame("deleted", None, &data.to_string());
                self.events.publish_transient(user, design, frame);
            }
        }
    }

    /// The delta-replayed report for a freshly committed revision, as
    /// the JSON shape `/api/v1/.../play` answers with. Shares the plan
    /// cache with every other consumer; the per-design [`ReplayState`]
    /// means a commit whose compiled plan is already warm (a rollback
    /// to a cached revision, a repeated save) re-evaluates only dirty
    /// rows. An unevaluable design yields `None` — the event still
    /// announces the revision.
    fn revision_report(&self, user: &str, design: &str, rev: u64, sheet: &Sheet) -> Option<Json> {
        let key = self.stored_key(user, design, rev);
        let plan = self.plan_for(key, sheet);
        let report = {
            let mut states = self.replay.lock();
            let state = states
                .entry((user.to_owned(), design.to_owned()))
                .or_default();
            plan.replay_delta(state, &[]).ok()?
        };
        let rows: Json = report
            .rows()
            .iter()
            .map(|r| {
                Json::object([
                    ("name", Json::from(r.name())),
                    ("power_w", Json::from(r.power().value())),
                ])
            })
            .collect();
        Some(Json::object([
            ("total_w", Json::from(report.total_power().value())),
            ("rows", rows),
        ]))
    }

    /// Binds an HTTP server for this app and starts it.
    ///
    /// # Errors
    ///
    /// Returns the socket-binding error, if any.
    pub fn serve(self: &Arc<Self>, addr: &str) -> std::io::Result<ServerHandle> {
        self.serve_with(addr, crate::http::ServerConfig::default())
    }

    /// Like [`Self::serve`] but with explicit reactor/pool sizing —
    /// worker count, shed thresholds, deadlines — for deployments and
    /// the load bench.
    ///
    /// # Errors
    ///
    /// Returns the socket-binding error, if any.
    pub fn serve_with(
        self: &Arc<Self>,
        addr: &str,
        config: crate::http::ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let app = Arc::clone(self);
        Ok(Server::bind(addr, move |req| app.handle(req))?
            .with_config(config)
            .start())
    }

    /// Handles one request: the telemetry middleware (in-flight gauge,
    /// latency histogram, status-class counters, a profile span) around
    /// [`Self::route`]. Pure, so tests can drive the app without sockets.
    pub fn handle(&self, req: &Request) -> Response {
        let metrics = http_metrics();
        metrics.inflight.add(1);
        let _span = profile::span_lazy(|| format!("{} {}", req.method(), req.path()));
        let timer = metrics.request_seconds.start_timer();
        let response = self.route(req);
        timer.stop();
        metrics.class_of(response.status().code()).inc();
        metrics.inflight.sub(1);
        response
    }

    /// Routes one request to its page or API handler.
    fn route(&self, req: &Request) -> Response {
        if let Err(denied) = self.authorize(req) {
            return denied;
        }
        // The versioned API namespace has its own resource router.
        if req.path() == "/api/v1" || req.path().starts_with("/api/v1/") {
            return crate::api_v1::respond(self, req);
        }
        let result = match (req.method(), req.path()) {
            (Method::Get, "/") => Ok(self.login_page()),
            (Method::Get, "/help") => Ok(self.help_page()),
            (Method::Post, "/login") => self.login(req),
            (Method::Get, "/menu") => self.menu(req),
            (Method::Get, "/library") => self.library_page(req),
            (Method::Get, "/element") => self.element_form(req),
            (Method::Post, "/element/eval") => self.element_eval(req),
            (Method::Get, "/doc") => self.doc_page(req),
            (Method::Get, "/model/new") => self.model_form(req),
            (Method::Post, "/model/new") => self.model_create(req),
            (Method::Post, "/design/new") => self.design_new(req),
            (Method::Get, "/design") => self.design_page(req),
            (Method::Post, "/design/play") => self.design_play(req),
            (Method::Post, "/design/set_global") => self.design_set_global(req),
            (Method::Post, "/design/add_row") => self.design_add_row(req),
            (Method::Post, "/design/remove_row") => self.design_remove_row(req),
            (Method::Post, "/design/lump") => self.design_lump(req),
            (Method::Get, "/design/sub") => self.design_sub(req),
            (Method::Get, "/api/library") => Ok(self.api_library()),
            (Method::Get, "/api/element") => self.api_element(req),
            (Method::Get, "/api/design") => self.api_design(req),
            (Method::Post, "/api/design") => self.api_design_post(req),
            (Method::Get, "/api/lint") => self.api_lint_get(req),
            (Method::Post, "/api/lint") => self.api_lint_post(req),
            (Method::Get, "/api/sweep") => self.api_sweep(req),
            (Method::Get, "/api/sensitivities") => self.api_sensitivities(req),
            (Method::Get, "/agent") => self.agent_page(req),
            (Method::Get, "/metrics") => Ok(Self::metrics_exposition()),
            (Method::Get, "/stats") => Ok(Self::stats_page()),
            (Method::Get, _) => Err(Response::error(Status::NotFound, "no such page")),
            _ => Err(Response::error(Status::NotFound, "no such action")),
        };
        self.decorate_legacy(req, result.unwrap_or_else(|error| error))
    }

    /// The pre-v1 API routes and their v1 successors. They keep
    /// answering (existing scripts and the demo UI depend on them) but
    /// every response now advertises the deprecation and the counter
    /// below measures remaining traffic.
    pub(crate) const LEGACY_API_ROUTES: &'static [(&'static str, &'static str)] = &[
        ("/api/library", "/api/v1/library"),
        ("/api/element", "/api/v1/elements/{name}"),
        ("/api/design", "/api/v1/designs/{user}/{name}"),
        ("/api/lint", "/api/v1/designs/{user}/{name}/lint"),
        ("/api/sweep", "/api/v1/designs/{user}/{name}/sweep"),
        (
            "/api/sensitivities",
            "/api/v1/designs/{user}/{name}/sensitivities",
        ),
    ];

    /// Applies the sunset switch to deprecated `/api/*` responses. The
    /// per-route traffic counter counts in *every* mode — it is the
    /// evidence for whether `off` is safe to flip — and the successor
    /// `Link` rides on both the warning and the 410.
    fn decorate_legacy(&self, req: &Request, mut response: Response) -> Response {
        let Some((route, successor)) = Self::LEGACY_API_ROUTES
            .iter()
            .find(|(path, _)| *path == req.path())
        else {
            return response;
        };
        powerplay_telemetry::global()
            .counter_with(
                "powerplay_web_legacy_api_total",
                &[("route", route)],
                "Requests to deprecated pre-v1 API routes",
            )
            .inc();
        let link = format!("<{successor}>; rel=\"successor-version\"");
        match self.legacy_mode() {
            LegacyMode::On => response,
            LegacyMode::Warn => {
                response.set_header("Deprecation", "true");
                response.set_header("Link", &link);
                response
            }
            LegacyMode::Off => {
                let mut gone = Response::json_with_status(
                    Status::Gone,
                    Json::object([(
                        "error",
                        Json::object([
                            ("code", Json::from("gone")),
                            (
                                "message",
                                Json::from(format!(
                                    "this deprecated route was sunset; use {successor}"
                                )),
                            ),
                        ]),
                    )])
                    .to_string(),
                );
                gone.set_header("Deprecation", "true");
                gone.set_header("Link", &link);
                gone
            }
        }
    }

    // --- helpers ---------------------------------------------------------

    fn bad(msg: impl std::fmt::Display) -> Response {
        Response::error(Status::BadRequest, &msg.to_string())
    }

    /// A 400 whose body is a machine-readable lint report — evaluation
    /// failures answer with the same `{code, path, message}` shape the
    /// static analyzer uses.
    fn bad_play(err: &powerplay_sheet::EvaluateSheetError) -> Response {
        let report: powerplay_lint::LintReport =
            std::iter::once(powerplay_lint::diagnostic_for_play_error(err)).collect();
        Response::json_with_status(Status::BadRequest, report.to_json().to_string())
    }

    fn user_of(req: &Request) -> Result<String, Response> {
        req.query_param("user")
            .or_else(|| req.form_param("user"))
            .filter(|u| !u.is_empty())
            .ok_or_else(|| Self::bad("identify yourself first (missing `user`)"))
    }

    /// Loads a stored design as `(revision, sheet)`.
    fn load_design(&self, user: &str, design: &str) -> Result<(u64, Sheet), Response> {
        match self.store.load(user, design) {
            Ok(Some((rev, sheet))) => Ok((rev, (*sheet).clone())),
            Ok(None) => Err(Response::error(
                Status::NotFound,
                &format!("no design `{design}` for user `{user}`"),
            )),
            Err(e) => Err(Self::bad(e)),
        }
    }

    /// The plan-cache key for a stored design: `(user, name, rev)` plus
    /// the registry generation — no per-request JSON serialization or
    /// content hashing (the store guarantees revision immutability).
    pub(crate) fn stored_key(&self, user: &str, design: &str, rev: u64) -> u64 {
        PlanCache::rev_key(user, design, rev, self.registry.read().generation())
    }

    fn design_url(user: &str, design: &str) -> String {
        format!(
            "/design?{}",
            encode_pairs([("user", user), ("name", design)])
        )
    }

    // --- pages ------------------------------------------------------------

    fn login_page(&self) -> Response {
        let body = format!(
            "<p>PowerPlay tracks each individual's designs and preferences; \
             please identify yourself.</p>{}",
            html::form("/login", &html::text_input("user", "", "Username"), "Enter"),
        );
        Response::html(html::page("PowerPlay", &body))
    }

    /// The tutorial/help pages the paper hyperlinks from every screen.
    fn help_page(&self) -> Response {
        let body = "\
<h2>Tutorial: the three-minute estimate</h2>\
<ol>\
<li><b>Identify yourself</b> on the front page; PowerPlay keeps your \
designs and defaults on the server.</li>\
<li><b>Browse the library</b> and open an element. Every model is a set \
of formulas over its parameters and the reserved globals <code>vdd</code> \
(supply, volts) and <code>f</code> (access rate, hertz).</li>\
<li><b>Compute</b>: the input form evaluates instantly; adjust \
parameters and recompute as often as you like.</li>\
<li><b>Add to design</b>: results save as a row of your design \
spreadsheet. Row parameters are formulas — <code>f / 16</code> gives a \
row one-sixteenth of the global rate, and <code>P_other_row</code> / \
<code>A_other_row</code> reference another row's computed power (watts) \
or area (square metres), e.g. a DC-DC converter's load.</li>\
<li><b>PLAY</b> recomputes the whole hierarchy. Sub-sheet rows hyperlink \
to their own spreadsheets.</li>\
<li><b>Re-use</b>: lump any design into a single macro; it appears in \
the library and can be fetched by remote sites via \
<code>/api/library</code>.</li>\
</ol>\
<h2>Defining models</h2>\
<p>Use <i>Define a new model</i>: name, class, parameters \
(<code>name=default</code>), and any of: full-rail capacitance [F], \
reduced-swing capacitance [F] + swing [V], static current [A], direct \
power [W], area [m2], delay [s]. Formulas accept SI-scaled literals \
(<code>253f</code>, <code>2MHz</code>), arithmetic, comparisons and \
functions (<code>min, max, sqrt, log2, ceil, if, ...</code>).</p>\
<h2>Accuracy</h2>\
<p>At this abstraction level expect estimates within an octave of the \
eventual implementation; neglecting signal correlations (the default) \
errs conservatively high.</p>";
        Response::html(html::page("PowerPlay Help", body))
    }

    fn login(&self, req: &Request) -> Result<Response, Response> {
        let user = req
            .form_param("user")
            .filter(|u| !u.is_empty())
            .ok_or_else(|| Self::bad("username required"))?;
        Ok(Response::redirect(&format!(
            "/menu?{}",
            encode_pairs([("user", user.as_str())])
        )))
    }

    fn menu(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let designs = self.store.list(&user).map_err(Self::bad)?;
        let design_items: String = designs
            .iter()
            .map(|d| {
                format!(
                    "<li>{} <small>(rev {})</small></li>",
                    html::link(&Self::design_url(&user, &d.name), &d.name),
                    d.rev,
                )
            })
            .collect();
        let body = format!(
            "<h2>Main Menu — {user}</h2>\
             <ul>\
             <li>{lib}</li>\
             <li>{model}</li>\
             <li>{api}</li>\
             <li>{help}</li>\
             </ul>\
             <h3>Your designs</h3><ul>{design_items}</ul>\
             {new_design}",
            user = html::escape(&user),
            lib = html::link(
                &format!("/library?user={}", encode(&user)),
                "Browse model library"
            ),
            model = html::link(
                &format!("/model/new?user={}", encode(&user)),
                "Define a new model"
            ),
            api = html::link("/api/library", "Library as JSON (remote access)"),
            help = html::link("/help", "Tutorial and help pages"),
            new_design = html::form(
                "/design/new",
                &format!(
                    "{}{}",
                    html::hidden_input("user", &user),
                    html::text_input("name", "untitled", "New design name")
                ),
                "Create design",
            ),
        );
        Ok(Response::html(html::page("PowerPlay Main Menu", &body)))
    }

    fn library_page(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let registry = self.registry.read();
        let mut body = String::new();
        for class in ElementClass::ALL {
            let elements = registry.by_class(class);
            if elements.is_empty() {
                continue;
            }
            body.push_str(&format!("<h2>{}</h2>", html::escape(&class.to_string())));
            let rows: Vec<Vec<String>> = elements
                .iter()
                .map(|e| {
                    vec![
                        html::link(
                            &format!(
                                "/element?{}",
                                encode_pairs([("name", e.name()), ("user", user.as_str())])
                            ),
                            e.name(),
                        ),
                        html::escape(e.doc()),
                        html::link(&format!("/doc?name={}", encode(e.name())), "doc"),
                    ]
                })
                .collect();
            body.push_str(&html::table(&["Element", "Description", ""], &rows));
        }
        Ok(Response::html(html::page("Model Library", &body)))
    }

    fn element_form(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let name = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let registry = self.registry.read();
        let element = registry
            .get(&name)
            .ok_or_else(|| Response::error(Status::NotFound, "unknown element"))?;

        let mut inputs = String::new();
        inputs.push_str(&html::hidden_input("user", &user));
        inputs.push_str(&html::hidden_input("element", element.name()));
        inputs.push_str(&html::text_input("vdd", "1.5", "Supply voltage vdd [V]"));
        inputs.push_str(&html::text_input("f", "2e6", "Access rate f [Hz]"));
        for p in element.params() {
            inputs.push_str(&html::text_input(
                &format!("p_{}", p.name),
                &p.default.to_string(),
                &format!("{} — {}", p.name, p.doc),
            ));
        }
        let body = format!(
            "<p>{}</p>{}<p>{}</p>",
            html::escape(element.doc()),
            html::form("/element/eval", &inputs, "Compute"),
            html::link(
                &format!("/doc?name={}", encode(element.name())),
                "documentation"
            ),
        );
        Ok(Response::html(html::page(
            &format!("Element: {}", element.name()),
            &body,
        )))
    }

    /// Builds a scope from the form's `vdd`, `f` and `p_*` fields.
    fn scope_from_form(req: &Request) -> Result<(Scope<'static>, Vec<(String, String)>), Response> {
        let mut scope = Scope::new();
        let mut raw = Vec::new();
        for (key, value) in req.form_pairs() {
            let target = if key == "vdd" || key == "f" {
                key.clone()
            } else if let Some(param) = key.strip_prefix("p_") {
                param.to_owned()
            } else {
                continue;
            };
            let expr = powerplay_expr::Expr::parse(&value)
                .map_err(|e| Self::bad(format!("field `{target}`: {e}")))?;
            let v = expr
                .eval(&scope)
                .map_err(|e| Self::bad(format!("field `{target}`: {e}")))?;
            scope.set(target.clone(), v);
            raw.push((target, value));
        }
        Ok((scope, raw))
    }

    fn element_eval(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let name = req
            .form_param("element")
            .ok_or_else(|| Self::bad("missing `element`"))?;
        let registry = self.registry.read();
        let element = registry
            .get(&name)
            .ok_or_else(|| Response::error(Status::NotFound, "unknown element"))?;
        let (scope, raw_params) = Self::scope_from_form(req)?;
        let eval = element.evaluate(&scope).map_err(Self::bad)?;

        let mut rows = vec![vec![
            "Power".to_owned(),
            html::escape(&eval.power.to_string()),
        ]];
        if let Some(e) = eval.energy_per_op {
            rows.push(vec!["Energy/op".into(), html::escape(&e.to_string())]);
        }
        if let Some(a) = eval.area {
            rows.push(vec!["Area".into(), format!("{:.4} mm2", a.value() * 1e6)]);
        }
        if let Some(d) = eval.delay {
            rows.push(vec!["Delay".into(), html::escape(&d.to_string())]);
        }

        // "When satisfied, the user saves the results to a design space
        // spreadsheet."
        let mut add_inputs = String::new();
        add_inputs.push_str(&html::hidden_input("user", &user));
        add_inputs.push_str(&html::hidden_input("element", element.name()));
        for (param, value) in &raw_params {
            if param != "vdd" && param != "f" {
                add_inputs.push_str(&html::hidden_input(&format!("p_{param}"), value));
            }
        }
        add_inputs.push_str(&html::text_input("design", "untitled", "Design"));
        add_inputs.push_str(&html::text_input("row_name", element.name(), "Row name"));

        let body = format!(
            "{}<h2>Save to design spreadsheet</h2>{}<p>{}</p>",
            html::table(&["Quantity", "Value"], &rows),
            html::form("/design/add_row", &add_inputs, "Add to design"),
            html::link(
                &format!(
                    "/element?{}",
                    encode_pairs([("name", element.name()), ("user", user.as_str())])
                ),
                "Adjust parameters",
            ),
        );
        Ok(Response::html(html::page(
            &format!("Results: {}", element.name()),
            &body,
        )))
    }

    fn doc_page(&self, req: &Request) -> Result<Response, Response> {
        let name = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let registry = self.registry.read();
        let element = registry
            .get(&name)
            .ok_or_else(|| Response::error(Status::NotFound, "unknown element"))?;
        let param_rows: Vec<Vec<String>> = element
            .params()
            .iter()
            .map(|p| {
                vec![
                    html::escape(&p.name),
                    p.default.to_string(),
                    html::escape(&p.doc),
                ]
            })
            .collect();
        let model = element.model();
        let mut formula_rows = Vec::new();
        let mut push_formula = |label: &str, e: &Option<powerplay_expr::Expr>| {
            if let Some(e) = e {
                formula_rows.push(vec![label.to_owned(), html::escape(&e.to_string())]);
            }
        };
        push_formula("C switched (full rail) [F]", &model.cap_full);
        push_formula("Static current [A]", &model.static_current);
        push_formula("Direct power [W]", &model.power_direct);
        push_formula("Area [m2]", &model.area);
        push_formula("Delay [s]", &model.delay);
        if let Some((cap, swing)) = &model.cap_partial {
            formula_rows.push(vec![
                "C switched (reduced swing) [F]".into(),
                html::escape(&cap.to_string()),
            ]);
            formula_rows.push(vec!["Swing [V]".into(), html::escape(&swing.to_string())]);
        }
        let body = format!(
            "<p>{}</p><h2>Parameters</h2>{}<h2>Model</h2>{}",
            html::escape(element.doc()),
            html::table(&["Name", "Default", "Description"], &param_rows),
            html::table(&["Quantity", "Formula"], &formula_rows),
        );
        Ok(Response::html(html::page(
            &format!("Documentation: {}", element.name()),
            &body,
        )))
    }

    fn model_form(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let mut inputs = String::new();
        inputs.push_str(&html::hidden_input("user", &user));
        inputs.push_str(&html::text_input("name", "my_block", "Model name"));
        inputs.push_str(&html::text_input(
            "class",
            "computation",
            "Class (computation/storage/controller/interconnect/processor/analog/converter/system)",
        ));
        inputs.push_str(&html::text_input("doc", "", "Documentation"));
        inputs.push_str(&html::text_input(
            "params",
            "bits=8",
            "Parameters (name=default, comma separated)",
        ));
        inputs.push_str(&html::text_input(
            "cap_full",
            "",
            "C switched, full rail [F]",
        ));
        inputs.push_str(&html::text_input(
            "cap_partial",
            "",
            "C switched, reduced swing [F]",
        ));
        inputs.push_str(&html::text_input("swing", "", "Swing [V]"));
        inputs.push_str(&html::text_input(
            "static_current",
            "",
            "Static current [A]",
        ));
        inputs.push_str(&html::text_input("power_direct", "", "Direct power [W]"));
        inputs.push_str(&html::text_input("area", "", "Area [m2]"));
        inputs.push_str(&html::text_input("delay", "", "Delay [s]"));
        let body = format!(
            "<p>Define a model as formulas over its parameters and the \
             reserved globals <code>vdd</code> and <code>f</code>. \
             PowerPlay will accept <b>any</b> model.</p>{}",
            html::form("/model/new", &inputs, "Create model"),
        );
        Ok(Response::html(html::page("New Model", &body)))
    }

    fn model_create(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let name = req
            .form_param("name")
            .filter(|n| !n.is_empty() && !n.contains('/'))
            .ok_or_else(|| Self::bad("model name required (no `/`)"))?;
        let class_id = req.form_param("class").unwrap_or_default();
        let class = ElementClass::from_id(&class_id)
            .ok_or_else(|| Self::bad(format!("unknown class `{class_id}`")))?;
        let doc = req.form_param("doc").unwrap_or_default();

        let mut params = Vec::new();
        if let Some(spec) = req.form_param("params") {
            for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let (pname, default) = item
                    .split_once('=')
                    .ok_or_else(|| Self::bad(format!("parameter `{item}` needs `name=default`")))?;
                let default: f64 = default
                    .trim()
                    .parse()
                    .map_err(|_| Self::bad(format!("bad default in `{item}`")))?;
                params.push(ParamDecl::new(pname.trim(), default, ""));
            }
        }

        let formula = |field: &str| -> Result<Option<powerplay_expr::Expr>, Response> {
            match req.form_param(field).filter(|s| !s.trim().is_empty()) {
                None => Ok(None),
                Some(src) => powerplay_expr::Expr::parse(&src)
                    .map(Some)
                    .map_err(|e| Self::bad(format!("formula `{field}`: {e}"))),
            }
        };
        let cap_partial = match (formula("cap_partial")?, formula("swing")?) {
            (Some(c), Some(s)) => Some((c, s)),
            (None, None) => None,
            _ => return Err(Self::bad("cap_partial and swing must be given together")),
        };
        let model = ElementModel {
            cap_full: formula("cap_full")?,
            cap_partial,
            static_current: formula("static_current")?,
            power_direct: formula("power_direct")?,
            area: formula("area")?,
            delay: formula("delay")?,
        };

        let full_name = format!("{user}/{name}");
        let element = LibraryElement::new(full_name.clone(), class, doc, params, model);
        // Uploads are gated on the linter: Error-severity diagnostics
        // (undeclared variables, unknown functions, constant negative
        // models) reject the model with the full report in the body.
        let report = powerplay_lint::lint_element(&element);
        if report.has_errors() {
            return Err(Response::json_with_status(
                Status::BadRequest,
                report.to_json().to_string(),
            ));
        }
        self.registry.write().insert(element);
        Ok(Response::redirect(&format!(
            "/element?{}",
            encode_pairs([("name", full_name.as_str()), ("user", user.as_str())])
        )))
    }

    // --- designs -----------------------------------------------------------

    fn design_new(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let name = req
            .form_param("name")
            .filter(|n| !n.is_empty())
            .ok_or_else(|| Self::bad("design name required"))?;
        let mut sheet = Sheet::new(name.clone());
        sheet.set_global("vdd", "1.5").expect("literal parses");
        sheet.set_global("f", "2e6").expect("literal parses");
        self.store
            .save(&user, &name, &sheet, None)
            .map_err(Self::bad)?;
        Ok(Response::redirect(&Self::design_url(&user, &name)))
    }

    fn render_design(
        &self,
        user: &str,
        design: &str,
        sheet: &Sheet,
        report: Result<SheetReport, String>,
    ) -> Response {
        let mut body = String::new();

        // Globals, editable.
        body.push_str("<h2>Global parameters</h2>");
        for (gname, expr) in sheet.globals() {
            let inner = format!(
                "{}{}{}{}",
                html::hidden_input("user", user),
                html::hidden_input("design", design),
                html::hidden_input("gname", gname),
                html::text_input("gformula", &expr.to_string(), gname),
            );
            body.push_str(&html::form("/design/set_global", &inner, "Set"));
        }
        let new_global = format!(
            "{}{}{}{}",
            html::hidden_input("user", user),
            html::hidden_input("design", design),
            html::text_input("gname", "", "New parameter"),
            html::text_input("gformula", "", "Formula"),
        );
        body.push_str(&html::form(
            "/design/set_global",
            &new_global,
            "Add parameter",
        ));

        // The spreadsheet.
        match report {
            Ok(report) => {
                body.push_str("<h2>Spreadsheet</h2>");
                let mut rows = Vec::new();
                for (row, row_report) in sheet.rows().iter().zip(report.rows()) {
                    let name_cell = match row.model() {
                        RowModel::SubSheet(_) => html::link(
                            &format!(
                                "/design/sub?{}",
                                encode_pairs([
                                    ("user", user),
                                    ("name", design),
                                    ("path", row.name()),
                                ])
                            ),
                            row.name(),
                        ),
                        RowModel::Element(path) => format!(
                            "{} <small>({})</small>",
                            html::escape(row.name()),
                            html::link(&format!("/doc?name={}", encode(path)), path),
                        ),
                        RowModel::Inline(_) => html::escape(row.name()),
                    };
                    let bindings = row
                        .bindings()
                        .iter()
                        .map(|(p, e)| format!("{p}={e}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let remove = html::form(
                        "/design/remove_row",
                        &format!(
                            "{}{}{}",
                            html::hidden_input("user", user),
                            html::hidden_input("design", design),
                            html::hidden_input("row", row.name()),
                        ),
                        "Remove",
                    );
                    let total = report.total_power().value();
                    let share = if total > 0.0 {
                        format::percent(row_report.power().value() / total)
                    } else {
                        "-".into()
                    };
                    rows.push(vec![
                        name_cell,
                        html::escape(&bindings),
                        row_report
                            .energy_per_op()
                            .map(|e| html::escape(&e.to_string()))
                            .unwrap_or_else(|| "-".into()),
                        html::escape(&row_report.power().to_string()),
                        share,
                        row_report
                            .area()
                            .map(|a| format!("{:.3} mm2", a.value() * 1e6))
                            .unwrap_or_else(|| "-".into()),
                        row_report
                            .delay()
                            .map(|d| html::escape(&d.to_string()))
                            .unwrap_or_else(|| "-".into()),
                        remove,
                    ]);
                }
                let total_area = report
                    .total_area()
                    .map(|a| format!("{:.3} mm2", a.value() * 1e6))
                    .unwrap_or_else(|| "-".into());
                rows.push(vec![
                    "<b>TOTAL</b>".into(),
                    String::new(),
                    String::new(),
                    format!("<b>{}</b>", html::escape(&report.total_power().to_string())),
                    "100.0%".into(),
                    total_area,
                    String::new(),
                    String::new(),
                ]);
                body.push_str(&html::table(
                    &[
                        "Name",
                        "Parameters",
                        "Energy/op",
                        "Power",
                        "%",
                        "Area",
                        "Delay",
                        "",
                    ],
                    &rows,
                ));
            }
            Err(message) => {
                body.push_str(&format!(
                    "<h2>Spreadsheet</h2><p><b>Evaluation error:</b> {}</p>",
                    html::escape(&message)
                ));
            }
        }

        // Static diagnostics: the linter's findings for this sheet,
        // rendered whether or not evaluation succeeded.
        let lint = powerplay_lint::lint_sheet(sheet, &self.registry.read());
        if !lint.is_empty() {
            body.push_str("<h2>Diagnostics</h2>");
            body.push_str(&format!("<p>{}</p>", html::escape(&lint.summary())));
            body.push_str(&lint.render_html());
        }

        // Play button (recompute + redisplay, post-redirect-get).
        body.push_str(&html::form(
            "/design/play",
            &format!(
                "{}{}",
                html::hidden_input("user", user),
                html::hidden_input("design", design),
            ),
            "PLAY",
        ));

        // Add-row and lump forms.
        let add = format!(
            "{}{}{}{}",
            html::hidden_input("user", user),
            html::hidden_input("design", design),
            html::text_input("row_name", "", "Row name"),
            html::text_input("element", "ucb/sram", "Element path"),
        );
        body.push_str("<h2>Add a component</h2>");
        body.push_str(&html::form("/design/add_row", &add, "Add row"));
        body.push_str(&format!(
            "<p>{}</p>",
            html::link(
                &format!("/library?user={}", encode(user)),
                "browse the library"
            ),
        ));
        let lump = format!(
            "{}{}{}",
            html::hidden_input("user", user),
            html::hidden_input("design", design),
            html::text_input(
                "macro_name",
                &format!("{user}/{design}_macro"),
                "Macro name"
            ),
        );
        body.push_str("<h2>Re-use</h2>");
        body.push_str(&html::form("/design/lump", &lump, "Lump into macro"));
        body.push_str(&format!(
            "<p>{}</p>",
            html::link(&format!("/menu?user={}", encode(user)), "back to menu"),
        ));

        // Live collaboration: an EventSource on the v1 event stream
        // refreshes the page when any other session commits a revision.
        // Design/user names are store-validated `[a-zA-Z0-9_-]`, so they
        // embed safely; the URL is still percent-encoded for form.
        body.push_str(&format!(
            r#"<p id="live">Live updates: connecting&hellip;</p>
<script>
(function () {{
  if (!window.EventSource) {{ return; }}
  var live = document.getElementById("live");
  var es = new EventSource("/api/v1/designs/{user}/{design}/events");
  var seen = null;
  es.addEventListener("snapshot", function (e) {{
    seen = JSON.parse(e.data).rev;
    live.textContent = "Live: watching revision " + seen;
  }});
  es.addEventListener("revision", function (e) {{
    var d = JSON.parse(e.data);
    if (seen !== null && d.rev !== seen) {{ es.close(); location.reload(); return; }}
    seen = d.rev;
    live.textContent = "Live: revision " + d.rev;
  }});
  es.addEventListener("conflict", function () {{
    live.textContent = "Live: a concurrent edit was refused (revision conflict)";
  }});
  es.addEventListener("deleted", function () {{
    es.close();
    live.textContent = "Live: this design was deleted";
  }});
  es.addEventListener("bye", function () {{
    es.close();
    live.textContent = "Live: server shut down";
  }});
}})();
</script>"#,
            user = encode(user),
            design = encode(design),
        ));

        Response::html(html::page(&format!("Design: {design}"), &body))
    }

    fn design_page(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let (_, sheet) = self.load_design(&user, &design)?;
        let report = sheet.play(&self.registry.read()).map_err(|e| e.to_string());
        Ok(self.render_design(&user, &design, &sheet, report))
    }

    fn design_play(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .form_param("design")
            .ok_or_else(|| Self::bad("missing `design`"))?;
        // Evaluation happens on GET; Play is post-redirect-get.
        self.load_design(&user, &design)?;
        Ok(Response::redirect(&Self::design_url(&user, &design)))
    }

    fn design_set_global(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .form_param("design")
            .ok_or_else(|| Self::bad("missing `design`"))?;
        let gname = req
            .form_param("gname")
            .filter(|g| !g.is_empty())
            .ok_or_else(|| Self::bad("missing `gname`"))?;
        let gformula = req
            .form_param("gformula")
            .ok_or_else(|| Self::bad("missing `gformula`"))?;
        let (_, mut sheet) = self.load_design(&user, &design)?;
        sheet.set_global(gname, &gformula).map_err(Self::bad)?;
        self.store
            .save(&user, &design, &sheet, None)
            .map_err(Self::bad)?;
        Ok(Response::redirect(&Self::design_url(&user, &design)))
    }

    fn design_add_row(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .form_param("design")
            .ok_or_else(|| Self::bad("missing `design`"))?;
        let element = req
            .form_param("element")
            .filter(|e| !e.is_empty())
            .ok_or_else(|| Self::bad("missing `element`"))?;
        if self.registry.read().get(&element).is_none() {
            return Err(Self::bad(format!("unknown element `{element}`")));
        }
        let row_name = req
            .form_param("row_name")
            .filter(|n| !n.is_empty())
            .unwrap_or_else(|| element.clone());

        let mut sheet = match self.store.load(&user, &design).map_err(Self::bad)? {
            Some((_, sheet)) => (*sheet).clone(),
            None => {
                // The element-results page can save into a fresh design.
                let mut sheet = Sheet::new(design.clone());
                sheet.set_global("vdd", "1.5").expect("literal parses");
                sheet.set_global("f", "2e6").expect("literal parses");
                sheet
            }
        };
        if sheet.row(&row_name).is_some() {
            return Err(Self::bad(format!("row `{row_name}` already exists")));
        }
        let mut row = powerplay_sheet::Row::new(row_name, RowModel::Element(element.clone()));
        for (key, value) in req.form_pairs() {
            if let Some(param) = key.strip_prefix("p_") {
                if !value.trim().is_empty() {
                    row.bind(param, &value)
                        .map_err(|e| Self::bad(format!("binding `{param}`: {e}")))?;
                }
            }
        }
        row.set_doc_link(format!("/doc?name={}", encode(&element)));
        sheet.add_row(row);
        self.store
            .save(&user, &design, &sheet, None)
            .map_err(Self::bad)?;
        Ok(Response::redirect(&Self::design_url(&user, &design)))
    }

    fn design_remove_row(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .form_param("design")
            .ok_or_else(|| Self::bad("missing `design`"))?;
        let row = req
            .form_param("row")
            .ok_or_else(|| Self::bad("missing `row`"))?;
        let (_, mut sheet) = self.load_design(&user, &design)?;
        sheet.remove_row(&row);
        self.store
            .save(&user, &design, &sheet, None)
            .map_err(Self::bad)?;
        Ok(Response::redirect(&Self::design_url(&user, &design)))
    }

    fn design_lump(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .form_param("design")
            .ok_or_else(|| Self::bad("missing `design`"))?;
        let macro_name = req
            .form_param("macro_name")
            .filter(|n| !n.is_empty())
            .ok_or_else(|| Self::bad("missing `macro_name`"))?;
        let (_, sheet) = self.load_design(&user, &design)?;
        let lumped = {
            let registry = self.registry.read();
            sheet
                .to_macro(macro_name.clone(), &registry)
                .map_err(Self::bad)?
        };
        self.registry.write().insert(lumped);
        Ok(Response::redirect(&format!(
            "/element?{}",
            encode_pairs([("name", macro_name.as_str()), ("user", user.as_str())])
        )))
    }

    fn design_sub(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let path = req
            .query_param("path")
            .ok_or_else(|| Self::bad("missing `path`"))?;
        let (_, sheet) = self.load_design(&user, &design)?;

        // Walk the row path ("Custom Hardware/Luminance Chip").
        let mut current = &sheet;
        for segment in path.split('/') {
            let row = current
                .row(segment)
                .ok_or_else(|| Response::error(Status::NotFound, "no such row"))?;
            current = match row.model() {
                RowModel::SubSheet(sub) => sub,
                _ => return Err(Self::bad(format!("row `{segment}` is not a sub-sheet"))),
            };
        }
        let report = sheet.play(&self.registry.read()).map_err(Self::bad)?;
        // Find the nested report along the same path.
        let mut node = &report;
        for segment in path.split('/') {
            node = node
                .row(segment)
                .and_then(|r| r.sub_report())
                .ok_or_else(|| Self::bad("report path mismatch"))?;
        }
        let mut rows = Vec::new();
        for row_report in node.rows() {
            rows.push(vec![
                html::escape(row_report.name()),
                row_report
                    .energy_per_op()
                    .map(|e| html::escape(&e.to_string()))
                    .unwrap_or_else(|| "-".into()),
                html::escape(&row_report.power().to_string()),
            ]);
        }
        let body = format!(
            "<p>Subsystem of {}</p>{}<p>Total: {}</p>",
            html::link(&Self::design_url(&user, &design), &design),
            html::table(&["Name", "Energy/op", "Power"], &rows),
            html::escape(&node.total_power().to_string()),
        );
        Ok(Response::html(html::page(
            &format!("Subsystem: {path}"),
            &body,
        )))
    }

    /// `/agent?item=<data>&<seed>=<value>...` — the Design Agent: plans
    /// and runs the tool flow that produces the requested datum from the
    /// seeded design context (paper: "translates the hyperlink request
    /// for data into a sequence of appropriate tool invocations").
    fn agent_page(&self, req: &Request) -> Result<Response, Response> {
        use crate::agent::{DesignAgent, FnTool};

        let item = req
            .query_param("item")
            .ok_or_else(|| Self::bad("missing `item`"))?;
        let mut agent = DesignAgent::new();
        // Seed the blackboard from every numeric query parameter.
        for (key, value) in req.query_pairs() {
            if key == "item" {
                continue;
            }
            let v: f64 = value
                .parse()
                .map_err(|_| Self::bad(format!("seed `{key}` is not a number")))?;
            agent.seed(key, v);
        }
        // The standard early-estimation flow: block count -> active area
        // -> Rent interconnect capacitance -> interconnect power.
        agent.register(FnTool::new(
            "area_estimator",
            ["block_count"],
            ["active_area_mm2"],
            |b| {
                let blocks = b["block_count"];
                b.insert("active_area_mm2".into(), blocks * 0.0036); // 60 um pitch
                Ok(())
            },
        ));
        agent.register(FnTool::new(
            "rent_wire_estimator",
            ["block_count", "active_area_mm2"],
            ["wire_cap_f"],
            |b| {
                use powerplay_models::interconnect::{
                    InterconnectEstimate, RentParameters, WiringTechnology,
                };
                let est = InterconnectEstimate::new(
                    b["block_count"].max(1.0),
                    RentParameters::RANDOM_LOGIC,
                    WiringTechnology::CMOS_1_2UM,
                );
                b.insert("wire_cap_f".into(), est.switched_cap().value());
                Ok(())
            },
        ));
        agent.register(FnTool::new(
            "power_estimator",
            ["wire_cap_f", "vdd", "f"],
            ["interconnect_power_w"],
            |b| {
                let p = b["wire_cap_f"] * b["vdd"] * b["vdd"] * b["f"];
                b.insert("interconnect_power_w".into(), p);
                Ok(())
            },
        ));

        let plan = agent.plan(&item).map_err(Self::bad)?;
        let value = agent.request(&item).map_err(Self::bad)?;
        let plan_items: String = plan
            .iter()
            .map(|t| format!("<li>{}</li>", html::escape(t)))
            .collect();
        let board_rows: Vec<Vec<String>> = [
            "block_count",
            "active_area_mm2",
            "wire_cap_f",
            "interconnect_power_w",
            "vdd",
            "f",
        ]
        .iter()
        .filter_map(|k| {
            agent
                .value(k)
                .map(|v| vec![k.to_string(), format!("{v:.6e}")])
        })
        .collect();
        let body = format!(
            "<p>Requested datum: <code>{}</code> = <b>{value:.6e}</b></p>\
             <h2>Tool plan</h2><ol>{plan_items}</ol>\
             <h2>Blackboard</h2>{}",
            html::escape(&item),
            html::table(&["Item", "Value"], &board_rows),
        );
        Ok(Response::html(html::page("Design Agent", &body)))
    }

    // --- telemetry ---------------------------------------------------------

    /// `GET /metrics` — the process-global registry in Prometheus text
    /// exposition format 0.0.4, for scrapers.
    fn metrics_exposition() -> Response {
        Response::with_content_type(
            "text/plain; version=0.0.4; charset=utf-8",
            powerplay_telemetry::global().prometheus(),
        )
    }

    /// `GET /stats` — the same registry as a human-readable panel:
    /// counters, gauges, and latency histograms with quantile estimates.
    fn stats_page() -> Response {
        let snap = powerplay_telemetry::global().snapshot();
        let counter_rows: Vec<Vec<String>> = snap
            .counters
            .iter()
            .map(|(name, v)| vec![html::escape(name), v.to_string()])
            .collect();
        let gauge_rows: Vec<Vec<String>> = snap
            .gauges
            .iter()
            .map(|(name, v)| vec![html::escape(name), v.to_string()])
            .collect();
        let quantile = |h: &powerplay_telemetry::HistogramSnapshot, q: f64| {
            h.quantile_seconds(q)
                .filter(|v| v.is_finite())
                .map(|v| format!("{:.3} ms", v * 1e3))
                .unwrap_or_else(|| "-".into())
        };
        let histogram_rows: Vec<Vec<String>> = snap
            .histograms
            .iter()
            .map(|h| {
                vec![
                    html::escape(&h.name),
                    h.count.to_string(),
                    format!("{:.3} s", h.sum_seconds),
                    quantile(h, 0.5),
                    quantile(h, 0.9),
                    quantile(h, 0.99),
                ]
            })
            .collect();
        let body = format!(
            "<p>Live telemetry for this PowerPlay instance. Scrapers \
             should use {metrics}. Latency quantiles are log2-bucket \
             estimates (within 2x).</p>\
             <h2>Counters</h2>{counters}\
             <h2>Gauges</h2>{gauges}\
             <h2>Latency histograms</h2>{histograms}",
            metrics = html::link("/metrics", "/metrics"),
            counters = html::table(&["Series", "Total"], &counter_rows),
            gauges = html::table(&["Series", "Value"], &gauge_rows),
            histograms = html::table(
                &["Series", "Count", "Sum", "p50", "p90", "p99"],
                &histogram_rows,
            ),
        );
        Response::html(html::page("PowerPlay Statistics", &body))
    }

    // --- JSON API (remote model access, Figures 6-7) -------------------------

    fn api_library(&self) -> Response {
        Response::json(self.registry.read().to_json().to_string())
    }

    fn api_element(&self, req: &Request) -> Result<Response, Response> {
        let name = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let registry = self.registry.read();
        let element = registry
            .get(&name)
            .ok_or_else(|| Response::error(Status::NotFound, "unknown element"))?;
        Ok(Response::json(element.to_json().to_string()))
    }

    /// `/api/lint?user=&name=` — the static analyzer's report for a
    /// stored design, as JSON.
    fn api_lint_get(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let (_, sheet) = self.load_design(&user, &design)?;
        let report = powerplay_lint::lint_sheet(&sheet, &self.registry.read());
        Ok(Response::json(report.to_json().to_string()))
    }

    /// `POST /api/lint` with a sheet JSON document as the body — lint a
    /// design without saving it (editor integrations, CI).
    fn api_lint_post(&self, req: &Request) -> Result<Response, Response> {
        let text = String::from_utf8(req.body().to_vec())
            .map_err(|_| Self::bad("body must be UTF-8 sheet JSON"))?;
        let json = Json::parse(&text).map_err(Self::bad)?;
        let sheet = Sheet::from_json(&json).map_err(Self::bad)?;
        let report = powerplay_lint::lint_sheet(&sheet, &self.registry.read());
        Ok(Response::json(report.to_json().to_string()))
    }

    /// `/api/sweep?user=&name=&global=vdd&values=1,1.5,2` — the what-if
    /// machinery over the wire, for scripted exploration.
    fn api_sweep(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let global = req
            .query_param("global")
            .ok_or_else(|| Self::bad("missing `global`"))?;
        let raw_values = req
            .query_param("values")
            .ok_or_else(|| Self::bad("missing `values`"))?;
        let values: Vec<f64> = raw_values
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map_err(|_| Self::bad(format!("bad value `{v}`")))
            })
            .collect::<Result<_, _>>()?;
        let (rev, sheet) = self.load_design(&user, &design)?;
        // The curve depends on the swept global and values as well as
        // the design, so they are folded into the ETag; the plan cache
        // itself is keyed on the stored revision alone, so a vdd sweep
        // and an f sweep of one design share the compiled plan.
        let key = self.stored_key(&user, &design, rev);
        let extra = format!("sweep\u{0}{global}\u{0}{raw_values}");
        let etag = PlanCache::etag(cache::fnv1a_continue(key, extra.as_bytes()));
        if let Some(not_modified) = Self::not_modified(req, &etag) {
            return Ok(not_modified);
        }
        let plan = self.plan_for(key, &sheet);
        let curve = powerplay_sheet::whatif::sweep_compiled(&plan, &global, &values)
            .map_err(|e| Self::bad_play(&e))?;
        let series: Json = curve
            .into_iter()
            .map(|(value, report)| {
                Json::object([
                    ("value", Json::from(value)),
                    ("total_w", Json::from(report.total_power().value())),
                ])
            })
            .collect();
        let mut response = Response::json(
            Json::object([("global", Json::from(global)), ("series", series)]).to_string(),
        );
        response.set_header("ETag", &etag);
        Ok(response)
    }

    /// `/api/sensitivities?user=&name=` — relative sensitivity of total
    /// power to each global, descending by magnitude: the "where should
    /// effort go" ranking, over the wire.
    fn api_sensitivities(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let (rev, sheet) = self.load_design(&user, &design)?;
        let key = self.stored_key(&user, &design, rev);
        let etag = PlanCache::etag(cache::fnv1a_continue(key, b"sensitivities"));
        if let Some(not_modified) = Self::not_modified(req, &etag) {
            return Ok(not_modified);
        }
        let plan = self.plan_for(key, &sheet);
        let sens = powerplay_sheet::whatif::sensitivities_compiled(&plan)
            .map_err(|e| Self::bad_play(&e))?;
        let ranking: Json = sens
            .into_iter()
            .map(|(global, s)| {
                Json::object([
                    ("global", Json::from(global)),
                    ("sensitivity", Json::from(s)),
                ])
            })
            .collect();
        let mut response = Response::json(Json::object([("sensitivities", ranking)]).to_string());
        response.set_header("ETag", &etag);
        Ok(response)
    }

    fn api_design(&self, req: &Request) -> Result<Response, Response> {
        let user = Self::user_of(req)?;
        let design = req
            .query_param("name")
            .ok_or_else(|| Self::bad("missing `name`"))?;
        let (rev, sheet) = self.load_design(&user, &design)?;
        // Stored designs key the cache by `(user, name, rev)` — no
        // per-request serialization or hashing of the sheet JSON.
        self.api_design_response(req, self.stored_key(&user, &design, rev), &sheet)
    }

    /// `POST /api/design` with a sheet JSON document as the body —
    /// evaluate a design without saving it (scripted exploration, CI).
    /// The body is canonicalized before hashing, so formatting
    /// differences do not fragment the cache, and repeated posts of an
    /// unchanged design answer from the cached result.
    fn api_design_post(&self, req: &Request) -> Result<Response, Response> {
        let text = String::from_utf8(req.body().to_vec())
            .map_err(|_| Self::bad("body must be UTF-8 sheet JSON"))?;
        let json = Json::parse(&text).map_err(Self::bad)?;
        let sheet = Sheet::from_json(&json).map_err(Self::bad)?;
        // An unsaved body has no revision; canonicalize and hash the
        // content so formatting differences do not fragment the cache.
        let key = PlanCache::key(
            &sheet.to_json().to_string(),
            self.registry.read().generation(),
        );
        self.api_design_response(req, key, &sheet)
    }

    /// A `304 Not Modified` if the request's `If-None-Match` matches the
    /// ETag the response would carry.
    pub(crate) fn not_modified(req: &Request, etag: &str) -> Option<Response> {
        (req.header("if-none-match") == Some(etag)).then(|| {
            let mut response = Response::new(Status::NotModified);
            response.set_header("ETag", etag);
            response
        })
    }

    /// The compiled plan for a design, from the cache when warm.
    /// Compilation holds the registry read lock only while it runs; the
    /// plan owns shared handles to the elements it needs, so later
    /// (parallel) evaluation never blocks library edits.
    pub(crate) fn plan_for(&self, key: u64, sheet: &Sheet) -> Arc<powerplay_sheet::CompiledSheet> {
        let (plan, _hit) = self.plan_cache.plan_for(key, || {
            powerplay_sheet::CompiledSheet::compile(sheet, &self.registry.read())
        });
        plan
    }

    /// Shared by GET and POST `/api/design`: conditional-GET check,
    /// then the cached body, then compile/replay and cache the result.
    /// `key` is the plan-cache key the caller derived — revision-based
    /// for stored designs, content-based for unsaved POST bodies.
    fn api_design_response(
        &self,
        req: &Request,
        key: u64,
        sheet: &Sheet,
    ) -> Result<Response, Response> {
        let etag = PlanCache::etag(key);
        if let Some(not_modified) = Self::not_modified(req, &etag) {
            return Ok(not_modified);
        }
        if let Some(body) = self.plan_cache.cached_body(key) {
            let mut response = Response::json(String::clone(&body));
            response.set_header("ETag", &etag);
            return Ok(response);
        }
        let plan = self.plan_for(key, sheet);
        let report = plan.play().map_err(|e| Self::bad_play(&e))?;
        let rows: Json = report
            .rows()
            .iter()
            .map(|r| {
                Json::object([
                    ("name", Json::from(r.name())),
                    ("power_w", Json::from(r.power().value())),
                ])
            })
            .collect();
        let body = Json::object([
            ("design", sheet.to_json()),
            (
                "report",
                Json::object([
                    ("total_w", Json::from(report.total_power().value())),
                    ("rows", rows),
                ]),
            ),
        ])
        .to_string();
        self.plan_cache.store_body(key, Arc::new(body.clone()));
        let mut response = Response::json(body);
        response.set_header("ETag", &etag);
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerplay_library::builtin::ucb_library;

    fn app(tag: &str) -> Arc<PowerPlayApp> {
        let dir = std::env::temp_dir().join(format!("powerplay-app-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PowerPlayApp::new(ucb_library(), dir)
    }

    fn get(app: &PowerPlayApp, path: &str) -> Response {
        app.handle(&Request::new(Method::Get, path))
    }

    fn post(app: &PowerPlayApp, path: &str, form: &[(&str, &str)]) -> Response {
        let mut req = Request::new(Method::Post, path);
        req.set_body(
            encode_pairs(form.iter().copied()).into_bytes(),
            "application/x-www-form-urlencoded",
        );
        app.handle(&req)
    }

    #[test]
    fn login_flow() {
        let app = app("login");
        let page = get(&app, "/");
        assert_eq!(page.status(), Status::Ok);
        assert!(page.body_text().contains("identify yourself"));

        let redirect = post(&app, "/login", &[("user", "alice")]);
        assert_eq!(redirect.status(), Status::Found);
        assert_eq!(redirect.header("location"), Some("/menu?user=alice"));

        let menu = get(&app, "/menu?user=alice");
        assert!(menu.body_text().contains("Main Menu"));
        assert!(menu.body_text().contains("alice"));
    }

    #[test]
    fn anonymous_access_is_rejected() {
        let app = app("anon");
        assert_eq!(get(&app, "/menu").status(), Status::BadRequest);
        assert_eq!(get(&app, "/library").status(), Status::BadRequest);
    }

    #[test]
    fn library_and_element_form() {
        let app = app("library");
        let lib = get(&app, "/library?user=alice");
        assert!(lib.body_text().contains("ucb/multiplier"));
        assert!(lib.body_text().contains("storage"));

        let form = get(&app, "/element?name=ucb%2Fmultiplier&user=alice");
        assert_eq!(form.status(), Status::Ok);
        assert!(form.body_text().contains("bw_a"));
        assert!(form.body_text().contains("EQ 20"));

        let missing = get(&app, "/element?name=nope&user=alice");
        assert_eq!(missing.status(), Status::NotFound);
    }

    #[test]
    fn element_evaluation_matches_model() {
        let app = app("eval");
        let result = post(
            &app,
            "/element/eval",
            &[
                ("user", "alice"),
                ("element", "ucb/multiplier"),
                ("vdd", "1.5"),
                ("f", "2e6"),
                ("p_bw_a", "8"),
                ("p_bw_b", "8"),
            ],
        );
        assert_eq!(result.status(), Status::Ok);
        // 64 * 253fF * 1.5^2 * 2MHz = 72.86 uW
        assert!(
            result.body_text().contains("72.86 uW"),
            "body: {}",
            result.body_text()
        );
    }

    #[test]
    fn element_eval_rejects_bad_formulas() {
        let app = app("evalbad");
        let result = post(
            &app,
            "/element/eval",
            &[
                ("user", "alice"),
                ("element", "ucb/multiplier"),
                ("vdd", "1.5 +"),
                ("f", "2e6"),
            ],
        );
        assert_eq!(result.status(), Status::BadRequest);
    }

    #[test]
    fn design_lifecycle() {
        let app = app("design");
        // Create.
        let r = post(&app, "/design/new", &[("user", "alice"), ("name", "lum")]);
        assert_eq!(r.status(), Status::Found);
        // Add rows.
        let r = post(
            &app,
            "/design/add_row",
            &[
                ("user", "alice"),
                ("design", "lum"),
                ("row_name", "LUT"),
                ("element", "ucb/sram"),
                ("p_words", "4096"),
                ("p_bits", "6"),
            ],
        );
        assert_eq!(r.status(), Status::Found);
        let r = post(
            &app,
            "/design/add_row",
            &[
                ("user", "alice"),
                ("design", "lum"),
                ("row_name", "Read Bank"),
                ("element", "ucb/sram"),
                ("p_words", "2048"),
                ("p_bits", "8"),
                ("p_f", "f / 16"),
            ],
        );
        assert_eq!(r.status(), Status::Found);

        // View: spreadsheet renders with powers and total.
        let page = get(&app, "/design?user=alice&name=lum");
        let body = page.body_text();
        assert!(body.contains("LUT"));
        assert!(body.contains("Read Bank"));
        assert!(body.contains("TOTAL"));
        assert!(body.contains("PLAY"));

        // Change a global: vdd to 3.0, power must quadruple.
        let r = post(
            &app,
            "/design/set_global",
            &[
                ("user", "alice"),
                ("design", "lum"),
                ("gname", "vdd"),
                ("gformula", "3.0"),
            ],
        );
        assert_eq!(r.status(), Status::Found);
        let page2 = get(&app, "/design?user=alice&name=lum");
        assert!(page2.body_text().contains("vdd"));

        // Remove a row.
        let r = post(
            &app,
            "/design/remove_row",
            &[("user", "alice"), ("design", "lum"), ("row", "Read Bank")],
        );
        assert_eq!(r.status(), Status::Found);
        let page3 = get(&app, "/design?user=alice&name=lum");
        assert!(!page3.body_text().contains("Read Bank"));
    }

    #[test]
    fn design_page_shows_area_delay_and_help_link() {
        let app = app("areacols");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "Mem"),
                ("element", "ucb/sram"),
                ("p_words", "1024"),
            ],
        );
        let page = get(&app, "/design?user=a&name=d");
        let body = page.body_text();
        assert!(body.contains("<th>Area</th>"), "area column missing");
        assert!(body.contains("<th>Delay</th>"), "delay column missing");
        assert!(body.contains("mm2"), "area values missing");
        assert!(body.contains("ns"), "delay values missing");

        let menu = get(&app, "/menu?user=a");
        assert!(menu.body_text().contains("/help"));
    }

    #[test]
    fn duplicate_rows_rejected() {
        let app = app("duprow");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        let ok = post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "X"),
                ("element", "ucb/register"),
            ],
        );
        assert_eq!(ok.status(), Status::Found);
        let dup = post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "X"),
                ("element", "ucb/register"),
            ],
        );
        assert_eq!(dup.status(), Status::BadRequest);
    }

    #[test]
    fn model_authoring_flow() {
        let app = app("model");
        let r = post(
            &app,
            "/model/new",
            &[
                ("user", "carol"),
                ("name", "widget"),
                ("class", "computation"),
                ("doc", "a custom widget"),
                ("params", "bits=8, gain=2"),
                ("cap_full", "bits * gain * 10f"),
            ],
        );
        assert_eq!(r.status(), Status::Found, "{}", r.body_text());
        assert!(app.registry().read().get("carol/widget").is_some());

        // The new model evaluates through the normal form.
        let result = post(
            &app,
            "/element/eval",
            &[
                ("user", "carol"),
                ("element", "carol/widget"),
                ("vdd", "1"),
                ("f", "1e6"),
                ("p_bits", "8"),
                ("p_gain", "2"),
            ],
        );
        assert_eq!(result.status(), Status::Ok);
        // 8*2*10fF * 1 V^2 * 1 MHz = 160 nW
        assert!(result.body_text().contains("160.0 nW"));
    }

    #[test]
    fn model_authoring_rejects_undeclared_variables() {
        let app = app("modelbad");
        let r = post(
            &app,
            "/model/new",
            &[
                ("user", "carol"),
                ("name", "broken"),
                ("class", "computation"),
                ("cap_full", "mystery * 10f"),
            ],
        );
        assert_eq!(r.status(), Status::BadRequest);
        assert!(r.body_text().contains("mystery"));
    }

    #[test]
    fn api_endpoints_serve_json() {
        let app = app("api");
        let lib = get(&app, "/api/library");
        assert_eq!(lib.header("content-type"), Some("application/json"));
        let parsed = Json::parse(&lib.body_text()).unwrap();
        assert!(parsed.as_array().unwrap().len() > 20);

        let elem = get(&app, "/api/element?name=ucb%2Fsram");
        let parsed = Json::parse(&elem.body_text()).unwrap();
        assert_eq!(parsed["name"].as_str(), Some("ucb/sram"));

        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "R"),
                ("element", "ucb/register"),
            ],
        );
        let design = get(&app, "/api/design?user=a&name=d");
        let parsed = Json::parse(&design.body_text()).unwrap();
        assert!(parsed["report"]["total_w"].as_f64().unwrap() > 0.0);
        assert_eq!(parsed["report"]["rows"][0]["name"].as_str(), Some("R"));
    }

    #[test]
    fn agent_route_plans_and_executes() {
        let app = app("agent");
        let r = get(
            &app,
            "/agent?item=interconnect_power_w&block_count=400&vdd=1.5&f=2e6",
        );
        assert_eq!(r.status(), Status::Ok, "{}", r.body_text());
        let body = r.body_text();
        assert!(body.contains("area_estimator"));
        assert!(body.contains("rent_wire_estimator"));
        assert!(body.contains("power_estimator"));
        assert!(body.contains("interconnect_power_w"));

        // Seeding an intermediate short-circuits earlier tools.
        let r = get(
            &app,
            "/agent?item=interconnect_power_w&wire_cap_f=1e-10&vdd=1&f=1e6",
        );
        assert!(!r.body_text().contains("area_estimator"));
        assert!(r.body_text().contains("1.000000e-4"));

        // Unknown targets are clean errors.
        let r = get(&app, "/agent?item=tape_out_date");
        assert_eq!(r.status(), Status::BadRequest);
    }

    #[test]
    fn api_sweep_returns_series() {
        let app = app("sweep");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "M"),
                ("element", "ucb/multiplier"),
            ],
        );
        let r = get(&app, "/api/sweep?user=a&name=d&global=vdd&values=1,2");
        assert_eq!(r.status(), Status::Ok, "{}", r.body_text());
        let parsed = Json::parse(&r.body_text()).unwrap();
        let series = parsed["series"].as_array().unwrap();
        assert_eq!(series.len(), 2);
        let p1 = series[0]["total_w"].as_f64().unwrap();
        let p2 = series[1]["total_w"].as_f64().unwrap();
        assert!((p2 / p1 - 4.0).abs() < 1e-9, "quadratic in vdd");

        let bad = get(&app, "/api/sweep?user=a&name=d&global=vdd&values=x");
        assert_eq!(bad.status(), Status::BadRequest);
    }

    #[test]
    fn api_sensitivities_ranks_globals() {
        let app = app("sens");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "M"),
                ("element", "ucb/multiplier"),
            ],
        );
        let r = get(&app, "/api/sensitivities?user=a&name=d");
        assert_eq!(r.status(), Status::Ok, "{}", r.body_text());
        let parsed = Json::parse(&r.body_text()).unwrap();
        let ranking = parsed["sensitivities"].as_array().unwrap();
        // Full-rail design: vdd (S=2) outranks f (S=1).
        assert_eq!(ranking[0]["global"].as_str().unwrap(), "vdd");
        assert!((ranking[0]["sensitivity"].as_f64().unwrap() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn lump_flow_registers_macro() {
        let app = app("lump");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "R"),
                ("element", "ucb/register"),
            ],
        );
        let r = post(
            &app,
            "/design/lump",
            &[("user", "a"), ("design", "d"), ("macro_name", "a/d_macro")],
        );
        assert_eq!(r.status(), Status::Found, "{}", r.body_text());
        assert!(app.registry().read().get("a/d_macro").is_some());
    }

    #[test]
    fn api_lint_get_reports_stored_design_diagnostics() {
        let app = app("lintget");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "DC"),
                ("element", "ucb/dcdc"),
                ("p_p_load", "P_missing_row"),
            ],
        );
        let r = get(&app, "/api/lint?user=a&name=d");
        assert_eq!(r.status(), Status::Ok, "{}", r.body_text());
        assert_eq!(r.header("content-type"), Some("application/json"));
        let parsed = Json::parse(&r.body_text()).unwrap();
        assert!(parsed["errors"].as_f64().unwrap() >= 1.0);
        let diags = parsed["diagnostics"].as_array().unwrap();
        let e008 = diags
            .iter()
            .find(|d| d["code"].as_str() == Some("E008"))
            .expect("E008 in report");
        assert_eq!(e008["path"].as_str(), Some("rows/DC/bindings/p_load"));
    }

    #[test]
    fn api_lint_post_lints_unsaved_sheets() {
        let app = app("lintpost");
        let mut sheet = Sheet::new("scratch");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2e6").unwrap();
        sheet
            .add_element_row("A", "ucb/ripple_adder", [("bits", "nonsense_var")])
            .unwrap();
        let mut req = Request::new(Method::Post, "/api/lint");
        req.set_body(sheet.to_json().to_string().into_bytes(), "application/json");
        let r = app.handle(&req);
        assert_eq!(r.status(), Status::Ok, "{}", r.body_text());
        let parsed = Json::parse(&r.body_text()).unwrap();
        let diags = parsed["diagnostics"].as_array().unwrap();
        assert!(diags.iter().any(|d| d["code"].as_str() == Some("E001")
            && d["message"].as_str().unwrap_or("").contains("nonsense_var")));

        let mut bad = Request::new(Method::Post, "/api/lint");
        bad.set_body(b"not json".to_vec(), "application/json");
        assert_eq!(app.handle(&bad).status(), Status::BadRequest);
    }

    #[test]
    fn design_page_shows_diagnostics_panel() {
        let app = app("lintpanel");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "DC"),
                ("element", "ucb/dcdc"),
                ("p_p_load", "P_missing_row"),
            ],
        );
        let page = get(&app, "/design?user=a&name=d");
        let body = page.body_text();
        assert!(body.contains("<h2>Diagnostics</h2>"), "panel missing");
        assert!(body.contains("E008"), "code missing from panel");
        assert!(body.contains("lint-error"), "severity class missing");
    }

    #[test]
    fn model_rejection_body_is_a_structured_lint_report() {
        let app = app("modeljson");
        let r = post(
            &app,
            "/model/new",
            &[
                ("user", "carol"),
                ("name", "broken"),
                ("class", "computation"),
                ("cap_full", "mystery * 10f"),
            ],
        );
        assert_eq!(r.status(), Status::BadRequest);
        assert_eq!(r.header("content-type"), Some("application/json"));
        let parsed = Json::parse(&r.body_text()).unwrap();
        let diags = parsed["diagnostics"].as_array().unwrap();
        assert!(diags
            .iter()
            .any(|d| d["code"].as_str() == Some("E013")
                && d["path"].as_str() == Some("model/cap_full")));
    }

    #[test]
    fn api_play_errors_are_structured_diagnostics() {
        let app = app("apidiag");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "G"),
                ("element", "ucb/dcdc"),
                ("p_p_load", "P_missing_row"),
            ],
        );
        let r = get(&app, "/api/design?user=a&name=d");
        assert_eq!(r.status(), Status::BadRequest, "{}", r.body_text());
        assert_eq!(r.header("content-type"), Some("application/json"));
        let parsed = Json::parse(&r.body_text()).unwrap();
        assert_eq!(
            parsed["diagnostics"][0]["code"].as_str(),
            Some("E001"),
            "{}",
            r.body_text()
        );
        assert_eq!(
            parsed["diagnostics"][0]["path"].as_str(),
            Some("rows/G/bindings/p_load")
        );

        // Sweep over the same broken design: also structured.
        let r = get(&app, "/api/sweep?user=a&name=d&global=vdd&values=1,2");
        assert_eq!(r.status(), Status::BadRequest);
        let parsed = Json::parse(&r.body_text()).unwrap();
        assert_eq!(parsed["diagnostics"][0]["code"].as_str(), Some("E001"));

        // Malformed query parameters stay plain-text 400s.
        let r = get(&app, "/api/sweep?user=a&name=d&global=vdd&values=x");
        assert_eq!(r.status(), Status::BadRequest);
        assert_ne!(r.header("content-type"), Some("application/json"));
    }

    #[test]
    fn api_design_etag_roundtrip() {
        let app = app("etag");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "R"),
                ("element", "ucb/register"),
            ],
        );
        let first = get(&app, "/api/design?user=a&name=d");
        assert_eq!(first.status(), Status::Ok);
        let etag = first
            .header("etag")
            .expect("ETag on /api/design")
            .to_owned();

        // Conditional GET with the matching tag → 304, empty body.
        let mut conditional = Request::new(Method::Get, "/api/design?user=a&name=d");
        conditional.set_header("If-None-Match", &etag);
        let r = app.handle(&conditional);
        assert_eq!(r.status(), Status::NotModified);
        assert!(r.body().is_empty());
        assert_eq!(r.header("etag"), Some(etag.as_str()));

        // Editing the design changes the tag; the stale tag revalidates.
        post(
            &app,
            "/design/set_global",
            &[
                ("user", "a"),
                ("design", "d"),
                ("gname", "vdd"),
                ("gformula", "3.0"),
            ],
        );
        let r = app.handle(&conditional);
        assert_eq!(r.status(), Status::Ok, "stale tag must refetch");
        assert_ne!(r.header("etag"), Some(etag.as_str()));
    }

    #[test]
    fn repeated_api_design_hits_the_plan_cache() {
        let app = app("plancache");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "R"),
                ("element", "ucb/register"),
            ],
        );
        let first = get(&app, "/api/design?user=a&name=d");
        assert_eq!(first.status(), Status::Ok);
        // Counters are process-global and tests run in parallel, so
        // assert monotonic growth of hits across repeats.
        let metrics_before = get(&app, "/metrics").body_text();
        let hits_before = prom_value(&metrics_before, "powerplay_web_plan_cache_hits_total");
        let second = get(&app, "/api/design?user=a&name=d");
        assert_eq!(second.status(), Status::Ok);
        assert_eq!(second.body_text(), first.body_text());
        let metrics_after = get(&app, "/metrics").body_text();
        let hits_after = prom_value(&metrics_after, "powerplay_web_plan_cache_hits_total");
        assert!(hits_after > hits_before, "{hits_before} -> {hits_after}");
    }

    #[test]
    fn post_api_design_evaluates_and_caches_unsaved_sheets() {
        let app = app("postdesign");
        let mut sheet = Sheet::new("scratch");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2e6").unwrap();
        sheet
            .add_element_row("R", "ucb/register", [("bits", "16")])
            .unwrap();
        let body = sheet.to_json().to_string();
        let send = || {
            let mut req = Request::new(Method::Post, "/api/design");
            req.set_body(body.clone().into_bytes(), "application/json");
            app.handle(&req)
        };
        let first = send();
        assert_eq!(first.status(), Status::Ok, "{}", first.body_text());
        let parsed = Json::parse(&first.body_text()).unwrap();
        assert!(parsed["report"]["total_w"].as_f64().unwrap() > 0.0);
        assert!(first.header("etag").is_some());

        // A repeat of the identical design answers from the cache:
        // byte-identical body, same tag, hits counter grows.
        let metrics_before = get(&app, "/metrics").body_text();
        let hits_before = prom_value(&metrics_before, "powerplay_web_plan_cache_hits_total");
        let second = send();
        assert_eq!(second.body_text(), first.body_text());
        assert_eq!(second.header("etag"), first.header("etag"));
        let metrics_after = get(&app, "/metrics").body_text();
        let hits_after = prom_value(&metrics_after, "powerplay_web_plan_cache_hits_total");
        assert!(hits_after > hits_before);

        // Malformed bodies are clean 400s.
        let mut bad = Request::new(Method::Post, "/api/design");
        bad.set_body(b"not json".to_vec(), "application/json");
        assert_eq!(app.handle(&bad).status(), Status::BadRequest);
    }

    #[test]
    fn library_edits_invalidate_cached_designs() {
        let app = app("geninval");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "R"),
                ("element", "ucb/register"),
            ],
        );
        let first = get(&app, "/api/design?user=a&name=d");
        let etag = first.header("etag").unwrap().to_owned();
        // Adding a model bumps the registry generation, so the same
        // design gets a fresh key (the old plan may be stale: the new
        // model could shadow one the design uses).
        post(
            &app,
            "/model/new",
            &[
                ("user", "carol"),
                ("name", "bump"),
                ("class", "computation"),
                ("cap_full", "10f"),
            ],
        );
        let second = get(&app, "/api/design?user=a&name=d");
        assert_ne!(second.header("etag"), Some(etag.as_str()));
    }

    #[test]
    fn api_sweep_and_sensitivities_carry_etags() {
        let app = app("sweepetag");
        post(&app, "/design/new", &[("user", "a"), ("name", "d")]);
        post(
            &app,
            "/design/add_row",
            &[
                ("user", "a"),
                ("design", "d"),
                ("row_name", "M"),
                ("element", "ucb/multiplier"),
            ],
        );
        let sweep = get(&app, "/api/sweep?user=a&name=d&global=vdd&values=1,2");
        let sweep_tag = sweep.header("etag").expect("ETag on sweep").to_owned();
        // Different values → different tag; same query → 304.
        let other = get(&app, "/api/sweep?user=a&name=d&global=vdd&values=1,3");
        assert_ne!(other.header("etag"), Some(sweep_tag.as_str()));
        let mut conditional = Request::new(
            Method::Get,
            "/api/sweep?user=a&name=d&global=vdd&values=1,2",
        );
        conditional.set_header("If-None-Match", &sweep_tag);
        assert_eq!(app.handle(&conditional).status(), Status::NotModified);

        let sens = get(&app, "/api/sensitivities?user=a&name=d");
        let sens_tag = sens
            .header("etag")
            .expect("ETag on sensitivities")
            .to_owned();
        assert_ne!(sens_tag, sweep_tag);
        let mut conditional = Request::new(Method::Get, "/api/sensitivities?user=a&name=d");
        conditional.set_header("If-None-Match", &sens_tag);
        assert_eq!(app.handle(&conditional).status(), Status::NotModified);
    }

    /// The current value of an unlabelled counter in a Prometheus text
    /// exposition.
    fn prom_value(exposition: &str, series: &str) -> f64 {
        exposition
            .lines()
            .find(|l| l.starts_with(series) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0)
    }

    #[test]
    fn metrics_endpoint_speaks_prometheus() {
        let app = app("metrics");
        // Generate some traffic first so the families have data.
        get(&app, "/api/library");
        get(&app, "/nonsense");
        let r = get(&app, "/metrics");
        assert_eq!(r.status(), Status::Ok);
        assert_eq!(
            r.header("content-type"),
            Some("text/plain; version=0.0.4; charset=utf-8")
        );
        let body = r.body_text();
        assert!(
            body.contains("# TYPE powerplay_http_requests_total counter"),
            "{body}"
        );
        assert!(body.contains("powerplay_http_requests_total{class=\"2xx\"}"));
        assert!(body.contains("powerplay_http_requests_total{class=\"4xx\"}"));
        assert!(body.contains("# TYPE powerplay_http_request_seconds histogram"));
        assert!(body.contains("powerplay_http_request_seconds_bucket"));
        assert!(body.contains("# TYPE powerplay_http_inflight gauge"));
    }

    #[test]
    fn request_middleware_counts_by_status_class() {
        let app = app("middleware");
        let before_ok = http_metrics().requests_2xx.get();
        let before_bad = http_metrics().requests_4xx.get();
        get(&app, "/api/library");
        get(&app, "/nonsense");
        // Counters are process-global and other tests run in parallel,
        // so assert monotonic growth rather than exact deltas.
        assert!(http_metrics().requests_2xx.get() > before_ok);
        assert!(http_metrics().requests_4xx.get() > before_bad);
        assert!(http_metrics().request_seconds.count() >= 2);
    }

    #[test]
    fn stats_page_renders_registry_series() {
        let app = app("stats");
        get(&app, "/api/library");
        let r = get(&app, "/stats");
        assert_eq!(r.status(), Status::Ok);
        let body = r.body_text();
        assert!(body.contains("powerplay_http_requests_total"), "{body}");
        assert!(body.contains("powerplay_http_request_seconds"));
        assert!(body.contains("/metrics"));
    }

    #[test]
    fn unknown_routes_404() {
        let app = app("404");
        assert_eq!(get(&app, "/nonsense").status(), Status::NotFound);
        assert_eq!(post(&app, "/also/nonsense", &[]).status(), Status::NotFound);
    }
}
