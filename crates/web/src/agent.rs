//! The *Design Agent*: a dynamic design-flow manager.
//!
//! "Models which require tool invocations are implemented through a
//! dynamic design-flow manager called the Design Agent, which translates
//! the hyperlink request for data into a sequence of appropriate tool
//! invocations determined by the chosen design context."
//!
//! A [`Tool`] declares which data items it *requires* and *provides*; the
//! agent resolves a request for an item into a dependency-ordered plan of
//! tool runs, executes it against a shared blackboard of values, and
//! caches results so repeated hyperlink clicks are free.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// The shared blackboard tools read from and write to.
pub type Blackboard = BTreeMap<String, f64>;

/// One invocable tool in the flow.
pub trait Tool: Send + Sync {
    /// Tool name (shown in plans and errors).
    fn name(&self) -> &str;
    /// Data items this tool needs present on the blackboard.
    fn requires(&self) -> Vec<String>;
    /// Data items this tool writes.
    fn provides(&self) -> Vec<String>;
    /// Runs the tool.
    ///
    /// # Errors
    ///
    /// Tools report failures as strings; the agent wraps them.
    fn run(&self, board: &mut Blackboard) -> Result<(), String>;
}

/// The closure type a [`FnTool`] wraps.
type ToolBody = Box<dyn Fn(&mut Blackboard) -> Result<(), String> + Send + Sync>;

/// A tool defined by closures — enough for estimation flows, and what the
/// tests and examples use.
pub struct FnTool {
    name: String,
    requires: Vec<String>,
    provides: Vec<String>,
    body: ToolBody,
}

impl FnTool {
    /// Creates a tool from its interface lists and body.
    pub fn new(
        name: impl Into<String>,
        requires: impl IntoIterator<Item = &'static str>,
        provides: impl IntoIterator<Item = &'static str>,
        body: impl Fn(&mut Blackboard) -> Result<(), String> + Send + Sync + 'static,
    ) -> FnTool {
        FnTool {
            name: name.into(),
            requires: requires.into_iter().map(str::to_owned).collect(),
            provides: provides.into_iter().map(str::to_owned).collect(),
            body: Box::new(body),
        }
    }
}

impl Tool for FnTool {
    fn name(&self) -> &str {
        &self.name
    }
    fn requires(&self) -> Vec<String> {
        self.requires.clone()
    }
    fn provides(&self) -> Vec<String> {
        self.provides.clone()
    }
    fn run(&self, board: &mut Blackboard) -> Result<(), String> {
        (self.body)(board)
    }
}

/// Error produced by the agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentError {
    /// No registered tool provides the requested item.
    NoProvider(String),
    /// Tool dependencies form a cycle.
    CircularFlow(Vec<String>),
    /// A tool failed at run time.
    ToolFailed {
        /// The failing tool.
        tool: String,
        /// Its reported message.
        message: String,
    },
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::NoProvider(item) => write!(f, "no tool provides `{item}`"),
            AgentError::CircularFlow(tools) => {
                write!(f, "circular tool dependencies: {}", tools.join(" -> "))
            }
            AgentError::ToolFailed { tool, message } => {
                write!(f, "tool `{tool}` failed: {message}")
            }
        }
    }
}

impl Error for AgentError {}

/// The flow manager.
#[derive(Default)]
pub struct DesignAgent {
    tools: Vec<Box<dyn Tool>>,
    board: Blackboard,
}

impl DesignAgent {
    /// An agent with no tools and an empty blackboard.
    pub fn new() -> DesignAgent {
        DesignAgent::default()
    }

    /// Registers a tool.
    pub fn register(&mut self, tool: impl Tool + 'static) {
        self.tools.push(Box::new(tool));
    }

    /// Seeds a blackboard value (design context the user already knows).
    pub fn seed(&mut self, item: impl Into<String>, value: f64) {
        self.board.insert(item.into(), value);
    }

    /// Reads a blackboard value.
    pub fn value(&self, item: &str) -> Option<f64> {
        self.board.get(item).copied()
    }

    /// Computes the ordered tool plan that produces `item`, without
    /// running anything. Items already on the blackboard need no tools.
    ///
    /// # Errors
    ///
    /// Returns [`AgentError::NoProvider`] or [`AgentError::CircularFlow`].
    pub fn plan(&self, item: &str) -> Result<Vec<String>, AgentError> {
        let mut order = Vec::new();
        let mut done: BTreeSet<String> = self.board.keys().cloned().collect();
        let mut in_progress = Vec::new();
        self.plan_item(item, &mut order, &mut done, &mut in_progress)?;
        Ok(order)
    }

    fn provider_of(&self, item: &str) -> Option<&dyn Tool> {
        self.tools
            .iter()
            .find(|t| t.provides().iter().any(|p| p == item))
            .map(Box::as_ref)
    }

    fn plan_item(
        &self,
        item: &str,
        order: &mut Vec<String>,
        done: &mut BTreeSet<String>,
        in_progress: &mut Vec<String>,
    ) -> Result<(), AgentError> {
        if done.contains(item) {
            return Ok(());
        }
        let tool = self
            .provider_of(item)
            .ok_or_else(|| AgentError::NoProvider(item.to_owned()))?;
        let tool_name = tool.name().to_owned();
        if in_progress.contains(&tool_name) {
            let start = in_progress
                .iter()
                .position(|t| *t == tool_name)
                .unwrap_or(0);
            return Err(AgentError::CircularFlow(in_progress[start..].to_vec()));
        }
        in_progress.push(tool_name.clone());
        for required in tool.requires() {
            self.plan_item(&required, order, done, in_progress)?;
        }
        in_progress.pop();
        if !order.contains(&tool_name) {
            order.push(tool_name);
            for provided in tool.provides() {
                done.insert(provided);
            }
        }
        Ok(())
    }

    /// Produces `item`: plans, runs any tools whose outputs are missing,
    /// and returns the value. Results stay on the blackboard, so a second
    /// request runs nothing.
    ///
    /// # Errors
    ///
    /// Returns [`AgentError`] on planning or tool failure, and
    /// [`AgentError::ToolFailed`] if the plan completes without the item
    /// appearing (a tool lied about what it provides).
    pub fn request(&mut self, item: &str) -> Result<f64, AgentError> {
        if let Some(value) = self.board.get(item) {
            return Ok(*value);
        }
        let plan = self.plan(item)?;
        for tool_name in plan {
            let tool = self
                .tools
                .iter()
                .find(|t| t.name() == tool_name)
                .expect("planned tools are registered");
            // Skip tools whose outputs are all already present.
            if tool.provides().iter().all(|p| self.board.contains_key(p)) {
                continue;
            }
            tool.run(&mut self.board)
                .map_err(|message| AgentError::ToolFailed {
                    tool: tool_name.clone(),
                    message,
                })?;
        }
        self.board
            .get(item)
            .copied()
            .ok_or_else(|| AgentError::ToolFailed {
                tool: "<plan>".into(),
                message: format!("plan completed but `{item}` was not produced"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A three-stage estimation flow: area -> wire capacitance -> power.
    fn estimation_agent(counter: Arc<AtomicUsize>) -> DesignAgent {
        let mut agent = DesignAgent::new();
        agent.seed("block_count", 400.0);
        agent.seed("vdd", 1.5);
        agent.seed("f", 2e6);
        let c1 = Arc::clone(&counter);
        agent.register(FnTool::new(
            "area_estimator",
            ["block_count"],
            ["active_area_mm2"],
            move |b| {
                c1.fetch_add(1, Ordering::SeqCst);
                let blocks = b["block_count"];
                b.insert("active_area_mm2".into(), blocks * 0.01);
                Ok(())
            },
        ));
        let c2 = Arc::clone(&counter);
        agent.register(FnTool::new(
            "wire_estimator",
            ["active_area_mm2"],
            ["wire_cap_f"],
            move |b| {
                c2.fetch_add(1, Ordering::SeqCst);
                let area = b["active_area_mm2"];
                b.insert("wire_cap_f".into(), area * 50e-12);
                Ok(())
            },
        ));
        let c3 = Arc::clone(&counter);
        agent.register(FnTool::new(
            "power_estimator",
            ["wire_cap_f", "vdd", "f"],
            ["interconnect_power_w"],
            move |b| {
                c3.fetch_add(1, Ordering::SeqCst);
                let p = b["wire_cap_f"] * b["vdd"] * b["vdd"] * b["f"];
                b.insert("interconnect_power_w".into(), p);
                Ok(())
            },
        ));
        agent
    }

    #[test]
    fn plans_are_dependency_ordered() {
        let agent = estimation_agent(Arc::new(AtomicUsize::new(0)));
        let plan = agent.plan("interconnect_power_w").unwrap();
        assert_eq!(
            plan,
            ["area_estimator", "wire_estimator", "power_estimator"]
        );
        // Items already present need no tools.
        assert!(agent.plan("vdd").unwrap().is_empty());
    }

    #[test]
    fn request_runs_the_flow_and_caches() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut agent = estimation_agent(Arc::clone(&counter));
        let power = agent.request("interconnect_power_w").unwrap();
        let expected = 400.0 * 0.01 * 50e-12 * 1.5 * 1.5 * 2e6;
        assert!((power - expected).abs() < expected * 1e-12);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        // Second request: everything cached, nothing runs.
        let again = agent.request("interconnect_power_w").unwrap();
        assert_eq!(again, power);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        // Intermediate results are exposed too (C-INTERMEDIATE).
        assert!(agent.value("wire_cap_f").is_some());
    }

    #[test]
    fn missing_provider_is_reported() {
        let agent = estimation_agent(Arc::new(AtomicUsize::new(0)));
        let err = agent.plan("tape_out_date").unwrap_err();
        assert_eq!(err, AgentError::NoProvider("tape_out_date".into()));
    }

    #[test]
    fn circular_flows_are_detected() {
        let mut agent = DesignAgent::new();
        agent.register(FnTool::new("a", ["y"], ["x"], |_| Ok(())));
        agent.register(FnTool::new("b", ["x"], ["y"], |_| Ok(())));
        let err = agent.plan("x").unwrap_err();
        assert!(matches!(err, AgentError::CircularFlow(_)));
    }

    #[test]
    fn tool_failures_are_attributed() {
        let mut agent = DesignAgent::new();
        agent.register(FnTool::new("flaky", [], ["thing"], |_| {
            Err("license server down".into())
        }));
        let err = agent.request("thing").unwrap_err();
        assert_eq!(
            err,
            AgentError::ToolFailed {
                tool: "flaky".into(),
                message: "license server down".into()
            }
        );
    }

    #[test]
    fn lying_tool_is_caught() {
        let mut agent = DesignAgent::new();
        agent.register(FnTool::new("liar", [], ["gold"], |_| Ok(())));
        let err = agent.request("gold").unwrap_err();
        assert!(matches!(err, AgentError::ToolFailed { .. }));
        assert!(err.to_string().contains("gold"));
    }

    #[test]
    fn seeded_context_short_circuits_tools() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut agent = estimation_agent(Arc::clone(&counter));
        // The user already measured the wire cap: seed it.
        agent.seed("wire_cap_f", 100e-12);
        let power = agent.request("interconnect_power_w").unwrap();
        let expected = 100e-12 * 1.5 * 1.5 * 2e6;
        assert!((power - expected).abs() < expected * 1e-12);
        // Only the power estimator ran.
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
