//! Live design-change event streams (Server-Sent Events).
//!
//! The 1996 tool refreshed whole pages; the modern counterpart of the
//! paper's "shared design database" is a *live* one: every committed
//! revision is pushed to collaborators holding an open
//! `GET /api/v1/designs/{user}/{name}/events` stream. This module is
//! the fan-out hub between the store's change hook and the reactor's
//! streaming connections.
//!
//! # Ordering and the subscribe race
//!
//! Publishes happen inside the store shard's write lock, so for one
//! design they arrive here in exactly commit order. A subscriber joins
//! in two steps on different threads: the worker builds its snapshot
//! prologue from the store (capturing revision `S`), then the reactor
//! invokes the stream-open callback which calls [`EventHub::subscribe`]
//! with `after = S`. Any revision committed between those two steps is
//! caught by the per-topic *ring* of recent framed events: `subscribe`
//! replays ring entries with id > `S` before registering the handle,
//! all under the hub lock, so no event can be both missed and skipped.
//!
//! The hub never calls into the store (publishes run under the shard
//! lock; calling back would self-deadlock). Backpressure is the
//! reactor's job: a [`StreamHandle`] whose connection was dropped
//! reports `send == false` and is pruned on the next publish.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use powerplay_telemetry::{Counter, Gauge, Histogram};

use crate::http::StreamHandle;

/// Framed events retained per topic for subscribe-race replay. Large
/// enough to cover the worker→reactor handoff window under any
/// realistic write rate; resumes beyond it fall back to the store's
/// revision history (`Last-Event-ID`).
const RING_CAP: usize = 64;

/// Serializes one Server-Sent Event: optional `id`, an `event` name,
/// and `data` (split across `data:` lines if it contains newlines).
pub fn sse_frame(event: &str, id: Option<u64>, data: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 32);
    if let Some(id) = id {
        out.extend_from_slice(format!("id: {id}\n").as_bytes());
    }
    out.extend_from_slice(format!("event: {event}\n").as_bytes());
    for line in data.split('\n') {
        out.extend_from_slice(b"data: ");
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out.push(b'\n');
    out
}

struct Topic {
    subs: Vec<StreamHandle>,
    /// Recent id-bearing frames, oldest first.
    ring: VecDeque<(u64, Arc<[u8]>)>,
}

impl Topic {
    fn new() -> Topic {
        Topic {
            subs: Vec::new(),
            ring: VecDeque::new(),
        }
    }
}

/// Fan-out hub mapping `(user, design)` topics to live SSE streams.
pub struct EventHub {
    topics: Mutex<HashMap<(String, String), Topic>>,
    subscribers: Gauge,
    published_total: Counter,
    lag_seconds: Histogram,
}

impl EventHub {
    /// A hub with its gauges registered on the global telemetry
    /// registry.
    pub fn new() -> EventHub {
        let t = powerplay_telemetry::global();
        EventHub {
            topics: Mutex::new(HashMap::new()),
            subscribers: t.gauge(
                "powerplay_events_subscribers",
                "Open SSE event-stream subscriptions",
            ),
            published_total: t.counter(
                "powerplay_events_published_total",
                "Events fanned out to design event streams",
            ),
            lag_seconds: t.histogram(
                "powerplay_events_lag_seconds",
                "Delay from store commit to event fan-out",
            ),
        }
    }

    /// Registers `handle` on `(user, design)`, first replaying any
    /// ring-retained events with id greater than `after` (the revision
    /// the subscriber's snapshot prologue already covers).
    pub fn subscribe(&self, user: &str, design: &str, after: u64, handle: StreamHandle) {
        let mut topics = self.topics.lock();
        let topic = topics
            .entry((user.to_owned(), design.to_owned()))
            .or_insert_with(Topic::new);
        for (id, frame) in &topic.ring {
            if *id > after {
                handle.send(frame.to_vec());
            }
        }
        topic.subs.push(handle);
        self.subscribers.add(1);
        // Lazily drop peers whose connection the reactor already closed.
        let before = topic.subs.len();
        topic.subs.retain(|sub| !sub.is_closed());
        self.subscribers.sub((before - topic.subs.len()) as i64);
    }

    /// Fans an id-bearing frame out to every live subscriber and
    /// retains it in the topic ring for subscribe-race replay.
    /// `committed` is when the store committed the underlying change;
    /// the commit-to-fan-out delay lands in
    /// `powerplay_events_lag_seconds`.
    pub fn publish(&self, user: &str, design: &str, id: u64, frame: Vec<u8>, committed: Instant) {
        let frame: Arc<[u8]> = frame.into();
        let mut topics = self.topics.lock();
        let topic = topics
            .entry((user.to_owned(), design.to_owned()))
            .or_insert_with(Topic::new);
        topic.ring.push_back((id, Arc::clone(&frame)));
        while topic.ring.len() > RING_CAP {
            topic.ring.pop_front();
        }
        self.fan_out(topic, &frame);
        self.lag_seconds.observe(committed.elapsed());
    }

    /// Fans a frame out without retaining it: conflict notifications
    /// carry no revision id and are only meaningful to subscribers
    /// connected at the moment they happen.
    pub fn publish_transient(&self, user: &str, design: &str, frame: Vec<u8>) {
        let frame: Arc<[u8]> = frame.into();
        let mut topics = self.topics.lock();
        let Some(topic) = topics.get_mut(&(user.to_owned(), design.to_owned())) else {
            return;
        };
        self.fan_out(topic, &frame);
    }

    /// Live subscriptions across all topics (drives the gauge; public
    /// for tests).
    pub fn subscriber_count(&self) -> usize {
        let topics = self.topics.lock();
        topics.values().map(|t| t.subs.len()).sum()
    }

    fn fan_out(&self, topic: &mut Topic, frame: &Arc<[u8]>) {
        // `send == false` means the reactor already closed that
        // connection — prune it and settle the gauge.
        let before = topic.subs.len();
        topic.subs.retain(|sub| sub.send(frame.to_vec()));
        let live = topic.subs.len();
        self.published_total.add(live as u64);
        self.subscribers.sub((before - live) as i64);
    }
}

impl Default for EventHub {
    fn default() -> EventHub {
        EventHub::new()
    }
}

#[cfg(test)]
mod tests {
    use super::sse_frame;

    #[test]
    fn frames_follow_the_sse_wire_format() {
        let frame = sse_frame("revision", Some(7), "{\"rev\":7}");
        assert_eq!(
            String::from_utf8(frame).unwrap(),
            "id: 7\nevent: revision\ndata: {\"rev\":7}\n\n"
        );
        // Multi-line data splits into one `data:` line per line.
        let frame = sse_frame("snapshot", None, "a\nb");
        assert_eq!(
            String::from_utf8(frame).unwrap(),
            "event: snapshot\ndata: a\ndata: b\n\n"
        );
    }
}
