//! Cross-site model access (paper Figures 6–7).
//!
//! "If a library is characterized and put on the web in Massachusetts, it
//! can be used for estimates in California." Silva's original scheme
//! moved models over SMTP between per-machine hubs; the paper replaces it
//! with HTTP requests against scripts at fixed URLs. Here, any
//! [`PowerPlayApp`](crate::app::PowerPlayApp) exposes its registry at
//! `/api/library` and `/api/element`, and these helpers fetch and merge
//! remote models into a local registry.

use std::error::Error;
use std::fmt;

use powerplay_json::Json;
use powerplay_library::{DecodeElementError, LibraryElement, Registry};

use crate::http::{http_get, ClientError, Status};

/// Error produced while fetching remote models.
#[derive(Debug)]
pub enum FetchError {
    /// The HTTP transfer failed.
    Transport(ClientError),
    /// The server answered with a non-200 status.
    Status(u16),
    /// The body was not valid JSON.
    Json(powerplay_json::ParseJsonError),
    /// The JSON did not decode as library elements.
    Decode(DecodeElementError),
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::Transport(e) => write!(f, "transfer failed: {e}"),
            FetchError::Status(code) => write!(f, "server answered {code}"),
            FetchError::Json(e) => write!(f, "response is not JSON: {e}"),
            FetchError::Decode(e) => write!(f, "response is not a model library: {e}"),
        }
    }
}

impl Error for FetchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FetchError::Transport(e) => Some(e),
            FetchError::Json(e) => Some(e),
            FetchError::Decode(e) => Some(e),
            FetchError::Status(_) => None,
        }
    }
}

/// Fetches a site's entire library.
///
/// `base_url` is the remote PowerPlay server root, e.g.
/// `http://infopad.eecs.berkeley.edu`.
///
/// # Errors
///
/// Returns [`FetchError`] on transport, status, or decode failure.
pub fn fetch_library(base_url: &str) -> Result<Registry, FetchError> {
    let response = http_get(&format!("{}/api/library", base_url.trim_end_matches('/')))
        .map_err(FetchError::Transport)?;
    if response.status() != Status::Ok {
        return Err(FetchError::Status(response.status().code()));
    }
    let json = Json::parse(&response.body_text()).map_err(FetchError::Json)?;
    Registry::from_json(&json).map_err(FetchError::Decode)
}

/// Fetches one model by name from a remote site — the Figure 7 flow:
/// "request for model" → "model" over HTTP.
///
/// # Errors
///
/// Returns [`FetchError`] on transport, status, or decode failure.
pub fn fetch_element(base_url: &str, name: &str) -> Result<LibraryElement, FetchError> {
    let url = format!(
        "{}/api/element?name={}",
        base_url.trim_end_matches('/'),
        crate::http::urlencoded::encode(name),
    );
    let response = http_get(&url).map_err(FetchError::Transport)?;
    if response.status() != Status::Ok {
        return Err(FetchError::Status(response.status().code()));
    }
    let json = Json::parse(&response.body_text()).map_err(FetchError::Json)?;
    LibraryElement::from_json(&json).map_err(FetchError::Decode)
}

/// Fetches a remote site's library and merges it into `local`, returning
/// how many elements arrived. Remote elements replace same-named local
/// ones (the remote site is authoritative for its namespace).
///
/// # Errors
///
/// Returns [`FetchError`] on any fetch failure; `local` is unchanged then.
pub fn merge_remote_library(local: &mut Registry, base_url: &str) -> Result<usize, FetchError> {
    let remote = fetch_library(base_url)?;
    let count = remote.len();
    local.merge(remote);
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::PowerPlayApp;
    use powerplay_expr::Scope;
    use powerplay_library::builtin::ucb_library;

    fn serve(tag: &str, registry: Registry) -> crate::http::ServerHandle {
        let dir =
            std::env::temp_dir().join(format!("powerplay-remote-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = PowerPlayApp::new(registry, dir);
        app.serve("127.0.0.1:0").unwrap()
    }

    #[test]
    fn fetch_whole_library_across_http() {
        // "Berkeley" serves its library; a "remote user" fetches it.
        let berkeley = serve("lib", ucb_library());
        let base = format!("http://{}", berkeley.addr());
        let fetched = fetch_library(&base).unwrap();
        assert_eq!(fetched.len(), ucb_library().len());
        assert!(fetched.get("ucb/multiplier").is_some());
    }

    #[test]
    fn fetched_models_evaluate_identically() {
        let berkeley = serve("eval", ucb_library());
        let base = format!("http://{}", berkeley.addr());
        let remote_mult = fetch_element(&base, "ucb/multiplier").unwrap();
        let local_mult = ucb_library().get("ucb/multiplier").unwrap().clone();
        let mut scope = Scope::new();
        scope.set("vdd", 1.5);
        scope.set("f", 2e6);
        assert_eq!(
            remote_mult.evaluate_defaults(&scope).unwrap().power,
            local_mult.evaluate_defaults(&scope).unwrap().power,
        );
    }

    #[test]
    fn merge_combines_two_sites() {
        // Figure 6: a user reaches both Berkeley and Motorola libraries.
        let berkeley = serve("b", ucb_library());
        let motorola_registry: Registry = {
            use powerplay_library::{ElementClass, ElementModel, ParamDecl};
            let elem = LibraryElement::new(
                "motorola/dsp56k",
                ElementClass::Processor,
                "data-book DSP model",
                vec![
                    ParamDecl::new("p_avg", 0.12, "average power"),
                    ParamDecl::new("duty", 1.0, "duty cycle"),
                ],
                ElementModel {
                    power_direct: Some(powerplay_expr::Expr::parse("p_avg * duty").unwrap()),
                    ..ElementModel::default()
                },
            );
            [elem].into_iter().collect()
        };
        let motorola = serve("m", motorola_registry);

        let mut local = Registry::new();
        let n1 = merge_remote_library(&mut local, &format!("http://{}", berkeley.addr())).unwrap();
        let n2 = merge_remote_library(&mut local, &format!("http://{}", motorola.addr())).unwrap();
        assert!(n1 > 20);
        assert_eq!(n2, 1);
        assert!(local.get("ucb/sram").is_some());
        assert!(local.get("motorola/dsp56k").is_some());
        let spaces = local.namespaces();
        assert!(spaces.contains(&"ucb".to_owned()));
        assert!(spaces.contains(&"motorola".to_owned()));
    }

    #[test]
    fn missing_element_is_a_status_error() {
        let server = serve("missing", ucb_library());
        let base = format!("http://{}", server.addr());
        let err = fetch_element(&base, "nowhere/nothing").unwrap_err();
        assert!(matches!(err, FetchError::Status(404)));
    }

    #[test]
    fn unreachable_site_is_a_transport_error() {
        let err = fetch_library("http://127.0.0.1:1").unwrap_err();
        assert!(matches!(err, FetchError::Transport(_)));
        assert!(err.to_string().contains("transfer failed"));
    }
}
