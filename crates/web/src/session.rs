//! User identification and per-user design storage.
//!
//! "Since WWW browsers do not supply user names, when PowerPlay is
//! initially accessed the user must identify her/himself. The username is
//! passed to a Perl script which retrieves the individual user's defaults
//! from the PowerPlay server's local file system." The flat-file script
//! this module used to be has been promoted into the durable, revisioned
//! [`powerplay-store`](powerplay_store) crate (per-user WAL, crash
//! recovery, optimistic concurrency); the web layer re-exports it here so
//! the `app`'s storage dependency stays in one place. Pre-revision
//! `<design>.json` data directories are imported automatically on first
//! open.

pub use powerplay_store::{DesignStore, DesignSummary, StoreConfig, StoreError};

/// The web layer's design store — the durable, revisioned
/// [`DesignStore`].
pub type UserStore = DesignStore;
