//! User identification and per-user design storage.
//!
//! "Since WWW browsers do not supply user names, when PowerPlay is
//! initially accessed the user must identify her/himself. The username is
//! passed to a Perl script which retrieves the individual user's defaults
//! from the PowerPlay server's local file system." This module is that
//! script: a username-keyed store of designs, persisted as JSON files
//! under a data directory.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use parking_lot::RwLock;
use powerplay_json::Json;
use powerplay_sheet::Sheet;

/// Error produced by the user store.
#[derive(Debug)]
pub enum StoreError {
    /// Usernames are path components; only `[a-zA-Z0-9_-]{1,32}` is safe.
    InvalidUsername(String),
    /// Design names share the same restriction.
    InvalidDesignName(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// A stored design file failed to decode.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::InvalidUsername(u) => write!(f, "invalid username `{u}`"),
            StoreError::InvalidDesignName(d) => write!(f, "invalid design name `{d}`"),
            StoreError::Io(e) => write!(f, "storage error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt design file: {what}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 32
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// A thread-safe, disk-backed store of per-user designs.
pub struct UserStore {
    root: PathBuf,
    cache: RwLock<BTreeMap<(String, String), Sheet>>,
}

impl UserStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<UserStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(UserStore {
            root,
            cache: RwLock::new(BTreeMap::new()),
        })
    }

    fn design_path(&self, user: &str, design: &str) -> Result<PathBuf, StoreError> {
        if !valid_name(user) {
            return Err(StoreError::InvalidUsername(user.to_owned()));
        }
        if !valid_name(design) {
            return Err(StoreError::InvalidDesignName(design.to_owned()));
        }
        Ok(self.root.join(user).join(format!("{design}.json")))
    }

    /// Saves a design for a user (insert or replace).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on invalid names or I/O failure.
    pub fn save(&self, user: &str, design: &str, sheet: &Sheet) -> Result<(), StoreError> {
        let path = self.design_path(user, design)?;
        fs::create_dir_all(path.parent().expect("design path has parent"))?;
        fs::write(&path, sheet.to_json().to_pretty())?;
        self.cache
            .write()
            .insert((user.to_owned(), design.to_owned()), sheet.clone());
        Ok(())
    }

    /// Loads a user's design.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on invalid names, I/O failure, or a corrupt
    /// file. A missing design is `Ok(None)`.
    pub fn load(&self, user: &str, design: &str) -> Result<Option<Sheet>, StoreError> {
        if let Some(sheet) = self
            .cache
            .read()
            .get(&(user.to_owned(), design.to_owned()))
        {
            return Ok(Some(sheet.clone()));
        }
        let path = self.design_path(user, design)?;
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        let json = Json::parse(&text).map_err(|e| StoreError::Corrupt(e.to_string()))?;
        let sheet = Sheet::from_json(&json).map_err(|e| StoreError::Corrupt(e.to_string()))?;
        self.cache
            .write()
            .insert((user.to_owned(), design.to_owned()), sheet.clone());
        Ok(Some(sheet))
    }

    /// Lists a user's design names (empty for unknown users).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on invalid usernames or I/O failure.
    pub fn list(&self, user: &str) -> Result<Vec<String>, StoreError> {
        if !valid_name(user) {
            return Err(StoreError::InvalidUsername(user.to_owned()));
        }
        let dir = self.root.join(user);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_suffix(".json"))
            {
                names.push(name.to_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Deletes a design. Missing designs are a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on invalid names or I/O failure.
    pub fn delete(&self, user: &str, design: &str) -> Result<(), StoreError> {
        let path = self.design_path(user, design)?;
        if path.exists() {
            fs::remove_file(path)?;
        }
        self.cache
            .write()
            .remove(&(user.to_owned(), design.to_owned()));
        Ok(())
    }

    /// The storage root (for diagnostics).
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> UserStore {
        let dir = std::env::temp_dir().join(format!(
            "powerplay-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        UserStore::open(dir).unwrap()
    }

    fn sample_sheet() -> Sheet {
        let mut sheet = Sheet::new("Luminance");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("LUT", "ucb/sram", [("words", "4096"), ("bits", "6")])
            .unwrap();
        sheet
    }

    #[test]
    fn save_load_roundtrip() {
        let store = temp_store("roundtrip");
        let sheet = sample_sheet();
        store.save("alice", "luminance", &sheet).unwrap();
        let loaded = store.load("alice", "luminance").unwrap().unwrap();
        assert_eq!(loaded, sheet);
        // Cold read (fresh store over the same directory).
        let store2 = UserStore::open(store.root().to_owned()).unwrap();
        let cold = store2.load("alice", "luminance").unwrap().unwrap();
        assert_eq!(cold, sheet);
    }

    #[test]
    fn missing_design_is_none() {
        let store = temp_store("missing");
        assert!(store.load("alice", "nothing").unwrap().is_none());
    }

    #[test]
    fn listing_and_deletion() {
        let store = temp_store("list");
        store.save("bob", "a", &sample_sheet()).unwrap();
        store.save("bob", "b", &sample_sheet()).unwrap();
        assert_eq!(store.list("bob").unwrap(), ["a", "b"]);
        assert!(store.list("nobody").unwrap().is_empty());
        store.delete("bob", "a").unwrap();
        assert_eq!(store.list("bob").unwrap(), ["b"]);
        store.delete("bob", "a").unwrap(); // idempotent
    }

    #[test]
    fn users_are_isolated() {
        let store = temp_store("isolation");
        store.save("alice", "d", &sample_sheet()).unwrap();
        assert!(store.load("bob", "d").unwrap().is_none());
    }

    #[test]
    fn path_traversal_is_rejected() {
        let store = temp_store("traversal");
        for bad in ["../../etc/passwd", "a/b", "", "x".repeat(64).as_str(), "a b"] {
            assert!(
                matches!(
                    store.save(bad, "d", &sample_sheet()),
                    Err(StoreError::InvalidUsername(_))
                ),
                "accepted username {bad:?}"
            );
            assert!(
                matches!(
                    store.save("alice", bad, &sample_sheet()),
                    Err(StoreError::InvalidDesignName(_))
                ),
                "accepted design {bad:?}"
            );
        }
    }

    #[test]
    fn corrupt_files_are_reported() {
        let store = temp_store("corrupt");
        store.save("carol", "d", &sample_sheet()).unwrap();
        fs::write(store.root().join("carol/d.json"), "{nonsense").unwrap();
        let fresh = UserStore::open(store.root().to_owned()).unwrap();
        assert!(matches!(
            fresh.load("carol", "d"),
            Err(StoreError::Corrupt(_))
        ));
    }
}
