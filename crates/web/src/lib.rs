//! The World Wide Web front end of PowerPlay.
//!
//! "As the World Wide Web has become the de facto standard for
//! information gathering, it is the most natural choice for a design
//! exploration environment." The 1996 tool was HTML pages plus Perl CGI
//! scripts behind an HTTP daemon; this crate rebuilds that stack from
//! scratch on `std::net` (no web framework):
//!
//! * [`http`] — a small, correct HTTP/1.1 server (thread-per-connection
//!   with keep-alive) and client, plus URL/form codecs;
//! * [`html`] — escaping-safe HTML generation for the menu, library
//!   browser, element input form (paper Figure 4) and design spreadsheet
//!   (Figures 2/5) pages;
//! * [`app`] — the PowerPlay application itself: user sessions with
//!   on-disk per-user designs, the spreadsheet UI with hyperlinked
//!   sub-sheets and a *Play* button, runtime model authoring, and a JSON
//!   API;
//! * [`remote`] — cross-site model access (paper Figures 6–7): libraries
//!   served at one site are fetched and merged into another's registry
//!   over HTTP;
//! * [`agent`] — the *Design Agent*, a dependency-driven flow manager
//!   that translates a request for data into an ordered sequence of tool
//!   invocations.
//!
//! ```no_run
//! use powerplay_library::builtin::ucb_library;
//! use powerplay_web::app::PowerPlayApp;
//!
//! # fn main() -> std::io::Result<()> {
//! let app = PowerPlayApp::new(ucb_library(), std::env::temp_dir().join("powerplay"));
//! let server = app.serve("127.0.0.1:8096")?;
//! println!("PowerPlay at http://{}", server.addr());
//! server.join();
//! # Ok(())
//! # }
//! ```

pub mod agent;
pub mod api_v1;
pub mod app;
pub mod cache;
pub mod events;
pub mod html;
pub mod http;
pub mod remote;
pub mod session;
