//! Escaping-safe HTML generation for the PowerPlay pages.
//!
//! Deliberately 1996-flavoured markup (tables, forms, hyperlinks — the
//! three things the paper's UI is made of), generated through helpers
//! that force escaping at the boundaries.

use std::fmt::Write as _;

/// Escapes text for element content and attribute values.
///
/// ```
/// assert_eq!(powerplay_web::html::escape("a < b & \"c\""), "a &lt; b &amp; &quot;c&quot;");
/// ```
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Wraps body markup in the standard PowerPlay page chrome.
pub fn page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html><head><title>{title}</title>\
         <style>body{{font-family:sans-serif;margin:2em}}\
         table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:4px 8px;text-align:left}}\
         th{{background:#ddd}}\
         .total{{font-weight:bold;background:#eee}}</style>\
         </head><body><h1>{title}</h1>\n{body}\n\
         <hr><p><em>PowerPlay — early power exploration \
         (DAC 1996 reproduction)</em></p></body></html>",
        title = escape(title),
    )
}

/// An anchor with escaped label and attribute-escaped href.
pub fn link(href: &str, label: &str) -> String {
    format!("<a href=\"{}\">{}</a>", escape(href), escape(label))
}

/// A table from a header row and data rows of *pre-rendered* cells.
/// Callers escape text cells themselves (cells may contain links).
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table><tr>");
    for h in headers {
        let _ = write!(out, "<th>{}</th>", escape(h));
    }
    out.push_str("</tr>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            let _ = write!(out, "<td>{cell}</td>");
        }
        out.push_str("</tr>");
    }
    out.push_str("</table>");
    out
}

/// A labelled text input with a default value.
pub fn text_input(name: &str, value: &str, label: &str) -> String {
    format!(
        "<label>{}: <input type=\"text\" name=\"{}\" value=\"{}\"></label><br>",
        escape(label),
        escape(name),
        escape(value),
    )
}

/// A hidden input.
pub fn hidden_input(name: &str, value: &str) -> String {
    format!(
        "<input type=\"hidden\" name=\"{}\" value=\"{}\">",
        escape(name),
        escape(value),
    )
}

/// A form posting to `action` with the given inner markup and a submit
/// button labelled `submit`.
pub fn form(action: &str, inner: &str, submit: &str) -> String {
    format!(
        "<form method=\"post\" action=\"{}\">{inner}\
         <input type=\"submit\" value=\"{}\"></form>",
        escape(action),
        escape(submit),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_all_metacharacters() {
        assert_eq!(
            escape("<script>'x'&\"y\""),
            "&lt;script&gt;&#39;x&#39;&amp;&quot;y&quot;"
        );
        assert_eq!(escape("plain µW"), "plain µW");
    }

    #[test]
    fn page_escapes_title_but_not_body() {
        let p = page("A<B", "<b>bold</b>");
        assert!(p.contains("<title>A&lt;B</title>"));
        assert!(p.contains("<b>bold</b>"));
        assert!(p.contains("DAC 1996"));
    }

    #[test]
    fn link_escapes_both_parts() {
        let l = link("/x?a=1&b=2", "A & B");
        assert_eq!(l, "<a href=\"/x?a=1&amp;b=2\">A &amp; B</a>");
    }

    #[test]
    fn table_renders_rows() {
        let t = table(&["Name", "Power"], &[vec!["LUT".into(), "669 uW".into()]]);
        assert!(t.contains("<th>Name</th>"));
        assert!(t.contains("<td>LUT</td>"));
        assert!(t.contains("<td>669 uW</td>"));
    }

    #[test]
    fn inputs_escape_values() {
        let i = text_input("formula", "a < b", "Formula");
        assert!(i.contains("value=\"a &lt; b\""));
        let h = hidden_input("user", "a\"b");
        assert!(h.contains("value=\"a&quot;b\""));
    }

    #[test]
    fn form_wraps_inner_markup() {
        let f = form("/design/play", "<input name=\"x\">", "Play");
        assert!(f.starts_with("<form method=\"post\" action=\"/design/play\">"));
        assert!(f.contains("value=\"Play\""));
    }
}
