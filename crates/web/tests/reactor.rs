//! Integration tests for the readiness reactor: behaviors that only
//! show up across real sockets — slow-loris trickle, pipelining at odd
//! byte boundaries, deadline expiry mid-body, keep-alive reuse on both
//! sides of the wire.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use powerplay_web::http::{http_get, read_response, Response, Server, ServerConfig, Status};

fn echo_server() -> powerplay_web::http::ServerHandle {
    Server::bind("127.0.0.1:0", |req| {
        Response::html(req.query_param("n").unwrap_or_default().to_owned())
    })
    .unwrap()
    .start()
}

/// One keep-alive GET on an already-open buffered socket.
fn pipelined_get(n: usize) -> Vec<u8> {
    format!("GET /echo?n={n} HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").into_bytes()
}

#[test]
fn slow_loris_headers_arrive_one_byte_per_round() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Trickle the request a byte at a time: every write lands in its own
    // readiness round, so the reactor must resume the parse dozens of
    // times without losing state or timing the peer out early.
    for byte in pipelined_get(7) {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).unwrap();
    assert_eq!(response.status(), Status::Ok);
    assert_eq!(response.body_text(), "7");
    server.shutdown();
}

#[test]
fn pipelined_requests_in_one_write_answer_in_order() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut wire = Vec::new();
    for n in 0..5 {
        wire.extend_from_slice(&pipelined_get(n));
    }
    stream.write_all(&wire).unwrap();
    let mut reader = BufReader::new(stream);
    for n in 0..5 {
        let response = read_response(&mut reader).unwrap();
        assert_eq!(response.status(), Status::Ok, "response {n}");
        assert_eq!(response.body_text(), n.to_string(), "response {n}");
    }
    server.shutdown();
}

#[test]
fn pipelined_requests_split_at_odd_boundaries_answer_in_order() {
    let server = echo_server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut wire = Vec::new();
    for n in 0..4 {
        wire.extend_from_slice(&pipelined_get(n));
    }
    // 7-byte chunks land mid-request-line, mid-header, and across
    // request boundaries; responses must still come back 0,1,2,3.
    let reader_stream = stream.try_clone().unwrap();
    let reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(reader_stream);
        (0..4)
            .map(|_| read_response(&mut reader).unwrap().body_text())
            .collect::<Vec<_>>()
    });
    for chunk in wire.chunks(7) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let bodies = reader.join().unwrap();
    assert_eq!(bodies, vec!["0", "1", "2", "3"]);
    server.shutdown();
}

#[test]
fn read_deadline_mid_body_answers_408() {
    let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
        .unwrap()
        .with_config(ServerConfig {
            read_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        })
        .start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Declare 10 body bytes, deliver 3, then stall.
    stream
        .write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        .unwrap();
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).unwrap();
    assert_eq!(response.status(), Status::RequestTimeout);
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "408 must come from the deadline, not an immediate rejection"
    );
    // The server closes after a 408; the stream must reach EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn idle_keep_alive_connection_is_closed_silently_on_deadline() {
    let server = Server::bind("127.0.0.1:0", |_| Response::html("ok"))
        .unwrap()
        .with_config(ServerConfig {
            read_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        })
        .start();
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // No bytes sent: the idle deadline closes the connection with no
    // response on the wire.
    let mut reader = BufReader::new(stream);
    let mut leftover = Vec::new();
    reader.read_to_end(&mut leftover).unwrap();
    assert!(leftover.is_empty(), "got unexpected bytes: {leftover:?}");
    server.shutdown();
}

#[test]
fn keep_alive_socket_serves_sequential_requests() {
    let server = echo_server();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for n in [1usize, 2, 3] {
        writer.write_all(&pipelined_get(n)).unwrap();
        let response = read_response(&mut reader).unwrap();
        assert_eq!(response.body_text(), n.to_string());
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    server.shutdown();
}

#[test]
fn client_pool_reuses_connections_and_counts_them() {
    let server = echo_server();
    let reused = powerplay_telemetry::global().counter(
        "powerplay_http_client_reused_total",
        "Client requests served over a reused pooled keep-alive connection",
    );
    let base = format!("http://{}", server.addr());
    let before = reused.get();
    // First request opens the connection and parks it; the follow-ups
    // ride the pooled socket.
    for n in 0..4 {
        let r = http_get(&format!("{base}/e?n={n}")).unwrap();
        assert_eq!(r.body_text(), n.to_string());
    }
    let delta = reused.get() - before;
    assert!(
        delta >= 2,
        "expected at least 2 of the 3 follow-up requests to reuse a pooled \
         connection, counter grew by {delta}"
    );
    server.shutdown();
}

#[test]
fn request_level_shed_answers_503_without_closing_other_streams() {
    // One worker, zero queue: while it is busy every new request sheds.
    let gate = Arc::new(std::sync::Barrier::new(2));
    let handler_gate = Arc::clone(&gate);
    let server = Server::bind("127.0.0.1:0", move |req| {
        if req.path() == "/slow" {
            handler_gate.wait(); // entered
            handler_gate.wait(); // released
        }
        Response::html("done")
    })
    .unwrap()
    .with_config(ServerConfig {
        workers: 1,
        queue_capacity: 0,
        ..ServerConfig::default()
    })
    .start();
    let addr = server.addr();

    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /slow HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(stream);
        read_response(&mut reader).unwrap()
    });
    gate.wait(); // the slow request is inside the handler

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /fast HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let shed = read_response(&mut reader).unwrap();
    assert_eq!(shed.status(), Status::ServiceUnavailable);

    gate.wait(); // release the slow handler
    assert_eq!(slow.join().unwrap().status(), Status::Ok);
    server.shutdown();
}

#[test]
fn shutdown_with_idle_keep_alive_connections_returns_promptly() {
    let server = echo_server();
    let addr = server.addr();
    // Three idle keep-alive connections, each having served a request.
    let mut parked = Vec::new();
    for n in 0..3 {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(&pipelined_get(n)).unwrap();
        assert_eq!(
            read_response(&mut reader).unwrap().body_text(),
            n.to_string()
        );
        parked.push(reader);
    }
    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must not wait out idle keep-alive peers"
    );
    // Every parked connection sees EOF, not a hang or an RST error.
    for mut reader in parked {
        let mut line = String::new();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    }
}
