//! Integration tests for live design event streams: behaviors that only
//! show up across real sockets on the reactor — concurrent subscribers
//! fed from a third connection, `Last-Event-ID` resume, slow-consumer
//! backpressure, heartbeats, and the shutdown drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use powerplay_json::Json;
use powerplay_library::builtin::ucb_library;
use powerplay_sheet::Sheet;
use powerplay_web::app::PowerPlayApp;
use powerplay_web::events::sse_frame;
use powerplay_web::http::{http_put, ServerConfig, ServerHandle};

fn serve(tag: &str) -> (Arc<PowerPlayApp>, ServerHandle) {
    serve_with(tag, ServerConfig::default())
}

fn serve_with(tag: &str, config: ServerConfig) -> (Arc<PowerPlayApp>, ServerHandle) {
    let dir = std::env::temp_dir().join(format!("powerplay-events-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app = PowerPlayApp::new(ucb_library(), dir);
    let server = app.serve_with("127.0.0.1:0", config).unwrap();
    (app, server)
}

fn sheet_json(vdd: &str) -> String {
    let mut sheet = Sheet::new("d");
    sheet.set_global("vdd", vdd).unwrap();
    sheet.set_global("f", "2e6").unwrap();
    sheet
        .add_element_row("R", "ucb/register", [("bits", "16")])
        .unwrap();
    sheet.to_json().to_string()
}

fn put_design(addr: std::net::SocketAddr, vdd: &str, if_match: Option<&str>) -> u64 {
    let response = http_put(
        &format!("http://{addr}/api/v1/designs/alice/d"),
        sheet_json(vdd).as_bytes(),
        "application/json",
        if_match,
    )
    .unwrap();
    assert!(
        response.status().code() < 300,
        "PUT failed: {}",
        response.body_text()
    );
    Json::parse(&response.body_text()).unwrap()["rev"]
        .as_f64()
        .unwrap() as u64
}

/// Opens an SSE stream for `alice/d` and consumes the response head.
fn open_stream(addr: std::net::SocketAddr, last_event_id: Option<u64>) -> BufReader<TcpStream> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let resume = last_event_id.map_or(String::new(), |id| format!("Last-Event-ID: {id}\r\n"));
    stream
        .write_all(
            format!(
                "GET /api/v1/designs/alice/d/events HTTP/1.1\r\n\
                 Accept: text/event-stream\r\n{resume}\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("200"), "stream refused: {line}");
    let mut saw_content_type = false;
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let lower = line.to_ascii_lowercase();
        saw_content_type |= lower.contains("text/event-stream");
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    assert!(saw_content_type, "missing text/event-stream content type");
    reader
}

/// Reads one SSE event off the stream: `(event, id, data)`. Comments
/// (heartbeats) and `retry:` hints are skipped.
fn read_event(reader: &mut BufReader<TcpStream>) -> (String, Option<u64>, String) {
    let (mut id, mut event, mut data) = (None, String::new(), String::new());
    let mut line = String::new();
    loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "stream closed mid-event"
        );
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            if event.is_empty() {
                continue; // delimiter after a retry hint or comment
            }
            return (event, id, data);
        } else if let Some(value) = trimmed.strip_prefix("id:") {
            id = value.trim().parse().ok();
        } else if let Some(value) = trimmed.strip_prefix("event:") {
            event = value.trim().to_owned();
        } else if let Some(value) = trimmed.strip_prefix("data:") {
            if !data.is_empty() {
                data.push('\n');
            }
            data.push_str(value.trim_start());
        }
    }
}

/// The acceptance path: two concurrent subscribers on the real reactor
/// both see every revision a third connection commits, in revision
/// order, with the delta-replayed report on board.
#[test]
fn two_subscribers_see_revisions_from_a_third_connection() {
    let (_app, server) = serve("fanout");
    let addr = server.addr();
    assert_eq!(put_design(addr, "1.5", None), 1);

    let mut a = open_stream(addr, None);
    let mut b = open_stream(addr, None);
    for reader in [&mut a, &mut b] {
        let (event, id, data) = read_event(reader);
        assert_eq!(event, "snapshot");
        assert_eq!(id, Some(1));
        let parsed = Json::parse(&data).unwrap();
        assert_eq!(parsed["design"]["name"].as_str(), Some("d"));
    }

    // Two commits from a third connection; both streams must deliver
    // them in revision order.
    assert_eq!(put_design(addr, "3.3", Some("\"1\"")), 2);
    assert_eq!(put_design(addr, "2.5", Some("\"2\"")), 3);
    for (who, reader) in [("a", &mut a), ("b", &mut b)] {
        for expected in [2u64, 3] {
            let (event, id, data) = read_event(reader);
            assert_eq!(event, "revision", "{who} rev {expected}");
            assert_eq!(id, Some(expected), "{who} out of order");
            let parsed = Json::parse(&data).unwrap();
            assert_eq!(parsed["rev"].as_f64(), Some(expected as f64));
            assert_eq!(parsed["etag"].as_str().unwrap(), format!("\"{expected}\""));
            assert_eq!(parsed["author"].as_str(), Some("alice"));
            // The delta-replayed report rides along, ready to render.
            assert!(parsed["report"]["total_w"].as_f64().unwrap() > 0.0);
        }
    }

    // A stale If-Match from yet another connection surfaces as a
    // transient conflict event on the live streams.
    let conflict = http_put(
        &format!("http://{addr}/api/v1/designs/alice/d"),
        sheet_json("9.9").as_bytes(),
        "application/json",
        Some("\"1\""),
    )
    .unwrap();
    assert_eq!(conflict.status().code(), 409);
    for reader in [&mut a, &mut b] {
        let (event, id, data) = read_event(reader);
        assert_eq!(event, "conflict");
        assert_eq!(id, None);
        let parsed = Json::parse(&data).unwrap();
        assert_eq!(parsed["expected"].as_f64(), Some(1.0));
        assert_eq!(parsed["actual"].as_f64(), Some(3.0));
    }
    server.shutdown();
}

#[test]
fn last_event_id_resumes_with_exactly_the_missed_revisions() {
    let (_app, server) = serve("resume");
    let addr = server.addr();
    assert_eq!(put_design(addr, "1.5", None), 1);
    assert_eq!(put_design(addr, "1.6", Some("\"1\"")), 2);
    assert_eq!(put_design(addr, "1.7", Some("\"2\"")), 3);
    assert_eq!(put_design(addr, "1.8", Some("\"3\"")), 4);

    // A reconnect that saw revision 2 gets 3 and 4 — no snapshot, no
    // duplicates — then live events continue seamlessly.
    let mut reader = open_stream(addr, Some(2));
    for expected in [3u64, 4] {
        let (event, id, _) = read_event(&mut reader);
        assert_eq!(event, "revision");
        assert_eq!(id, Some(expected));
    }
    assert_eq!(put_design(addr, "1.9", Some("\"4\"")), 5);
    let (event, id, _) = read_event(&mut reader);
    assert_eq!(event, "revision");
    assert_eq!(id, Some(5));
    server.shutdown();
}

/// A subscriber that stops reading hits the reactor's per-stream buffer
/// cap and is dropped — counted in `powerplay_events_dropped_total` —
/// while a healthy subscriber on the same topic keeps receiving.
#[test]
fn slow_consumer_is_dropped_without_stalling_others() {
    let (app, server) = serve("backpressure");
    let addr = server.addr();
    assert_eq!(put_design(addr, "1.5", None), 1);

    // The slow peer subscribes and then never reads another byte; the
    // fast peer drains its stream on a dedicated thread.
    let slow = open_stream(addr, None);
    let mut fast = open_stream(addr, None);
    assert_eq!(read_event(&mut fast).0, "snapshot");
    let drained = std::thread::spawn(move || {
        let mut blobs = 0usize;
        loop {
            let (event, _, _) = read_event(&mut fast);
            match event.as_str() {
                "blob" => blobs += 1,
                "done" => return blobs,
                other => panic!("unexpected event {other}"),
            }
        }
    });

    let dropped = powerplay_telemetry::global().counter(
        "powerplay_events_dropped_total",
        "Event-stream subscribers dropped for exceeding the write-buffer cap",
    );
    let before = dropped.get();
    // 64 KiB frames pile up behind the unread slow socket and blow
    // through the 256 KiB reactor cap; the pacing keeps the healthy
    // reader comfortably ahead so only the slow peer accumulates. The
    // slow peer must not make publish block: the hub hands frames to
    // the reactor and moves on, so this loop finishing is itself part
    // of the assertion. The drop happens on the reactor thread; wait
    // for the subscriber count to settle at one.
    let blob = sse_frame("blob", None, &"x".repeat(64 * 1024));
    let deadline = Instant::now() + Duration::from_secs(20);
    while app.events().subscriber_count() > 1 {
        assert!(Instant::now() < deadline, "slow subscriber never dropped");
        app.events().publish_transient("alice", "d", blob.clone());
        std::thread::sleep(Duration::from_millis(5));
    }
    app.events()
        .publish_transient("alice", "d", sse_frame("done", None, "{}"));

    let blobs = drained.join().unwrap();
    assert!(blobs > 0, "fast subscriber starved");
    assert!(
        dropped.get() > before,
        "dropped_total must count the evicted slow subscriber"
    );
    drop(slow);
    server.shutdown();
}

#[test]
fn shutdown_drains_streams_with_a_final_bye() {
    let (_app, server) = serve("drain");
    let addr = server.addr();
    put_design(addr, "1.5", None);
    let mut reader = open_stream(addr, None);
    assert_eq!(read_event(&mut reader).0, "snapshot");

    let shutter = std::thread::spawn(move || server.shutdown());
    let (event, _, _) = read_event(&mut reader);
    assert_eq!(event, "bye");
    // After the farewell the server closes; the stream reaches EOF.
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    shutter.join().unwrap();
}

#[test]
fn idle_streams_get_heartbeat_comments() {
    let (_app, server) = serve_with(
        "heartbeat",
        ServerConfig {
            heartbeat_interval: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    put_design(addr, "1.5", None);
    let mut reader = open_stream(addr, None);
    assert_eq!(read_event(&mut reader).0, "snapshot");
    // With no traffic, comment lines must arrive on the interval so
    // proxies hold the connection open.
    let mut line = String::new();
    let started = Instant::now();
    loop {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "stream closed");
        if line.starts_with(':') {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "no heartbeat within 5s"
        );
    }
    server.shutdown();
}
