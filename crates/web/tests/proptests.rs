//! Property tests for the HTTP substrate: the parser must never panic on
//! hostile bytes (the server is network-facing), and the codecs must
//! round-trip.

use std::io::BufReader;

use powerplay_web::http::urlencoded::{decode, encode, encode_pairs, parse_pairs};
use powerplay_web::http::{base64, Request};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes never panic the request parser.
    #[test]
    fn request_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::read_from(&mut BufReader::new(bytes.as_slice()));
    }

    /// Arbitrary *textual* request lines never panic either (covers the
    /// UTF-8 paths the byte fuzz tends to miss).
    #[test]
    fn request_parser_handles_arbitrary_text(text in "\\PC{0,256}") {
        let _ = Request::read_from(&mut BufReader::new(text.as_bytes()));
    }

    /// Percent-encoding round-trips any string.
    #[test]
    fn urlencoded_roundtrip(s in "\\PC{0,64}") {
        prop_assert_eq!(decode(&encode(&s)), s);
    }

    /// The decoder never panics on malformed escapes.
    #[test]
    fn urlencoded_decode_total(s in "[%+a-zA-Z0-9]{0,64}") {
        let _ = decode(&s);
    }

    /// Form pairs round-trip through encode/parse.
    #[test]
    fn form_pairs_roundtrip(pairs in prop::collection::vec(("[a-z]{1,8}", "\\PC{0,16}"), 0..8)) {
        let refs: Vec<(&str, &str)> = pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let encoded = encode_pairs(refs.iter().copied());
        let parsed = parse_pairs(&encoded);
        let expected: Vec<(String, String)> =
            pairs.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(parsed, expected);
    }

    /// Base64 round-trips arbitrary bytes; the decoder is total.
    #[test]
    fn base64_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let decoded = base64::decode(&base64::encode(&bytes));
        prop_assert_eq!(decoded.as_deref(), Some(bytes.as_slice()));
    }

    #[test]
    fn base64_decode_total(s in "\\PC{0,64}") {
        let _ = base64::decode(&s);
    }

    /// A well-formed request with arbitrary header values parses and the
    /// body survives byte-exact.
    #[test]
    fn request_body_roundtrip(body in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let req = Request::read_from(&mut BufReader::new(raw.as_slice())).unwrap();
        prop_assert_eq!(req.body(), body.as_slice());
    }

    /// The resumable parser is chunk-boundary independent: a pipelined
    /// byte stream fed at arbitrary cut points yields exactly the same
    /// request sequence as parsing it whole — the property the reactor
    /// relies on when TCP fragments requests mid-header or mid-body.
    #[test]
    fn parse_prefix_is_chunk_boundary_independent(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..4),
        cuts in prop::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut wire = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            wire.extend_from_slice(
                format!(
                    "POST /d{i} HTTP/1.1\r\nContent-Length: {}\r\nX-Seq: {i}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            );
            wire.extend_from_slice(body);
        }

        // Reference: parse the whole stream at once.
        let mut reference = Vec::new();
        let mut whole = wire.clone();
        while let Some((req, consumed)) = Request::parse_prefix(&whole).unwrap() {
            reference.push((req.path().to_owned(), req.body().to_vec()));
            whole.drain(..consumed);
        }
        prop_assert_eq!(reference.len(), bodies.len());
        prop_assert!(whole.is_empty());

        // Incremental: feed the same bytes at arbitrary cut points.
        let mut cut_points: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
        cut_points.push(wire.len());
        cut_points.sort_unstable();
        let mut parsed = Vec::new();
        let mut buf = Vec::new();
        let mut fed = 0;
        for cut in cut_points {
            if cut <= fed {
                continue;
            }
            buf.extend_from_slice(&wire[fed..cut]);
            fed = cut;
            while let Some((req, consumed)) = Request::parse_prefix(&buf).unwrap() {
                parsed.push((req.path().to_owned(), req.body().to_vec()));
                buf.drain(..consumed);
            }
        }
        prop_assert_eq!(parsed, reference);
    }
}
