//! Property tests for the linter: total robustness (never panics on
//! arbitrary sheets, defective or not) and the headline soundness
//! guarantee — a sheet with zero `Error` diagnostics always plays
//! without a structural error.

use proptest::prelude::*;

use powerplay_library::builtin::ucb_library;
use powerplay_library::{EvaluateElementError, Registry};
use powerplay_lint::{lint_sheet, LintReport};
use powerplay_sheet::{EvaluateSheetError, Row, RowModel, Sheet};

/// A random small design over a handful of builtin elements, mirroring
/// the sheet engine's own property harness.
fn arb_clean_sheet() -> impl Strategy<Value = Sheet> {
    let element = prop_oneof![
        Just(("ucb/multiplier", vec![("bw_a", 4u32), ("bw_b", 8)])),
        Just(("ucb/register", vec![("bits", 16)])),
        Just(("ucb/sram", vec![("words", 512), ("bits", 8)])),
        Just(("ucb/ctrl_rom", vec![("n_i", 6), ("n_o", 12)])),
        Just(("ucb/ripple_adder", vec![("bits", 24)])),
    ];
    (
        prop::collection::vec((element, 1u32..32), 1..6),
        1.0f64..4.0,
        1e5f64..1e7,
    )
        .prop_map(|(rows, vdd, f)| {
            let mut sheet = Sheet::new("random");
            sheet.set_global_value("vdd", vdd);
            sheet.set_global_value("f", f);
            for (i, ((path, params), divider)) in rows.into_iter().enumerate() {
                let mut row = Row::new(format!("Row {i}"), RowModel::Element(path.to_owned()));
                for (param, value) in params {
                    row.bind(param, &value.to_string()).unwrap();
                }
                row.bind("f", &format!("f / {divider}")).unwrap();
                sheet.add_row(row);
            }
            sheet
        })
}

/// Injects one of a catalogue of defects the linter's passes cover:
/// name errors, structural cycles, dimension mismatches, and merely
/// suspicious (warning-level) constructs. `0` leaves the sheet intact.
fn inject_defect(sheet: &mut Sheet, defect: u32) {
    match defect {
        1 => {
            // Circular globals (E006).
            sheet.set_global("a", "b + 1").unwrap();
            sheet.set_global("b", "a * 2").unwrap();
        }
        2 => {
            // Unknown element path (E004).
            sheet
                .add_element_row("Ghost", "nowhere/nothing", [])
                .unwrap();
        }
        3 => {
            // Two rows folding to the same ident (E005).
            sheet
                .add_element_row("Twin Row", "ucb/register", [])
                .unwrap();
            sheet
                .add_element_row("twin-row", "ucb/register", [])
                .unwrap();
        }
        4 => {
            // Circular row power references (E007).
            sheet
                .add_element_row("Loop A", "ucb/dcdc", [("p_load", "P_loop_b")])
                .unwrap();
            sheet
                .add_element_row("Loop B", "ucb/dcdc", [("p_load", "P_loop_a")])
                .unwrap();
        }
        5 => {
            // Unbound variable in a binding (E001).
            sheet
                .add_element_row("Converter", "ucb/dcdc", [("p_load", "mystery_var")])
                .unwrap();
        }
        6 => {
            // Power added to a capacitance (E010) plus a `P_` reference
            // to `Row 0`, which every generated sheet has.
            sheet
                .add_element_row("Pads", "ucb/pads", [("c_pad", "P_row_0 + 100f")])
                .unwrap();
        }
        7 => {
            // Unknown function in a global (E002) — dead, but globals
            // are still evaluated at play time.
            sheet.set_global("g_bad", "frobnicate(3)").unwrap();
        }
        8 => {
            // Warning-level constructs only: a dead global (W105) and a
            // forward reference (I202) — the sheet must stay playable.
            sheet.set_global("scratch", "42").unwrap();
            sheet
                .add_element_row("Early", "ucb/dcdc", [("p_load", "P_late")])
                .unwrap();
            sheet.add_element_row("Late", "ucb/register", []).unwrap();
        }
        _ => {}
    }
}

fn lib() -> Registry {
    ucb_library()
}

/// A play failure is *structural* when static analysis is expected to
/// predict it. The only exemption is a bad physical value: whether a
/// model formula folds negative can depend on runtime magnitudes no
/// static pass can know.
fn is_structural(err: &EvaluateSheetError) -> bool {
    match err {
        EvaluateSheetError::Element {
            source: EvaluateElementError::BadValue { .. },
            ..
        } => false,
        EvaluateSheetError::Nested { source, .. } => is_structural(source),
        _ => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The linter terminates without panicking on arbitrary sheets,
    /// defective or not, and its renderers accept whatever it found.
    #[test]
    fn lint_never_panics(sheet in arb_clean_sheet(), defect in 0u32..9) {
        let mut sheet = sheet;
        inject_defect(&mut sheet, defect);
        let report = lint_sheet(&sheet, &lib());
        // Exercise every renderer on the arbitrary report.
        let _ = report.render_text();
        let _ = report.render_html();
        let _ = report.summary();
        prop_assert!(report.len() >= report.count(powerplay_lint::Severity::Error));
    }

    /// The report survives a round trip through the JSON wire format.
    #[test]
    fn report_json_round_trips(sheet in arb_clean_sheet(), defect in 0u32..9) {
        let mut sheet = sheet;
        inject_defect(&mut sheet, defect);
        let report = lint_sheet(&sheet, &lib());
        let text = report.to_json().to_pretty();
        let parsed = powerplay_json::Json::parse(&text).unwrap();
        prop_assert_eq!(LintReport::from_json(&parsed).unwrap(), report);
    }

    /// Soundness: zero `Error` diagnostics implies the sheet plays
    /// without a structural error. (Warnings and infos make no such
    /// promise, and runtime-value errors are exempt by design.)
    #[test]
    fn error_free_sheets_play(sheet in arb_clean_sheet(), defect in 0u32..9) {
        let mut sheet = sheet;
        inject_defect(&mut sheet, defect);
        let registry = lib();
        let report = lint_sheet(&sheet, &registry);
        if !report.has_errors() {
            match sheet.play(&registry) {
                Ok(_) => {}
                Err(err) => prop_assert!(
                    !is_structural(&err),
                    "lint-clean sheet failed structurally: {err:?}\nreport:\n{}",
                    report.render_text()
                ),
            }
        }
    }

    /// Completeness on the injected catalogue: every *structural* play
    /// failure is predicted by at least one `Error` diagnostic.
    #[test]
    fn structural_failures_are_predicted(sheet in arb_clean_sheet(), defect in 0u32..9) {
        let mut sheet = sheet;
        inject_defect(&mut sheet, defect);
        let registry = lib();
        if let Err(err) = sheet.play(&registry) {
            if is_structural(&err) {
                let report = lint_sheet(&sheet, &registry);
                prop_assert!(
                    report.has_errors(),
                    "play failed with {err:?} but lint found no errors:\n{}",
                    report.render_text()
                );
            }
        }
    }
}
