//! Static analysis of a single library element's model.

use std::collections::BTreeSet;

use powerplay_expr::Expr;
use powerplay_library::{ElementClass, LibraryElement};
use powerplay_units::dim::Dim;

use crate::diag::{codes, Diagnostic, LintReport};
use crate::dims::{check_constant_folds, infer_dims, DimInfo};

/// The model formula slots with their expected result dimension.
///
/// Path segments are the `ElementModel` field names, so diagnostics line
/// up with the JSON model format.
pub(crate) fn slots(element: &LibraryElement) -> Vec<(&'static str, &Expr, Dim)> {
    let m = element.model();
    let mut out = Vec::new();
    if let Some(e) = &m.cap_full {
        out.push(("cap_full", e, Dim::FARAD));
    }
    if let Some((cap, swing)) = &m.cap_partial {
        out.push(("cap_partial/cap", cap, Dim::FARAD));
        out.push(("cap_partial/swing", swing, Dim::VOLT));
    }
    if let Some(e) = &m.static_current {
        out.push(("static_current", e, Dim::AMPERE));
    }
    if let Some(e) = &m.power_direct {
        out.push(("power_direct", e, Dim::WATT));
    }
    if let Some(e) = &m.area {
        out.push(("area", e, Dim::SQ_METRE));
    }
    if let Some(e) = &m.delay {
        out.push(("delay", e, Dim::SECOND));
    }
    out
}

/// Lints one library element in isolation, as the registry does on
/// upload: undeclared variables are [`crate::Severity::Error`]s because
/// a registry model has nothing but its parameters and `vdd`/`f` to
/// resolve against.
///
/// (Inline row models are *not* linted with this function — they
/// resolve through the whole sheet scope chain, which
/// [`crate::lint_sheet`] models.)
pub fn lint_element(element: &LibraryElement) -> LintReport {
    let metrics = crate::obs::lint_metrics();
    metrics.reports_total.inc();
    let _timer = metrics.element_pass_seconds.start_timer();
    let mut out = LintReport::new();
    let declared: BTreeSet<&str> = element.params().iter().map(|p| p.name.as_str()).collect();

    // E013: variables no parameter declares. Reported per slot so the
    // path pins down the offending formula.
    for (slot, expr, _) in slots(element) {
        let path = format!("model/{slot}");
        for var in expr.free_variables() {
            if var != "vdd" && var != "f" && !declared.contains(var.as_str()) {
                out.push(
                    Diagnostic::error(
                        codes::UNDECLARED_MODEL_VARIABLE,
                        &path,
                        format!("model references `{var}`, which is not a declared parameter"),
                    )
                    .with_suggestion(format!(
                        "declare `{var}` as a parameter with a default, or rename it to one of: {}",
                        declared_list(element)
                    )),
                );
            }
        }
    }

    // W113: parameters nothing reads.
    let used: BTreeSet<String> = slots(element)
        .iter()
        .flat_map(|(_, e, _)| e.free_variables())
        .collect();
    for p in element.params() {
        if !used.contains(&p.name) {
            out.push(
                Diagnostic::warning(
                    codes::DEAD_PARAM,
                    format!("params/{}", p.name),
                    format!("parameter `{}` is never read by any model formula", p.name),
                )
                .with_suggestion("remove the parameter or reference it in a formula"),
            );
        }
    }

    // Per-slot expression checks: dimension inference against the slot's
    // expected dimension, and constant-folding plausibility.
    let lookup = |name: &str| -> DimInfo {
        match name {
            "vdd" => DimInfo::Known(Dim::VOLT),
            "f" => DimInfo::Known(Dim::HERTZ),
            // Parameters are untyped: `bits` is a count, `c_pad` is
            // farads — the author knows, the checker assumes nothing.
            _ => DimInfo::Any,
        }
    };
    for (slot, expr, expected) in slots(element) {
        let path = format!("model/{slot}");
        let inferred = infer_dims(expr, &path, &lookup, &mut out);
        if let Some(d) = inferred.known() {
            if d != expected {
                out.push(Diagnostic::warning(
                    codes::RESULT_DIM,
                    &path,
                    format!("formula has dimension {d}, but this slot holds {expected}"),
                ));
            }
        }
        check_constant_folds(expr, &path, &mut out);
        if let Some(v) = expr.constant_value() {
            if v.is_finite() && v < 0.0 {
                out.push(Diagnostic::error(
                    codes::NEGATIVE_CONSTANT_MODEL,
                    &path,
                    format!("formula always evaluates to {v}; physical values must be >= 0"),
                ));
            }
        }
    }

    // W109: converter efficiency defaults outside (0, 1].
    if element.class() == ElementClass::Converter {
        if let Some(eta) = element.params().iter().find(|p| p.name == "eta") {
            if !(eta.default > 0.0 && eta.default <= 1.0) {
                out.push(Diagnostic::warning(
                    codes::ETA_OUT_OF_RANGE,
                    "params/eta",
                    format!(
                        "converter efficiency defaults to {}, outside (0, 1]",
                        eta.default
                    ),
                ));
            }
        }
    }

    out
}

fn declared_list(element: &LibraryElement) -> String {
    let names: Vec<&str> = element
        .params()
        .iter()
        .map(|p| p.name.as_str())
        .chain(["vdd", "f"])
        .collect();
    names.join(", ")
}

/// Lints every element of a registry, each report prefixed with the
/// element's registry path (`elements/<name>/…`).
pub fn lint_registry(registry: &powerplay_library::Registry) -> LintReport {
    let mut out = LintReport::new();
    for element in registry.iter() {
        out.merge(lint_element(element).prefixed(&format!("elements/{}/", element.name())));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerplay_library::builtin::ucb_library;
    use powerplay_library::{ElementModel, ParamDecl};

    fn element(params: Vec<ParamDecl>, model: ElementModel) -> LibraryElement {
        LibraryElement::new("test/e", ElementClass::Computation, "", params, model)
    }

    #[test]
    fn undeclared_variable_is_an_error_with_slot_path() {
        let e = element(
            vec![ParamDecl::new("bits", 8.0, "")],
            ElementModel {
                cap_full: Some(Expr::parse("bits * c_unit").unwrap()),
                area: Some(Expr::parse("mystery * 1e-12").unwrap()),
                ..ElementModel::default()
            },
        );
        let report = lint_element(&e);
        assert!(report.has_errors());
        let undeclared: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == codes::UNDECLARED_MODEL_VARIABLE)
            .collect();
        assert_eq!(undeclared.len(), 2);
        assert_eq!(undeclared[0].path, "model/cap_full");
        assert!(undeclared[0].message.contains("c_unit"));
        assert_eq!(undeclared[1].path, "model/area");
        assert!(undeclared[1].message.contains("mystery"));
    }

    #[test]
    fn dead_param_warns() {
        let e = element(
            vec![
                ParamDecl::new("bits", 8.0, ""),
                ParamDecl::new("unused", 1.0, ""),
            ],
            ElementModel {
                cap_full: Some(Expr::parse("bits * 100f").unwrap()),
                ..ElementModel::default()
            },
        );
        let report = lint_element(&e);
        assert!(!report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::DEAD_PARAM && d.path == "params/unused"));
    }

    #[test]
    fn negative_constant_model_is_an_error() {
        let e = element(
            vec![],
            ElementModel {
                cap_full: Some(Expr::parse("0 - 5f").unwrap()),
                ..ElementModel::default()
            },
        );
        let report = lint_element(&e);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::NEGATIVE_CONSTANT_MODEL));
    }

    #[test]
    fn non_finite_constant_model_is_an_error() {
        let e = element(
            vec![],
            ElementModel {
                power_direct: Some(Expr::parse("1 / 0").unwrap()),
                ..ElementModel::default()
            },
        );
        let report = lint_element(&e);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::NON_FINITE_CONSTANT));
    }

    #[test]
    fn result_dim_conflict_warns() {
        // A power formula that is dimensionally a capacitance.
        let e = element(
            vec![ParamDecl::new("c_load", 1e-12, "")],
            ElementModel {
                power_direct: Some(Expr::parse("vdd * vdd * f * 1f * 2").unwrap()),
                ..ElementModel::default()
            },
        );
        let report = lint_element(&e);
        // V*V*Hz with polymorphic factors is V^2*Hz, not W.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::RESULT_DIM && d.path == "model/power_direct"));
        assert!(!report.has_errors());
    }

    #[test]
    fn builtin_library_has_no_errors() {
        let report = lint_registry(&ucb_library());
        let errors: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == crate::Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn eta_default_out_of_range_warns() {
        let e = LibraryElement::new(
            "test/dcdc",
            ElementClass::Converter,
            "",
            vec![
                ParamDecl::new("p_load", 1.0, ""),
                ParamDecl::new("eta", 1.3, ""),
            ],
            ElementModel {
                power_direct: Some(Expr::parse("p_load / eta - p_load").unwrap()),
                ..ElementModel::default()
            },
        );
        let report = lint_element(&e);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::ETA_OUT_OF_RANGE));
    }
}
