//! Lint-pass metrics, registered once in the process-global telemetry
//! registry. Pass timings are labelled by entry point (`pass="sheet"` /
//! `pass="element"`), so a slow upload path and a slow design path show
//! up as separate series on `/metrics`.

use std::sync::OnceLock;

use powerplay_telemetry::{Counter, Histogram};

pub(crate) struct LintMetrics {
    pub(crate) sheet_pass_seconds: Histogram,
    pub(crate) element_pass_seconds: Histogram,
    pub(crate) reports_total: Counter,
}

pub(crate) fn lint_metrics() -> &'static LintMetrics {
    static METRICS: OnceLock<LintMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = powerplay_telemetry::global();
        let help = "Time to run one lint pass";
        LintMetrics {
            sheet_pass_seconds: g.histogram_with(
                "powerplay_lint_pass_seconds",
                &[("pass", "sheet")],
                help,
            ),
            element_pass_seconds: g.histogram_with(
                "powerplay_lint_pass_seconds",
                &[("pass", "element")],
                help,
            ),
            reports_total: g.counter(
                "powerplay_lint_reports_total",
                "Lint reports produced (sheet and element passes)",
            ),
        }
    })
}
