//! Diagnostic values, severities, codes, and renderable reports.

use std::fmt;

use powerplay_json::Json;

/// How serious a diagnostic is.
///
/// Ordered so `Error > Warning > Info`, letting callers take the maximum
/// severity of a report with `iter().map(|d| d.severity).max()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; the sheet is fine.
    Info,
    /// Suspicious but evaluable; the result may not mean what you think.
    Warning,
    /// The sheet or model cannot evaluate, or is physically nonsensical.
    Error,
}

impl Severity {
    /// Stable lowercase identifier used in JSON and CLI output.
    pub fn id(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the identifier produced by [`Self::id`].
    pub fn from_id(id: &str) -> Option<Severity> {
        match id {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The stable diagnostic code table.
///
/// `E…` codes are [`Severity::Error`]: the sheet will fail to `play()`
/// (or a model is physically nonsensical). `W…` codes are warnings:
/// evaluable but suspicious. `I…` codes are informational. Codes are
/// part of the machine-readable interface — tools filter on them and
/// the `allow` mechanism suppresses them by code — so they are never
/// renumbered, only appended.
pub mod codes {
    /// Reference to a variable nothing in scope defines.
    pub const UNBOUND_VARIABLE: &str = "E001";
    /// Call of a function that is not a builtin.
    pub const UNKNOWN_FUNCTION: &str = "E002";
    /// Builtin called with the wrong number of arguments.
    pub const WRONG_ARITY: &str = "E003";
    /// Row instantiates an element path missing from the registry.
    pub const UNKNOWN_ELEMENT: &str = "E004";
    /// Two rows fold to the same `P_`/`A_` identifier.
    pub const DUPLICATE_ROW_IDENT: &str = "E005";
    /// Global definitions form a cycle.
    pub const CIRCULAR_GLOBALS: &str = "E006";
    /// Row dependencies form a cycle.
    pub const CIRCULAR_ROWS: &str = "E007";
    /// `P_`/`A_` reference to a row that does not exist (or cannot be
    /// visible at that point of evaluation).
    pub const REF_UNKNOWN_ROW: &str = "E008";
    /// `A_` reference to a row whose model has no area.
    pub const AREA_REF_NO_AREA: &str = "E009";
    /// Adding or subtracting quantities of different dimensions.
    pub const DIM_MISMATCH: &str = "E010";
    /// A constant subexpression folds to a non-finite value.
    pub const NON_FINITE_CONSTANT: &str = "E011";
    /// A constant model formula folds to a negative physical value.
    pub const NEGATIVE_CONSTANT_MODEL: &str = "E012";
    /// A library model references a variable it does not declare.
    pub const UNDECLARED_MODEL_VARIABLE: &str = "E013";
    /// An element needs `vdd`/`f` but nothing in scope provides them.
    pub const MISSING_OPERATING_POINT: &str = "E014";
    /// A model formula's proven value interval is entirely negative:
    /// every evaluation within the declared input ranges fails with
    /// `BadValue`.
    pub const PROVABLY_NEGATIVE_VALUE: &str = "E015";
    /// A model formula provably evaluates to NaN (or only to NaN) for
    /// every input in the declared ranges, so evaluation always fails.
    pub const PROVABLY_NAN_VALUE: &str = "E016";
    /// A Liberty (`.lib`) source that cannot be parsed at all — the
    /// message carries the `line:column` of the first offending token.
    pub const UNPARSABLE_LIBRARY: &str = "E017";

    /// Comparison (or `%`) between quantities of different dimensions.
    pub const DIM_COMPARISON: &str = "W101";
    /// Function argument with an unexpected dimension.
    pub const DIM_FUNCTION_ARG: &str = "W102";
    /// Bound value's dimension conflicts with the name's convention.
    pub const BINDING_TARGET_DIM: &str = "W103";
    /// Model formula's dimension conflicts with its slot (farads,
    /// amperes, watts, …).
    pub const RESULT_DIM: &str = "W104";
    /// Global parameter never read anywhere in the sheet.
    pub const DEAD_GLOBAL: &str = "W105";
    /// Row binding that nothing (parameter, model, or later binding)
    /// reads.
    pub const DEAD_BINDING: &str = "W106";
    /// Clocked element evaluated at a constant zero frequency.
    pub const ZERO_FREQUENCY: &str = "W107";
    /// Reduced-swing voltage exceeds the supply.
    pub const SWING_EXCEEDS_VDD: &str = "W108";
    /// Converter efficiency outside `(0, 1]`.
    pub const ETA_OUT_OF_RANGE: &str = "W109";
    /// Physical binding folds to a negative constant.
    pub const NEGATIVE_CONSTANT_BINDING: &str = "W110";
    /// Reference to a parent row's `P_`/`A_` that works only because of
    /// the current evaluation order.
    pub const ORDER_DEPENDENT_REF: &str = "W111";
    /// Dimensional quantity raised to a non-integer/non-constant power,
    /// or an exponent that itself has a dimension.
    pub const POW_DIMENSIONAL_EXPONENT: &str = "W112";
    /// Declared model parameter no formula reads.
    pub const DEAD_PARAM: &str = "W113";
    /// A division whose denominator interval contains zero: the
    /// quotient can be ±inf or NaN within the declared input ranges.
    pub const POSSIBLE_DIV_ZERO: &str = "W114";
    /// A formula or power term can evaluate to NaN somewhere inside the
    /// declared input ranges (evaluation may fail there).
    pub const NAN_REACHABLE: &str = "W115";
    /// An `if` branch the analyzer proved can never be taken within the
    /// declared input ranges.
    pub const DEAD_BRANCH: &str = "W116";
    /// A row whose power is provably zero over the declared input
    /// ranges — it contributes nothing to the total.
    pub const DEAD_ROW: &str = "W117";
    /// A row whose power is proven constant: it depends on no input and
    /// could be folded to a literal data-sheet entry.
    pub const CONSTANT_FOLDABLE_ROW: &str = "W118";
    /// A Liberty construct the EQ-1 lowering cannot express (a cell
    /// with no power data, a `bus`/`bundle` group, a table referencing
    /// an undefined template, …) — parsed but skipped.
    pub const UNMAPPABLE_CONSTRUCT_SKIPPED: &str = "W119";
    /// A Liberty unit attribute that does not parse as the expected
    /// physical unit; the importer fell back to the Liberty default.
    pub const UNIT_MISMATCH: &str = "W120";

    /// Row binding shadows a sheet global of the same name.
    pub const SHADOWED_GLOBAL: &str = "I201";
    /// `P_`/`A_` reference to a row defined later in the sheet
    /// (resolved by dependency order).
    pub const FORWARD_REF: &str = "I202";
    /// A Liberty lookup table collapsed to one representative EQ-1
    /// coefficient — the message records the table hull and the chosen
    /// midpoint.
    pub const TABLE_COLLAPSED: &str = "I203";

    /// Every code with its short kebab-case slug, for docs and UIs.
    pub const ALL: [(&str, &str); 40] = [
        (UNBOUND_VARIABLE, "unbound-variable"),
        (UNKNOWN_FUNCTION, "unknown-function"),
        (WRONG_ARITY, "wrong-arity"),
        (UNKNOWN_ELEMENT, "unknown-element"),
        (DUPLICATE_ROW_IDENT, "duplicate-row-ident"),
        (CIRCULAR_GLOBALS, "circular-globals"),
        (CIRCULAR_ROWS, "circular-rows"),
        (REF_UNKNOWN_ROW, "ref-unknown-row"),
        (AREA_REF_NO_AREA, "area-ref-no-area"),
        (DIM_MISMATCH, "dim-mismatch"),
        (NON_FINITE_CONSTANT, "non-finite-constant"),
        (NEGATIVE_CONSTANT_MODEL, "negative-constant-model"),
        (UNDECLARED_MODEL_VARIABLE, "undeclared-model-variable"),
        (MISSING_OPERATING_POINT, "missing-operating-point"),
        (PROVABLY_NEGATIVE_VALUE, "provably-negative-value"),
        (PROVABLY_NAN_VALUE, "provably-nan-value"),
        (UNPARSABLE_LIBRARY, "unparsable-library"),
        (DIM_COMPARISON, "dim-comparison"),
        (DIM_FUNCTION_ARG, "dim-function-arg"),
        (BINDING_TARGET_DIM, "binding-target-dim"),
        (RESULT_DIM, "result-dim"),
        (DEAD_GLOBAL, "dead-global"),
        (DEAD_BINDING, "dead-binding"),
        (ZERO_FREQUENCY, "zero-frequency"),
        (SWING_EXCEEDS_VDD, "swing-exceeds-vdd"),
        (ETA_OUT_OF_RANGE, "eta-out-of-range"),
        (NEGATIVE_CONSTANT_BINDING, "negative-constant-binding"),
        (ORDER_DEPENDENT_REF, "order-dependent-ref"),
        (POW_DIMENSIONAL_EXPONENT, "pow-dimensional-exponent"),
        (DEAD_PARAM, "dead-param"),
        (POSSIBLE_DIV_ZERO, "possible-div-zero"),
        (NAN_REACHABLE, "nan-reachable"),
        (DEAD_BRANCH, "dead-branch"),
        (DEAD_ROW, "dead-row"),
        (CONSTANT_FOLDABLE_ROW, "constant-foldable-row"),
        (UNMAPPABLE_CONSTRUCT_SKIPPED, "unmappable-construct-skipped"),
        (UNIT_MISMATCH, "unit-mismatch"),
        (SHADOWED_GLOBAL, "shadowed-global"),
        (FORWARD_REF, "forward-ref"),
        (TABLE_COLLAPSED, "table-collapsed"),
    ];

    /// The kebab-case slug for a code, if it is known.
    pub fn describe(code: &str) -> Option<&'static str> {
        ALL.iter().find(|(c, _)| *c == code).map(|(_, slug)| *slug)
    }
}

/// One finding of the analyzer.
///
/// `path` is a slash-separated locus into the linted artifact, e.g.
/// `globals/vdd`, `rows/Voltage Converters/bindings/p_load`, or
/// `rows/Custom Hardware/rows/Video Controller/model/cap_full` — the
/// same shape at every nesting depth, so tools can split on `/`.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: String,
    /// How serious the finding is.
    pub severity: Severity,
    /// Slash-separated locus into the sheet or model.
    pub path: String,
    /// Human-readable description of the problem.
    pub message: String,
    /// Optional actionable hint.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates an [`Severity::Error`] diagnostic.
    pub fn error(code: &str, path: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Error, path, message)
    }

    /// Creates a [`Severity::Warning`] diagnostic.
    pub fn warning(code: &str, path: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Warning, path, message)
    }

    /// Creates a [`Severity::Info`] diagnostic.
    pub fn info(code: &str, path: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Info, path, message)
    }

    fn new(
        code: &str,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code: code.to_owned(),
            severity,
            path: path.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches an actionable hint.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.path, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics with renderers for text, HTML,
/// and JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All diagnostics, in discovery order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when any diagnostic is [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// A copy with every diagnostic whose code is in `codes` removed —
    /// the `allow` mechanism for accepted findings.
    pub fn allow(&self, codes: &[&str]) -> LintReport {
        LintReport {
            diagnostics: self
                .diagnostics
                .iter()
                .filter(|d| !codes.contains(&d.code.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// A copy with every path prefixed by `prefix` — used to splice a
    /// model report into its containing sheet row.
    pub fn prefixed(&self, prefix: &str) -> LintReport {
        LintReport {
            diagnostics: self
                .diagnostics
                .iter()
                .map(|d| {
                    let mut d = d.clone();
                    d.path = if d.path.is_empty() {
                        prefix.trim_end_matches('/').to_owned()
                    } else {
                        format!("{prefix}{}", d.path)
                    };
                    d
                })
                .collect(),
        }
    }

    /// One-line tally, e.g. `2 errors, 1 warning, 3 infos`.
    pub fn summary(&self) -> String {
        fn plural(n: usize, word: &str) -> String {
            if n == 1 {
                format!("{n} {word}")
            } else {
                format!("{n} {word}s")
            }
        }
        format!(
            "{}, {}, {}",
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warning), "warning"),
            plural(self.count(Severity::Info), "info")
        )
    }

    /// Renders the report as plain text, one diagnostic per line
    /// (plus `help:` continuation lines), ending with the summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// Renders the report as an HTML fragment (a `<ul class="lint">`
    /// with one `<li class="lint-{severity}">` per diagnostic), safe to
    /// embed in a page: all content is escaped.
    pub fn render_html(&self) -> String {
        let mut out = String::from("<ul class=\"lint\">\n");
        for d in &self.diagnostics {
            out.push_str(&format!(
                "<li class=\"lint-{sev}\"><strong>{sev}[{code}]</strong> <code>{path}</code>: {msg}",
                sev = d.severity,
                code = escape_html(&d.code),
                path = escape_html(&d.path),
                msg = escape_html(&d.message),
            ));
            if let Some(s) = &d.suggestion {
                out.push_str(&format!(" <em>help: {}</em>", escape_html(s)));
            }
            out.push_str("</li>\n");
        }
        if self.diagnostics.is_empty() {
            out.push_str("<li class=\"lint-clean\">no diagnostics</li>\n");
        }
        out.push_str("</ul>\n");
        out
    }

    /// Serializes to the machine-readable JSON shape:
    ///
    /// ```json
    /// {"diagnostics": [{"code": "...", "severity": "...", "path": "...",
    ///   "message": "...", "suggestion": "..."}],
    ///  "errors": 1, "warnings": 0, "infos": 2}
    /// ```
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "diagnostics",
                Json::array(self.diagnostics.iter().map(|d| {
                    let mut o = Json::object([
                        ("code", Json::from(d.code.as_str())),
                        ("severity", Json::from(d.severity.id())),
                        ("path", Json::from(d.path.as_str())),
                        ("message", Json::from(d.message.as_str())),
                    ]);
                    if let Some(s) = &d.suggestion {
                        o.set("suggestion", Json::from(s.as_str()));
                    }
                    o
                })),
            ),
            ("errors", Json::from(self.count(Severity::Error))),
            ("warnings", Json::from(self.count(Severity::Warning))),
            ("infos", Json::from(self.count(Severity::Info))),
        ])
    }

    /// Parses the shape produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<LintReport, String> {
        let items = json
            .get("diagnostics")
            .and_then(Json::as_array)
            .ok_or("missing `diagnostics` array")?;
        let mut report = LintReport::new();
        for (i, item) in items.iter().enumerate() {
            let field = |name: &str| -> Result<String, String> {
                item.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("diagnostic {i}: missing string `{name}`"))
            };
            let severity = field("severity")?;
            let severity = Severity::from_id(&severity)
                .ok_or_else(|| format!("diagnostic {i}: unknown severity `{severity}`"))?;
            report.push(Diagnostic {
                code: field("code")?,
                severity,
                path: field("path")?,
                message: field("message")?,
                suggestion: item
                    .get("suggestion")
                    .and_then(Json::as_str)
                    .map(str::to_owned),
            });
        }
        Ok(report)
    }
}

impl FromIterator<Diagnostic> for LintReport {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        LintReport {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

impl Extend<Diagnostic> for LintReport {
    fn extend<I: IntoIterator<Item = Diagnostic>>(&mut self, iter: I) {
        self.diagnostics.extend(iter);
    }
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport::new();
        r.push(Diagnostic::error(
            codes::DIM_MISMATCH,
            "rows/X/bindings/p",
            "cannot add W to F",
        ));
        r.push(
            Diagnostic::warning(codes::DEAD_GLOBAL, "globals/n", "global `n` is never read")
                .with_suggestion("remove it or reference it in a formula"),
        );
        r.push(Diagnostic::info(
            codes::SHADOWED_GLOBAL,
            "rows/X/bindings/f",
            "shadows global `f`",
        ));
        r
    }

    #[test]
    fn counts_and_severity_order() {
        let r = sample();
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(r.summary(), "1 error, 1 warning, 1 info");
    }

    #[test]
    fn allow_filters_by_code() {
        let r = sample().allow(&[codes::DEAD_GLOBAL, codes::SHADOWED_GLOBAL]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.diagnostics()[0].code, codes::DIM_MISMATCH);
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let text = r.to_json().to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(LintReport::from_json(&parsed).unwrap(), r);
        assert_eq!(parsed.get("errors").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn text_render_contains_code_and_path() {
        let text = sample().render_text();
        assert!(text.contains("error[E010] rows/X/bindings/p"));
        assert!(text.contains("help: remove it"));
        assert!(text.ends_with("1 error, 1 warning, 1 info\n"));
    }

    #[test]
    fn html_render_escapes() {
        let mut r = LintReport::new();
        r.push(Diagnostic::error("E010", "rows/<b>", "1 < 2 & \"x\""));
        let html = r.render_html();
        assert!(html.contains("rows/&lt;b&gt;"));
        assert!(html.contains("1 &lt; 2 &amp; &quot;x&quot;"));
        assert!(!html.contains("<b>"));
    }

    #[test]
    fn prefixed_joins_paths() {
        let r = sample().prefixed("rows/Inline/");
        assert_eq!(r.diagnostics()[0].path, "rows/Inline/rows/X/bindings/p");
    }

    #[test]
    fn all_codes_unique_and_described() {
        let mut seen = std::collections::BTreeSet::new();
        for (code, slug) in codes::ALL {
            assert!(seen.insert(code), "duplicate code {code}");
            assert_eq!(codes::describe(code), Some(slug));
        }
        assert_eq!(codes::describe("E999"), None);
    }
}
