//! Whole-sheet semantic analysis: name resolution, dependency order,
//! dimension inference, and plausibility checks.
//!
//! The analyzer is an *exact static simulation* of the evaluation
//! semantics in `powerplay_sheet::plan`: globals are dependency-ordered
//! with the same toposort the engine uses, rows are walked in the same
//! order the engine would evaluate them, and `P_`/`A_` availability is
//! tracked point-by-point. That precision is what makes the headline
//! guarantee hold: a sheet with zero `Error` diagnostics evaluates
//! without structural errors — the only failures left are ones that
//! depend on runtime *values* (a formula producing a negative
//! capacitance from particular inputs).

use std::collections::{BTreeMap, BTreeSet};

use powerplay_expr::{Expr, BUILTIN_FUNCTIONS};
use powerplay_library::{ElementClass, LibraryElement, Registry};
use powerplay_sheet::{toposort, Row, RowModel, Sheet};
use powerplay_units::dim::Dim;

use crate::diag::{codes, Diagnostic, LintReport};
use crate::dims::{check_constant_folds, convention_dim, infer_dims, DimInfo};
use crate::element::slots;

/// Options controlling a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Diagnostic codes to suppress ("we know, it's intentional").
    pub allow: Vec<String>,
}

/// Lints a sheet against a registry. See the module docs for what the
/// passes guarantee.
pub fn lint_sheet(sheet: &Sheet, registry: &Registry) -> LintReport {
    let metrics = crate::obs::lint_metrics();
    metrics.reports_total.inc();
    let _timer = metrics.sheet_pass_seconds.start_timer();
    let _span = powerplay_telemetry::profile::span_lazy(|| format!("lint {}", sheet.name()));
    let mut out = LintReport::new();
    lint_level(sheet, registry, "", &Ambient::new(), &mut out);
    out
}

/// [`lint_sheet`] with [`LintOptions`] applied.
pub fn lint_sheet_with(sheet: &Sheet, registry: &Registry, options: &LintOptions) -> LintReport {
    let allowed: Vec<&str> = options.allow.iter().map(String::as_str).collect();
    lint_sheet(sheet, registry).allow(&allowed)
}

/// A name inherited from enclosing scopes, with whether resolving it
/// depends on the engine's evaluation order rather than a tracked
/// dependency (a parent row's `P_`/`A_` seen from inside a sub-sheet).
#[derive(Debug, Clone, Copy)]
struct AmbientEntry {
    dim: DimInfo,
    order_dependent: bool,
}

type Ambient = BTreeMap<String, AmbientEntry>;

/// Row-reference context for resolving `P_`/`A_` names at one sheet
/// level.
struct RowRefCtx<'a> {
    /// Nonempty row idents mapped to textual index.
    idents: &'a BTreeMap<String, usize>,
    /// Display names by textual index.
    names: &'a [String],
    /// Whether each row contributes an `A_` value.
    has_area: &'a [bool],
    /// Textual indices of rows already evaluated at this point of the
    /// engine's order.
    processed: &'a BTreeSet<usize>,
    /// Textual index of the row being analyzed.
    current: usize,
    /// True when the expression is one of the current row's own
    /// bindings — the only place `compile_rows` records dependency
    /// edges, which guarantee the referenced row evaluates first.
    dep_edged: bool,
}

/// Everything a variable can resolve against at one point.
struct VarCtx<'a> {
    /// Row-local names: element parameter defaults plus bindings
    /// evaluated so far.
    local: &'a BTreeMap<String, DimInfo>,
    /// This level's globals.
    gdims: &'a BTreeMap<String, DimInfo>,
    /// Names inherited from enclosing scopes.
    ambient: &'a Ambient,
    /// Row-reference context; `None` while linting globals (which the
    /// engine evaluates before any row's `P_`/`A_` exists).
    rows: Option<RowRefCtx<'a>>,
    /// In globals context: this level's row idents, used only to word
    /// the "globals are evaluated before rows" error.
    globals_hint: Option<&'a BTreeMap<String, usize>>,
}

/// Outcome of resolving one variable.
enum Res {
    /// Resolves; carries the dimension.
    Ok(DimInfo),
    /// Resolves today, but only because of evaluation order (W111).
    OrderDependent(DimInfo, String),
    /// Resolves via a dependency edge to a textually later row (I202).
    Forward(DimInfo, String),
    /// A row's model references its own power (E008).
    SelfPower,
    /// Reference to a row evaluated after this one, with no dependency
    /// edge to reorder it (E008).
    NotYetEvaluated(String),
    /// `A_` reference to a row whose model has no area (E009).
    NoArea(String),
    /// `P_`/`A_` identifier matching no row (E008).
    UnknownRow(String),
    /// Global referencing a row result (E008).
    RowsInvisible(String),
    /// Nothing anywhere defines it (E001).
    Unbound,
}

fn plain_lookup(var: &str, ctx: &VarCtx<'_>) -> Option<Res> {
    if let Some(d) = ctx.local.get(var) {
        return Some(Res::Ok(*d));
    }
    if let Some(d) = ctx.gdims.get(var) {
        return Some(Res::Ok(*d));
    }
    if let Some(e) = ctx.ambient.get(var) {
        return Some(if e.order_dependent {
            Res::OrderDependent(e.dim, "a parent sheet's row".to_owned())
        } else {
            Res::Ok(e.dim)
        });
    }
    None
}

fn resolve(var: &str, ctx: &VarCtx<'_>) -> Res {
    // `P_x` / `A_x` row references resolve through the power layer,
    // which sits between row-local names and the globals. Collisions
    // between a row ident and a local/global of the same spelled name
    // are pathological; the row reference wins here, as it does in the
    // engine whenever the row has been evaluated.
    if let Some(rc) = &ctx.rows {
        let target = var.strip_prefix("P_").or_else(|| var.strip_prefix("A_"));
        if let Some(ident) = target {
            if let Some(&j) = rc.idents.get(ident) {
                let is_area = var.starts_with("A_");
                let dim = DimInfo::Known(if is_area { Dim::SQ_METRE } else { Dim::WATT });
                if j == rc.current {
                    // In a binding this is a row cycle, already reported
                    // by the dependency phase; in a model formula the
                    // value simply does not exist yet.
                    return if rc.dep_edged {
                        Res::Ok(dim)
                    } else {
                        Res::SelfPower
                    };
                }
                if is_area && !rc.has_area[j] {
                    // The engine never sets `A_x` for area-less rows, so
                    // the lookup falls through to plain scopes.
                    return plain_lookup(var, ctx).unwrap_or(Res::NoArea(rc.names[j].clone()));
                }
                if rc.dep_edged {
                    return if j > rc.current {
                        Res::Forward(dim, rc.names[j].clone())
                    } else {
                        Res::Ok(dim)
                    };
                }
                // No dependency edge (a model formula, not a binding):
                // availability is whatever the evaluation order left us.
                if rc.processed.contains(&j) {
                    return Res::OrderDependent(dim, format!("row `{}`", rc.names[j]));
                }
                return plain_lookup(var, ctx).unwrap_or(Res::NotYetEvaluated(rc.names[j].clone()));
            }
        }
    }
    if let Some(res) = plain_lookup(var, ctx) {
        return res;
    }
    if let Some(ident) = var.strip_prefix("P_").or_else(|| var.strip_prefix("A_")) {
        if !ident.is_empty() {
            if let Some(hint) = ctx.globals_hint {
                if hint.contains_key(ident) {
                    return Res::RowsInvisible(ident.to_owned());
                }
            }
            if ctx.rows.is_some() {
                return Res::UnknownRow(ident.to_owned());
            }
        }
    }
    Res::Unbound
}

/// Reports name-analysis diagnostics for every free variable and call
/// of `expr`, then returns a dimension-lookup closure's worth of
/// knowledge via [`resolve`].
fn report_names(expr: &Expr, path: &str, ctx: &VarCtx<'_>, out: &mut LintReport) {
    for var in expr.free_variables() {
        match resolve(&var, ctx) {
            Res::Ok(_) => {}
            Res::OrderDependent(_, owner) => out.push(
                Diagnostic::warning(
                    codes::ORDER_DEPENDENT_REF,
                    path,
                    format!(
                        "`{var}` resolves to {owner}, but only because of the current \
                         evaluation order; no dependency is tracked for this reference"
                    ),
                )
                .with_suggestion(
                    "reference it from a row binding at the same sheet level so the \
                     engine orders evaluation explicitly",
                ),
            ),
            Res::Forward(_, name) => out.push(Diagnostic::info(
                codes::FORWARD_REF,
                path,
                format!(
                    "`{var}` refers to row `{name}`, defined later in the sheet \
                     (dependency analysis reorders evaluation, so this works)"
                ),
            )),
            Res::SelfPower => out.push(Diagnostic::error(
                codes::REF_UNKNOWN_ROW,
                path,
                format!("`{var}` is this row's own result, which does not exist while the row is being evaluated"),
            )),
            Res::NotYetEvaluated(name) => out.push(
                Diagnostic::error(
                    codes::REF_UNKNOWN_ROW,
                    path,
                    format!(
                        "`{var}` refers to row `{name}`, which is evaluated after this row; \
                         model formulas do not create dependency edges"
                    ),
                )
                .with_suggestion("bind the value through a row parameter instead"),
            ),
            Res::NoArea(name) => out.push(
                Diagnostic::error(
                    codes::AREA_REF_NO_AREA,
                    path,
                    format!("`{var}` refers to row `{name}`, whose model has no area"),
                )
                .with_suggestion("give that row's model an `area` formula"),
            ),
            Res::UnknownRow(ident) => out.push(Diagnostic::error(
                codes::REF_UNKNOWN_ROW,
                path,
                format!("`{var}` references a row result, but no row folds to identifier `{ident}`"),
            )),
            Res::RowsInvisible(ident) => out.push(Diagnostic::error(
                codes::REF_UNKNOWN_ROW,
                path,
                format!(
                    "`{var}` references row `{ident}`, but globals are evaluated \
                     before any row; row results are not visible here"
                ),
            )),
            Res::Unbound => out.push(Diagnostic::error(
                codes::UNBOUND_VARIABLE,
                path,
                format!("nothing in scope defines `{var}`"),
            )),
        }
    }
    check_calls(expr, path, out);
}

/// Recursively validates every function call: unknown names and wrong
/// arities are structural errors (they fail at evaluation).
fn check_calls(expr: &Expr, path: &str, out: &mut LintReport) {
    match expr {
        Expr::Call(name, args) => {
            match BUILTIN_FUNCTIONS.iter().find(|(n, _)| n == name) {
                None => out.push(
                    Diagnostic::error(
                        codes::UNKNOWN_FUNCTION,
                        path,
                        format!("unknown function `{name}`"),
                    )
                    .with_suggestion(format!(
                        "builtins: {}",
                        BUILTIN_FUNCTIONS
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                ),
                Some((_, arity)) if args.len() != *arity => out.push(Diagnostic::error(
                    codes::WRONG_ARITY,
                    path,
                    format!(
                        "`{name}` takes {arity} argument{}, found {}",
                        if *arity == 1 { "" } else { "s" },
                        args.len()
                    ),
                )),
                _ => {}
            }
            for a in args {
                check_calls(a, path, out);
            }
        }
        Expr::Unary(_, inner) => check_calls(inner, path, out),
        Expr::Binary(_, lhs, rhs) => {
            check_calls(lhs, path, out);
            check_calls(rhs, path, out);
        }
        Expr::Number(_) | Expr::Variable(_) => {}
    }
}

/// Whether a row will publish an `A_<ident>` value when evaluated.
/// Unresolvable elements answer `true` so a missing element (already an
/// E004) does not cascade into spurious area errors.
fn row_has_area(row: &Row, registry: &Registry) -> bool {
    match row.model() {
        RowModel::Element(path) => registry.get(path).is_none_or(|e| e.model().area.is_some()),
        RowModel::Inline(e) => e.model().area.is_some(),
        RowModel::SubSheet(sub) => sub.rows().iter().any(|r| row_has_area(r, registry)),
    }
}

/// Every variable mentioned anywhere in the sheet's subtree: global
/// formulas, bindings, model formulas (inline and resolved registry
/// elements), recursively through sub-sheets.
fn subtree_free_vars(sheet: &Sheet, registry: &Registry, used: &mut BTreeSet<String>) {
    for (_, expr) in sheet.globals() {
        used.extend(expr.free_variables());
    }
    for row in sheet.rows() {
        for (_, expr) in row.bindings() {
            used.extend(expr.free_variables());
        }
        match row.model() {
            RowModel::Element(path) => {
                if let Some(e) = registry.get(path) {
                    for (_, expr, _) in slots(e) {
                        used.extend(expr.free_variables());
                    }
                }
            }
            RowModel::Inline(e) => {
                for (_, expr, _) in slots(e) {
                    used.extend(expr.free_variables());
                }
            }
            RowModel::SubSheet(sub) => subtree_free_vars(sub, registry, used),
        }
    }
}

/// The element a row instantiates, when resolvable.
fn row_element<'a>(row: &'a Row, registry: &'a Registry) -> Option<&'a LibraryElement> {
    match row.model() {
        RowModel::Element(path) => registry.get(path),
        RowModel::Inline(e) => Some(e),
        RowModel::SubSheet(_) => None,
    }
}

/// Lints one hierarchy level and recurses into sub-sheets.
fn lint_level(
    sheet: &Sheet,
    registry: &Registry,
    prefix: &str,
    ambient: &Ambient,
    out: &mut LintReport,
) {
    // ----- row identity, shared by the globals hint and the row pass -----
    let idents: Vec<String> = sheet.rows().iter().map(Row::ident).collect();
    let row_names: Vec<String> = sheet.rows().iter().map(|r| r.name().to_owned()).collect();
    let ident_index: BTreeMap<String, usize> = idents
        .iter()
        .enumerate()
        .filter(|(_, ident)| !ident.is_empty())
        .map(|(i, ident)| (ident.clone(), i))
        .collect();
    let has_area: Vec<bool> = sheet
        .rows()
        .iter()
        .map(|r| row_has_area(r, registry))
        .collect();

    // E005: duplicate row idents (the engine refuses to evaluate these).
    {
        let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
        for (ident, name) in idents.iter().zip(&row_names) {
            if ident.is_empty() {
                continue;
            }
            if let Some(first) = seen.get(ident.as_str()) {
                out.push(Diagnostic::error(
                    codes::DUPLICATE_ROW_IDENT,
                    format!("{prefix}rows/{name}"),
                    format!("rows `{first}` and `{name}` both fold to identifier `{ident}`"),
                ));
            } else {
                seen.insert(ident, name);
            }
        }
    }

    // ----- globals: dependency order, names, dimensions -----
    let global_exprs = sheet.globals();
    let gindex: BTreeMap<&str, usize> = global_exprs
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.as_str(), i))
        .collect();
    let mut gdeps: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (i, (name, expr)) in global_exprs.iter().enumerate() {
        let free = expr.free_variables();
        if free.contains(name) {
            out.push(Diagnostic::error(
                codes::CIRCULAR_GLOBALS,
                format!("{prefix}globals/{name}"),
                format!("global `{name}` refers to itself"),
            ));
        }
        let entry = gdeps.entry(i).or_default();
        for var in &free {
            if let Some(&j) = gindex.get(var.as_str()) {
                if j != i {
                    entry.insert(j);
                }
            }
        }
    }
    let gorder = match toposort(global_exprs.len(), &gdeps) {
        Ok(order) => order,
        Err(cycle) => {
            let names: Vec<&str> = cycle.iter().map(|&i| global_exprs[i].0.as_str()).collect();
            let first = names.first().copied().unwrap_or("");
            out.push(Diagnostic::error(
                codes::CIRCULAR_GLOBALS,
                format!("{prefix}globals/{first}"),
                format!("global definitions form a cycle: {}", names.join(" -> ")),
            ));
            (0..global_exprs.len()).collect()
        }
    };

    let mut gdims: BTreeMap<String, DimInfo> = BTreeMap::new();
    // Constant global values, for plausibility checks further down.
    let mut gconsts: BTreeMap<String, f64> = BTreeMap::new();
    let empty_local: BTreeMap<String, DimInfo> = BTreeMap::new();
    for &i in &gorder {
        let (name, expr) = &global_exprs[i];
        let path = format!("{prefix}globals/{name}");
        let ctx = VarCtx {
            local: &empty_local,
            gdims: &gdims,
            ambient,
            rows: None,
            globals_hint: Some(&ident_index),
        };
        // A global may reference any other global (dependency edges
        // order them), so seed names not yet dimensioned as Any.
        let gctx_lookup = |v: &str| -> DimInfo {
            if gindex.contains_key(v) {
                return gdims.get(v).copied().unwrap_or(DimInfo::Any);
            }
            match resolve(v, &ctx) {
                Res::Ok(d) | Res::OrderDependent(d, _) | Res::Forward(d, _) => d,
                _ => DimInfo::Any,
            }
        };
        // Name analysis: a reference to another global is fine even
        // before "its turn" — the dependency graph orders them.
        for var in expr.free_variables() {
            if var != *name && gindex.contains_key(var.as_str()) {
                continue;
            }
            if var == *name {
                continue; // self-reference already reported above
            }
            let single = Expr::Variable(var.clone());
            report_names(&single, &path, &ctx, out);
        }
        check_calls(expr, &path, out);
        check_constant_folds(expr, &path, out);
        let inferred = infer_dims(expr, &path, &gctx_lookup, out);
        let conv = convention_dim(name);
        if let (Some(c), Some(d)) = (conv, inferred.known()) {
            if c != d {
                out.push(Diagnostic::warning(
                    codes::BINDING_TARGET_DIM,
                    &path,
                    format!("`{name}` is conventionally {c}, but its formula has dimension {d}"),
                ));
            }
        }
        if let Some(v) = expr.constant_value() {
            if v.is_finite() {
                gconsts.insert(name.clone(), v);
                if let Some(c) = conv.filter(|_| v < 0.0) {
                    out.push(Diagnostic::warning(
                        codes::NEGATIVE_CONSTANT_BINDING,
                        &path,
                        format!("`{name}` is the physical quantity {c} and is always {v}"),
                    ));
                }
            }
        }
        let dim = match inferred.known() {
            Some(d) => DimInfo::Known(d),
            None => conv.map(DimInfo::Known).unwrap_or(DimInfo::Any),
        };
        gdims.insert(name.clone(), dim);
    }

    // W105: globals nothing in the subtree reads. `vdd`/`f` are exempt:
    // elements read them implicitly through the scope chain.
    {
        let mut rows_used = BTreeSet::new();
        for row in sheet.rows() {
            for (_, expr) in row.bindings() {
                rows_used.extend(expr.free_variables());
            }
            match row.model() {
                RowModel::Inline(e) => {
                    for (_, expr, _) in slots(e) {
                        rows_used.extend(expr.free_variables());
                    }
                }
                RowModel::Element(path) => {
                    if let Some(e) = registry.get(path) {
                        for (_, expr, _) in slots(e) {
                            rows_used.extend(expr.free_variables());
                        }
                    }
                }
                RowModel::SubSheet(sub) => subtree_free_vars(sub, registry, &mut rows_used),
            }
        }
        for (name, _) in global_exprs {
            if name == "vdd" || name == "f" {
                continue;
            }
            // Its own formula does not count as a use.
            let read_by_global = global_exprs
                .iter()
                .filter(|(n, _)| n != name)
                .any(|(_, e)| e.free_variables().contains(name));
            if !read_by_global && !rows_used.contains(name) {
                out.push(
                    Diagnostic::warning(
                        codes::DEAD_GLOBAL,
                        format!("{prefix}globals/{name}"),
                        format!("global `{name}` is never read"),
                    )
                    .with_suggestion("remove it, or reference it from a formula"),
                );
            }
        }
    }

    // ----- row dependency graph, mirroring `compile_rows` -----
    let mut rdeps: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (i, row) in sheet.rows().iter().enumerate() {
        let mut wanted = BTreeSet::new();
        for (_, expr) in row.bindings() {
            wanted.extend(expr.free_variables());
        }
        let entry = rdeps.entry(i).or_default();
        for var in &wanted {
            let target = var.strip_prefix("P_").or_else(|| var.strip_prefix("A_"));
            let Some(&j) = target.and_then(|t| ident_index.get(t)) else {
                continue;
            };
            if i == j {
                out.push(Diagnostic::error(
                    codes::CIRCULAR_ROWS,
                    format!("{prefix}rows/{}", row.name()),
                    format!("row `{}` references its own result `{var}`", row.name()),
                ));
            } else {
                entry.insert(j);
            }
        }
    }
    let rorder = match toposort(sheet.rows().len(), &rdeps) {
        Ok(order) => order,
        Err(cycle) => {
            let names: Vec<&str> = cycle.iter().map(|&i| row_names[i].as_str()).collect();
            let first = names.first().copied().unwrap_or("");
            out.push(Diagnostic::error(
                codes::CIRCULAR_ROWS,
                format!("{prefix}rows/{first}"),
                format!("row dependencies form a cycle: {}", names.join(" -> ")),
            ));
            (0..sheet.rows().len()).collect()
        }
    };

    // ----- walk rows in evaluation order -----
    let global_names: BTreeSet<&str> = global_exprs.iter().map(|(n, _)| n.as_str()).collect();
    let mut processed: BTreeSet<usize> = BTreeSet::new();
    for &i in &rorder {
        let row = &sheet.rows()[i];
        let rpath = format!("{prefix}rows/{}", row.name());
        let element = row_element(row, registry);
        if let RowModel::Element(path) = row.model() {
            if element.is_none() {
                out.push(
                    Diagnostic::error(
                        codes::UNKNOWN_ELEMENT,
                        &rpath,
                        format!("no element `{path}` in the library"),
                    )
                    .with_suggestion(
                        "check the registry path (namespace/name) or upload the model first",
                    ),
                );
            }
        }

        // Row-local names: parameter defaults, then bindings in order.
        let mut local: BTreeMap<String, DimInfo> = BTreeMap::new();
        if let Some(e) = element {
            for p in e.params() {
                local.insert(p.name.clone(), DimInfo::Any);
            }
        }

        // Which binding names anything actually reads.
        let read_by_row: BTreeSet<String> = {
            let mut used: BTreeSet<String> = BTreeSet::new();
            used.insert("vdd".to_owned());
            used.insert("f".to_owned());
            if let Some(e) = element {
                used.extend(e.params().iter().map(|p| p.name.clone()));
                for (_, expr, _) in slots(e) {
                    used.extend(expr.free_variables());
                }
            }
            if let RowModel::SubSheet(sub) = row.model() {
                subtree_free_vars(sub, registry, &mut used);
            }
            used
        };

        for (k, (param, expr)) in row.bindings().iter().enumerate() {
            let bpath = format!("{rpath}/bindings/{param}");

            // I201: shadowing a same-level global is a feature (per-row
            // `f` overrides) but worth surfacing.
            if global_names.contains(param.as_str()) {
                out.push(Diagnostic::info(
                    codes::SHADOWED_GLOBAL,
                    &bpath,
                    format!(
                        "binding `{param}` shadows the sheet global of the same name for this row"
                    ),
                ));
            }

            // W106: nothing reads this binding.
            let read_later = row.bindings()[k + 1..]
                .iter()
                .any(|(_, e)| e.free_variables().contains(param));
            if !read_by_row.contains(param) && !read_later {
                let mut d = Diagnostic::warning(
                    codes::DEAD_BINDING,
                    &bpath,
                    format!("binding `{param}` matches no parameter and is never read"),
                );
                if let Some(e) = element {
                    let params: Vec<&str> = e.params().iter().map(|p| p.name.as_str()).collect();
                    if !params.is_empty() {
                        d = d.with_suggestion(format!(
                            "`{}` declares: {}",
                            e.name(),
                            params.join(", ")
                        ));
                    }
                }
                out.push(d);
            }

            let ctx = VarCtx {
                local: &local,
                gdims: &gdims,
                ambient,
                rows: Some(RowRefCtx {
                    idents: &ident_index,
                    names: &row_names,
                    has_area: &has_area,
                    processed: &processed,
                    current: i,
                    dep_edged: true,
                }),
                globals_hint: None,
            };
            report_names(expr, &bpath, &ctx, out);
            check_constant_folds(expr, &bpath, out);
            let lookup = |v: &str| -> DimInfo {
                match resolve(v, &ctx) {
                    Res::Ok(d) | Res::OrderDependent(d, _) | Res::Forward(d, _) => d,
                    _ => DimInfo::Any,
                }
            };
            let inferred = infer_dims(expr, &bpath, &lookup, out);
            let conv = convention_dim(param);
            if let (Some(c), Some(d)) = (conv, inferred.known()) {
                if c != d {
                    out.push(Diagnostic::warning(
                        codes::BINDING_TARGET_DIM,
                        &bpath,
                        format!("`{param}` is conventionally {c}, but the bound formula has dimension {d}"),
                    ));
                }
            }
            if let (Some(v), Some(c)) = (expr.constant_value(), conv) {
                if v.is_finite() && v < 0.0 {
                    out.push(Diagnostic::warning(
                        codes::NEGATIVE_CONSTANT_BINDING,
                        &bpath,
                        format!("`{param}` is the physical quantity {c} and is always {v}"),
                    ));
                }
            }
            let dim = match inferred.known() {
                Some(d) => DimInfo::Known(d),
                None => conv.map(DimInfo::Known).unwrap_or(DimInfo::Any),
            };
            local.insert(param.clone(), dim);
        }

        // Model formulas resolve through the full runtime scope chain
        // (an inline model may read globals or even parent results), but
        // with no dependency edges recorded for them.
        if let Some(e) = element {
            let is_inline = matches!(row.model(), RowModel::Inline(_));
            for (slot, expr, expected) in slots(e) {
                let spath = format!("{rpath}/model/{slot}");
                let ctx = VarCtx {
                    local: &local,
                    gdims: &gdims,
                    ambient,
                    rows: Some(RowRefCtx {
                        idents: &ident_index,
                        names: &row_names,
                        has_area: &has_area,
                        processed: &processed,
                        current: i,
                        dep_edged: false,
                    }),
                    globals_hint: None,
                };
                report_names(expr, &spath, &ctx, out);
                // Dimension/plausibility checks for registry elements
                // belong to the registry lint (at upload); repeating
                // them per sheet row would only duplicate noise.
                if is_inline {
                    check_constant_folds(expr, &spath, out);
                    let lookup = |v: &str| -> DimInfo {
                        match resolve(v, &ctx) {
                            Res::Ok(d) | Res::OrderDependent(d, _) | Res::Forward(d, _) => d,
                            _ => DimInfo::Any,
                        }
                    };
                    let inferred = infer_dims(expr, &spath, &lookup, out);
                    if let Some(d) = inferred.known() {
                        if d != expected {
                            out.push(Diagnostic::warning(
                                codes::RESULT_DIM,
                                &spath,
                                format!(
                                    "formula has dimension {d}, but this slot holds {expected}"
                                ),
                            ));
                        }
                    }
                    if let Some(v) = expr.constant_value() {
                        if v.is_finite() && v < 0.0 {
                            out.push(Diagnostic::error(
                                codes::NEGATIVE_CONSTANT_MODEL,
                                &spath,
                                format!(
                                    "formula always evaluates to {v}; physical values must be >= 0"
                                ),
                            ));
                        }
                    }
                }
            }

            // E014: the EQ-1 template needs an operating point.
            let model = e.model();
            let needs_vdd = model.cap_full.is_some()
                || model.cap_partial.is_some()
                || model.static_current.is_some();
            let needs_f = model.cap_full.is_some() || model.cap_partial.is_some();
            let resolvable = |name: &str| {
                local.contains_key(name) || gdims.contains_key(name) || ambient.contains_key(name)
            };
            if needs_vdd && !resolvable("vdd") {
                out.push(
                    Diagnostic::error(
                        codes::MISSING_OPERATING_POINT,
                        &rpath,
                        format!("element `{}` needs `vdd`, but no global, binding, or parent defines it", e.name()),
                    )
                    .with_suggestion("add a `vdd` global to the sheet"),
                );
            }
            if needs_f && !resolvable("f") {
                out.push(
                    Diagnostic::error(
                        codes::MISSING_OPERATING_POINT,
                        &rpath,
                        format!("element `{}` is clocked and needs `f`, but no global, binding, or parent defines it", e.name()),
                    )
                    .with_suggestion("add an `f` global to the sheet"),
                );
            }

            // W107: a clocked element at a constant zero rate.
            if needs_f {
                let bound_f = row
                    .bindings()
                    .iter()
                    .find(|(n, _)| n == "f")
                    .and_then(|(_, e)| e.constant_value());
                let eff_f = bound_f.or_else(|| gconsts.get("f").copied());
                if eff_f == Some(0.0) {
                    out.push(Diagnostic::warning(
                        codes::ZERO_FREQUENCY,
                        &rpath,
                        "clocked element evaluated at a constant 0 Hz; its dynamic power will be zero".to_owned(),
                    ));
                }
            }

            // W108: reduced swing above the supply rail.
            let const_of = |name: &str| -> Option<f64> {
                row.bindings()
                    .iter()
                    .find(|(n, _)| n == name)
                    .and_then(|(_, ex)| ex.constant_value())
                    .or_else(|| {
                        e.params()
                            .iter()
                            .find(|p| p.name == name)
                            .map(|p| p.default)
                    })
            };
            if e.params().iter().any(|p| p.name == "swing") {
                let vdd_v = row
                    .bindings()
                    .iter()
                    .find(|(n, _)| n == "vdd")
                    .and_then(|(_, ex)| ex.constant_value())
                    .or_else(|| gconsts.get("vdd").copied());
                if let (Some(s), Some(v)) = (const_of("swing"), vdd_v) {
                    if s > v {
                        out.push(Diagnostic::warning(
                            codes::SWING_EXCEEDS_VDD,
                            &rpath,
                            format!("reduced swing {s} V exceeds the supply vdd = {v} V"),
                        ));
                    }
                }
            }

            // W109: converter efficiency outside (0, 1].
            if e.class() == ElementClass::Converter {
                if let Some(eta) = const_of("eta") {
                    if !(eta > 0.0 && eta <= 1.0) {
                        out.push(Diagnostic::warning(
                            codes::ETA_OUT_OF_RANGE,
                            &rpath,
                            format!("converter efficiency eta = {eta} is outside (0, 1]"),
                        ));
                    }
                }
            }
        }

        // Recurse into sub-sheets with the scope the engine hands them:
        // our ambient, this level's globals, the results evaluated so
        // far (order-dependent!), and this row's bindings.
        if let RowModel::SubSheet(sub) = row.model() {
            let mut inner: Ambient = ambient.clone();
            for (name, dim) in &gdims {
                inner.insert(
                    name.clone(),
                    AmbientEntry {
                        dim: *dim,
                        order_dependent: false,
                    },
                );
            }
            for &j in &processed {
                if idents[j].is_empty() {
                    continue;
                }
                inner.insert(
                    format!("P_{}", idents[j]),
                    AmbientEntry {
                        dim: DimInfo::Known(Dim::WATT),
                        order_dependent: true,
                    },
                );
                if has_area[j] {
                    inner.insert(
                        format!("A_{}", idents[j]),
                        AmbientEntry {
                            dim: DimInfo::Known(Dim::SQ_METRE),
                            order_dependent: true,
                        },
                    );
                }
            }
            for (name, dim) in &local {
                inner.insert(
                    name.clone(),
                    AmbientEntry {
                        dim: *dim,
                        order_dependent: false,
                    },
                );
            }
            lint_level(sub, registry, &format!("{rpath}/"), &inner, out);
        }

        processed.insert(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerplay_library::builtin::ucb_library;
    use powerplay_library::ElementModel;

    fn codes_of(report: &LintReport) -> Vec<&str> {
        report
            .diagnostics()
            .iter()
            .map(|d| d.code.as_str())
            .collect()
    }

    fn find<'a>(report: &'a LintReport, code: &str) -> Option<&'a Diagnostic> {
        report.diagnostics().iter().find(|d| d.code == code)
    }

    #[test]
    fn clean_sheet_has_no_errors_and_plays() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("clean");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [("bits", "16")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        assert!(!report.has_errors(), "{}", report.render_text());
        sheet.play(&lib).expect("zero-error sheet must play");
    }

    #[test]
    fn unbound_variable_is_e001_with_binding_path() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [("bits", "word_width")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::UNBOUND_VARIABLE).expect("E001");
        assert_eq!(d.path, "rows/Adder/bindings/bits");
        assert!(d.message.contains("word_width"));
    }

    #[test]
    fn power_plus_capacitance_is_e010() {
        // The acceptance scenario: adding a power to a capacitance.
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet.set_global("c_load", "100f").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [("bits", "16")])
            .unwrap();
        sheet
            .add_element_row("Pads", "ucb/pads", [("c_pad", "P_adder + c_load")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::DIM_MISMATCH).expect("E010");
        assert_eq!(d.path, "rows/Pads/bindings/c_pad");
        assert!(report.has_errors());
    }

    #[test]
    fn p_ref_to_missing_row_is_e008() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("DC", "ucb/dcdc", [("p_load", "P_nonexistent_row")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::REF_UNKNOWN_ROW).expect("E008");
        assert_eq!(d.path, "rows/DC/bindings/p_load");
        assert!(d.message.contains("nonexistent_row"));
    }

    #[test]
    fn a_ref_to_area_less_row_is_e009() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        // ucb/wire has no area formula.
        sheet
            .add_element_row("Wire", "ucb/wire", [("length_mm", "2")])
            .unwrap();
        sheet
            .add_element_row("Clock", "ucb/clock_net", [("area_mm2", "A_wire * 1e6")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::AREA_REF_NO_AREA).expect("E009");
        assert_eq!(d.path, "rows/Clock/bindings/area_mm2");
    }

    #[test]
    fn circular_globals_report_the_path() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("a", "b * 2").unwrap();
        sheet.set_global("b", "a / 2").unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::CIRCULAR_GLOBALS).expect("E006");
        assert!(d.message.contains("->"), "{}", d.message);
        assert!(d.message.contains('a') && d.message.contains('b'));
    }

    #[test]
    fn self_referential_global_is_e006() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "vdd + 0.1").unwrap();
        let report = lint_sheet(&sheet, &lib);
        assert_eq!(
            find(&report, codes::CIRCULAR_GLOBALS).expect("E006").path,
            "globals/vdd"
        );
    }

    #[test]
    fn circular_rows_report_the_path() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("One", "ucb/dcdc", [("p_load", "P_two")])
            .unwrap();
        sheet
            .add_element_row("Two", "ucb/dcdc", [("p_load", "P_one")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::CIRCULAR_ROWS).expect("E007");
        assert!(d.message.contains("->"), "{}", d.message);
    }

    #[test]
    fn row_self_reference_is_e007() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet
            .add_element_row("Loop", "ucb/dcdc", [("p_load", "P_loop * 0.1")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        assert!(find(&report, codes::CIRCULAR_ROWS).is_some());
    }

    #[test]
    fn duplicate_row_idents_are_e005() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet.add_element_row("Read Bank", "ucb/sram", []).unwrap();
        sheet.add_element_row("read bank", "ucb/sram", []).unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::DUPLICATE_ROW_IDENT).expect("E005");
        assert!(d.message.contains("read_bank"));
    }

    #[test]
    fn unknown_element_is_e004() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet
            .add_element_row("Mystery", "ucb/does_not_exist", [])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        assert_eq!(
            find(&report, codes::UNKNOWN_ELEMENT).expect("E004").path,
            "rows/Mystery"
        );
    }

    #[test]
    fn shadowing_global_is_i201_and_not_an_error() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("Slow Adder", "ucb/ripple_adder", [("f", "f / 16")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::SHADOWED_GLOBAL).expect("I201");
        assert_eq!(d.path, "rows/Slow Adder/bindings/f");
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn forward_reference_is_i202_and_plays() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("DC", "ucb/dcdc", [("p_load", "P_adder")])
            .unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::FORWARD_REF).expect("I202");
        assert_eq!(d.path, "rows/DC/bindings/p_load");
        assert!(!report.has_errors(), "{}", report.render_text());
        sheet.play(&lib).expect("dependency analysis reorders this");
    }

    #[test]
    fn missing_operating_point_is_e014() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let hits: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == codes::MISSING_OPERATING_POINT)
            .collect();
        assert_eq!(
            hits.len(),
            2,
            "vdd and f both missing: {:?}",
            codes_of(&report)
        );
        assert!(sheet.play(&lib).is_err());
    }

    #[test]
    fn zero_frequency_under_clocked_template_is_w107() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "0").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        assert!(find(&report, codes::ZERO_FREQUENCY).is_some());
    }

    #[test]
    fn swing_above_vdd_is_w108() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.1").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("SRAM", "ucb/sram_lowswing", [("swing", "1.8")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        assert!(find(&report, codes::SWING_EXCEEDS_VDD).is_some());
    }

    #[test]
    fn converter_eta_out_of_range_is_w109() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet
            .add_element_row("DC", "ucb/dcdc", [("p_load", "1"), ("eta", "1.4")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        assert!(find(&report, codes::ETA_OUT_OF_RANGE).is_some());
    }

    #[test]
    fn dead_global_is_w105_but_vdd_f_exempt() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet.set_global("scratch", "42").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let dead: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == codes::DEAD_GLOBAL)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].path, "globals/scratch");
    }

    #[test]
    fn dead_binding_is_w106_with_param_list() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [("bitz", "16")])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::DEAD_BINDING).expect("W106");
        assert_eq!(d.path, "rows/Adder/bindings/bitz");
        assert!(d.suggestion.as_deref().unwrap_or("").contains("bits"));
    }

    #[test]
    fn model_formula_reading_parent_row_is_w111() {
        // An inline model reading another row's P_ works only because of
        // evaluation order — no dependency edge exists for model slots.
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        let monitor = LibraryElement::new(
            "inline/monitor",
            ElementClass::System,
            "",
            vec![],
            ElementModel {
                power_direct: Some(Expr::parse("P_adder * 0.01").unwrap()),
                ..ElementModel::default()
            },
        );
        sheet.add_inline_row("Monitor", monitor);
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::ORDER_DEPENDENT_REF).expect("W111");
        assert_eq!(d.path, "rows/Monitor/model/power_direct");
    }

    #[test]
    fn model_formula_reading_later_row_is_e008() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        let monitor = LibraryElement::new(
            "inline/monitor",
            ElementClass::System,
            "",
            vec![],
            ElementModel {
                power_direct: Some(Expr::parse("P_adder * 0.01").unwrap()),
                ..ElementModel::default()
            },
        );
        sheet.add_inline_row("Monitor", monitor);
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::REF_UNKNOWN_ROW).expect("E008");
        assert_eq!(d.path, "rows/Monitor/model/power_direct");
        assert!(sheet.play(&lib).is_err());
    }

    #[test]
    fn global_referencing_row_power_is_e008() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet.set_global("budget", "P_adder * 2").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::REF_UNKNOWN_ROW).expect("E008");
        assert_eq!(d.path, "globals/budget");
        assert!(d.message.contains("before any row"));
    }

    #[test]
    fn subsheet_diagnostics_are_prefixed_and_globals_inherited() {
        let lib = ucb_library();
        let mut inner = Sheet::new("inner");
        // Inherits vdd/f from the parent; references something unbound.
        inner
            .add_element_row("Core", "ucb/ripple_adder", [("bits", "missing_width")])
            .unwrap();
        let mut sheet = Sheet::new("outer");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet.add_subsheet_row("Custom Hardware", inner);
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::UNBOUND_VARIABLE).expect("E001");
        assert_eq!(d.path, "rows/Custom Hardware/rows/Core/bindings/bits");
        // No E014: vdd/f resolve through the parent's globals.
        assert!(find(&report, codes::MISSING_OPERATING_POINT).is_none());
    }

    #[test]
    fn subsheet_reading_parent_row_power_is_w111() {
        let lib = ucb_library();
        let mut inner = Sheet::new("inner");
        inner
            .add_element_row("DC", "ucb/dcdc", [("p_load", "P_adder")])
            .unwrap();
        let mut sheet = Sheet::new("outer");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        sheet.add_subsheet_row("Converters", inner);
        let report = lint_sheet(&sheet, &lib);
        let d = find(&report, codes::ORDER_DEPENDENT_REF).expect("W111");
        assert_eq!(d.path, "rows/Converters/rows/DC/bindings/p_load");
        assert!(!report.has_errors(), "{}", report.render_text());
        sheet
            .play(&lib)
            .expect("order-dependent but evaluates today");
    }

    #[test]
    fn allow_suppresses_codes() {
        let lib = ucb_library();
        let mut sheet = Sheet::new("s");
        sheet.set_global("vdd", "1.5").unwrap();
        sheet.set_global("f", "2MHz").unwrap();
        sheet.set_global("scratch", "42").unwrap();
        sheet
            .add_element_row("Adder", "ucb/ripple_adder", [])
            .unwrap();
        let options = LintOptions {
            allow: vec![codes::DEAD_GLOBAL.to_owned()],
        };
        let report = lint_sheet_with(&sheet, &lib, &options);
        assert!(find(&report, codes::DEAD_GLOBAL).is_none());
    }
}
