//! Unit-dimension inference over the expression AST.
//!
//! Dimensions propagate bottom-up through a formula without evaluating
//! it: `+`/`-` demand matching dimensions, `*`/`/` compose them, `^`
//! requires a constant integer exponent when the base is dimensional.
//! Number literals and unknown variables are *polymorphic*
//! ([`DimInfo::Any`]) — `vdd - 0.7` is fine, and an unknown factor in a
//! product is assumed dimensionless (`f / 16` is still hertz). That
//! keeps the checker quiet on the paper's idiomatic formulas while
//! still catching `watts + farads` outright.

use powerplay_expr::{BinaryOp, Expr, UnaryOp, BUILTIN_FUNCTIONS};
use powerplay_units::dim::Dim;

use crate::diag::{codes, Diagnostic, LintReport};

/// What the checker knows about a subexpression's dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimInfo {
    /// Could be anything — a literal, an untyped parameter.
    Any,
    /// A definite dimension (possibly [`Dim::NONE`], i.e. a pure
    /// number).
    Known(Dim),
}

impl DimInfo {
    /// The dimension, when definite.
    pub fn known(self) -> Option<Dim> {
        match self {
            DimInfo::Any => None,
            DimInfo::Known(d) => Some(d),
        }
    }

    /// A definite non-dimensionless dimension.
    fn known_nontrivial(self) -> Option<Dim> {
        self.known().filter(|d| !d.is_none())
    }
}

/// The naming convention mapping sheet-level identifiers to dimensions.
///
/// This is deliberately applied only to *sheet* names — globals and
/// binding targets — never to element parameters, whose authors are
/// free to use `p_low` for a probability. The prefixes follow the
/// paper's own spreadsheet figures (`vdd`, `f`, `C_sw`, `P_total`).
pub fn convention_dim(name: &str) -> Option<Dim> {
    match name {
        "vdd" | "swing" => Some(Dim::VOLT),
        "f" | "fs" | "freq" => Some(Dim::HERTZ),
        "cap" => Some(Dim::FARAD),
        "delay" => Some(Dim::SECOND),
        _ if name.starts_with("v_") => Some(Dim::VOLT),
        _ if name.starts_with("f_") => Some(Dim::HERTZ),
        _ if name.starts_with("c_") => Some(Dim::FARAD),
        _ if name.starts_with("i_") => Some(Dim::AMPERE),
        _ if name.starts_with("p_") => Some(Dim::WATT),
        _ if name.starts_with("t_") => Some(Dim::SECOND),
        _ if name.starts_with("a_") || name.starts_with("area") => Some(Dim::SQ_METRE),
        _ => None,
    }
}

/// Infers the dimension of `expr`, appending dimension diagnostics
/// (all anchored at `path`) to `out`.
///
/// `lookup` supplies the dimension of each variable; unresolvable names
/// must map to [`DimInfo::Any`] — *name* errors are the name-analysis
/// pass's job, and reporting them here would double up.
pub fn infer_dims(
    expr: &Expr,
    path: &str,
    lookup: &dyn Fn(&str) -> DimInfo,
    out: &mut LintReport,
) -> DimInfo {
    match expr {
        Expr::Number(_) => DimInfo::Any,
        Expr::Variable(name) => lookup(name),
        Expr::Unary(UnaryOp::Neg, inner) => infer_dims(inner, path, lookup, out),
        Expr::Binary(op, lhs, rhs) => {
            let l = infer_dims(lhs, path, lookup, out);
            let r = infer_dims(rhs, path, lookup, out);
            match op {
                BinaryOp::Add | BinaryOp::Sub => {
                    if let (Some(a), Some(b)) = (l.known(), r.known()) {
                        if a != b {
                            let verb = if *op == BinaryOp::Add {
                                "add"
                            } else {
                                "subtract"
                            };
                            out.push(Diagnostic::error(
                                codes::DIM_MISMATCH,
                                path,
                                format!(
                                    "dimension mismatch: cannot {verb} `{rhs}` ({b}) and `{lhs}` ({a})"
                                ),
                            ));
                        }
                    }
                    // Result follows whichever side is definite.
                    match (l, r) {
                        (DimInfo::Known(a), _) => DimInfo::Known(a),
                        (_, DimInfo::Known(b)) => DimInfo::Known(b),
                        _ => DimInfo::Any,
                    }
                }
                BinaryOp::Mul => match (l.known(), r.known()) {
                    (None, None) => DimInfo::Any,
                    // An unknown factor is assumed dimensionless.
                    (a, b) => DimInfo::Known(a.unwrap_or(Dim::NONE) * b.unwrap_or(Dim::NONE)),
                },
                BinaryOp::Div => match (l.known(), r.known()) {
                    (None, None) => DimInfo::Any,
                    (a, b) => DimInfo::Known(a.unwrap_or(Dim::NONE) / b.unwrap_or(Dim::NONE)),
                },
                BinaryOp::Rem => {
                    if let (Some(a), Some(b)) = (l.known(), r.known()) {
                        if a != b {
                            out.push(Diagnostic::warning(
                                codes::DIM_COMPARISON,
                                path,
                                format!(
                                    "operands of `%` have different dimensions: `{lhs}` is {a}, `{rhs}` is {b}"
                                ),
                            ));
                        }
                    }
                    l
                }
                BinaryOp::Pow => infer_pow(lhs, l, rhs, r, path, out),
                BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::Ne => {
                    if let (Some(a), Some(b)) = (l.known(), r.known()) {
                        if a != b {
                            out.push(Diagnostic::warning(
                                codes::DIM_COMPARISON,
                                path,
                                format!("suspicious comparison: `{lhs}` is {a} but `{rhs}` is {b}"),
                            ));
                        }
                    }
                    // Comparisons yield 0/1 indicators.
                    DimInfo::Known(Dim::NONE)
                }
            }
        }
        Expr::Call(name, args) => {
            let arg_dims: Vec<DimInfo> = args
                .iter()
                .map(|a| infer_dims(a, path, lookup, out))
                .collect();
            let arity_ok = BUILTIN_FUNCTIONS
                .iter()
                .any(|(n, a)| n == name && *a == args.len());
            if !arity_ok {
                // Unknown function or wrong arity: name analysis reports
                // it; the dimension is unknowable.
                return DimInfo::Any;
            }
            match (name.as_str(), arg_dims.as_slice()) {
                ("abs" | "floor" | "ceil" | "round", [d]) => *d,
                ("sqrt", [d]) => match d.known() {
                    Some(a) => match a.sqrt() {
                        Some(r) => DimInfo::Known(r),
                        None => {
                            out.push(Diagnostic::warning(
                                codes::DIM_FUNCTION_ARG,
                                path,
                                format!("sqrt of `{}` ({a}) has no well-formed dimension", args[0]),
                            ));
                            DimInfo::Any
                        }
                    },
                    None => DimInfo::Any,
                },
                ("exp" | "ln" | "log10" | "log2", [d]) => {
                    if let Some(a) = d.known_nontrivial() {
                        out.push(Diagnostic::warning(
                            codes::DIM_FUNCTION_ARG,
                            path,
                            format!(
                                "{name} expects a dimensionless argument, but `{}` is {a}",
                                args[0]
                            ),
                        ));
                    }
                    DimInfo::Known(Dim::NONE)
                }
                ("min" | "max" | "hypot", [a, b]) => unify(*a, *b, path, out, || {
                    format!("arguments of {name} have different dimensions")
                }),
                ("pow", [b, e]) => infer_pow(&args[0], *b, &args[1], *e, path, out),
                ("if", [_, t, e]) => unify(*t, *e, path, out, || {
                    "the two branches of if(...) have different dimensions".to_owned()
                }),
                _ => DimInfo::Any,
            }
        }
    }
}

/// Merges two dimension facts, warning (via `message`) when both are
/// definite and disagree.
fn unify(
    a: DimInfo,
    b: DimInfo,
    path: &str,
    out: &mut LintReport,
    message: impl FnOnce() -> String,
) -> DimInfo {
    match (a.known(), b.known()) {
        (Some(x), Some(y)) if x != y => {
            out.push(Diagnostic::warning(
                codes::DIM_FUNCTION_ARG,
                path,
                message(),
            ));
            DimInfo::Any
        }
        (Some(x), _) => DimInfo::Known(x),
        (_, Some(y)) => DimInfo::Known(y),
        (None, None) => DimInfo::Any,
    }
}

/// Exponentiation: a dimensional base needs a constant integer
/// exponent; a dimensional exponent never makes sense.
fn infer_pow(
    base_expr: &Expr,
    base: DimInfo,
    exp_expr: &Expr,
    exp: DimInfo,
    path: &str,
    out: &mut LintReport,
) -> DimInfo {
    if let Some(d) = exp.known_nontrivial() {
        out.push(Diagnostic::warning(
            codes::POW_DIMENSIONAL_EXPONENT,
            path,
            format!("exponent `{exp_expr}` has dimension {d}; exponents must be pure numbers"),
        ));
    }
    match base.known() {
        Some(b) if b.is_none() => DimInfo::Known(Dim::NONE),
        Some(b) => match exp_expr.constant_value() {
            Some(n) if n.is_finite() && n.fract() == 0.0 && n.abs() <= 16.0 => {
                DimInfo::Known(b.powi(n as i32))
            }
            _ => {
                out.push(Diagnostic::warning(
                    codes::POW_DIMENSIONAL_EXPONENT,
                    path,
                    format!(
                        "`{base_expr}` ({b}) is raised to a non-integer or non-constant \
                         power; the result's dimension cannot be checked"
                    ),
                ));
                DimInfo::Any
            }
        },
        None => DimInfo::Any,
    }
}

/// Reports `E011` at the *smallest* constant subexpression that folds
/// to a non-finite value — `1/0` inside a larger formula, an overflow
/// literal — anchored at `path`.
pub fn check_constant_folds(expr: &Expr, path: &str, out: &mut LintReport) {
    let children: Vec<&Expr> = match expr {
        Expr::Number(_) | Expr::Variable(_) => Vec::new(),
        Expr::Unary(UnaryOp::Neg, inner) => vec![inner],
        Expr::Binary(_, lhs, rhs) => vec![lhs, rhs],
        Expr::Call(_, args) => args.iter().collect(),
    };
    for child in &children {
        check_constant_folds(child, path, out);
    }
    if let Some(v) = expr.constant_value() {
        if !v.is_finite() {
            // Only report where the non-finiteness is introduced: skip
            // nodes whose own operand already folds non-finite.
            let introduced_here = children
                .iter()
                .all(|c| c.constant_value().is_none_or(f64::is_finite));
            if introduced_here {
                out.push(Diagnostic::error(
                    codes::NON_FINITE_CONSTANT,
                    path,
                    format!("constant subexpression `{expr}` evaluates to {v}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(name: &str) -> DimInfo {
        match name {
            "vdd" | "swing" => DimInfo::Known(Dim::VOLT),
            "f" => DimInfo::Known(Dim::HERTZ),
            "c_out" => DimInfo::Known(Dim::FARAD),
            "i_bias" => DimInfo::Known(Dim::AMPERE),
            "P_row" => DimInfo::Known(Dim::WATT),
            "A_row" => DimInfo::Known(Dim::SQ_METRE),
            _ => DimInfo::Any,
        }
    }

    fn infer(src: &str) -> (DimInfo, LintReport) {
        let mut out = LintReport::new();
        let e = Expr::parse(src).unwrap();
        let d = infer_dims(&e, "test", &lookup, &mut out);
        (d, out)
    }

    #[test]
    fn eq1_is_watts() {
        let (d, out) = infer("c_out * swing * vdd * f + i_bias * vdd");
        assert_eq!(d, DimInfo::Known(Dim::WATT));
        assert!(out.is_empty(), "{}", out.render_text());
    }

    #[test]
    fn literals_are_polymorphic() {
        let (d, out) = infer("vdd - 0.7");
        assert_eq!(d, DimInfo::Known(Dim::VOLT));
        assert!(out.is_empty());
        let (d, out) = infer("f / 16");
        assert_eq!(d, DimInfo::Known(Dim::HERTZ));
        assert!(out.is_empty());
    }

    #[test]
    fn adding_watts_to_farads_is_an_error() {
        let (_, out) = infer("P_row + c_out");
        assert!(out.has_errors());
        let d = &out.diagnostics()[0];
        assert_eq!(d.code, codes::DIM_MISMATCH);
        assert!(d.message.contains("W"), "{}", d.message);
        assert!(d.message.contains("F"), "{}", d.message);
    }

    #[test]
    fn matching_add_is_fine() {
        let (d, out) = infer("P_row + i_bias * vdd");
        assert_eq!(d, DimInfo::Known(Dim::WATT));
        assert!(out.is_empty());
    }

    #[test]
    fn comparison_of_mixed_dims_warns_and_is_dimensionless() {
        let (d, out) = infer("vdd < f");
        assert_eq!(d, DimInfo::Known(Dim::NONE));
        assert_eq!(out.count(crate::Severity::Warning), 1);
        assert_eq!(out.diagnostics()[0].code, codes::DIM_COMPARISON);
        // ... and the 0/1 result composes onward without cascades.
        let (d, out) = infer("(vdd < 3) * P_row");
        assert_eq!(d, DimInfo::Known(Dim::WATT));
        assert!(out.is_empty());
    }

    #[test]
    fn pow_integer_constant_composes() {
        let (d, out) = infer("vdd ^ 2");
        assert_eq!(d, DimInfo::Known(Dim::VOLT.powi(2)));
        assert!(out.is_empty());
        let (d, out) = infer("sqrt(vdd ^ 2)");
        assert_eq!(d, DimInfo::Known(Dim::VOLT));
        assert!(out.is_empty());
    }

    #[test]
    fn pow_non_constant_exponent_on_dimensional_base_warns() {
        let (d, out) = infer("vdd ^ bits");
        assert_eq!(d, DimInfo::Any);
        assert_eq!(out.diagnostics()[0].code, codes::POW_DIMENSIONAL_EXPONENT);
        // Dimensionless base with an unknown exponent is idiomatic
        // (`2 ^ n_i` in the control ROM model) and stays quiet.
        let (_, out) = infer("2 ^ bits");
        assert!(out.is_empty());
    }

    #[test]
    fn dimensional_exponent_warns() {
        let (_, out) = infer("2 ^ vdd");
        assert_eq!(out.diagnostics()[0].code, codes::POW_DIMENSIONAL_EXPONENT);
    }

    #[test]
    fn log_of_dimensional_arg_warns() {
        let (d, out) = infer("log2(f)");
        assert_eq!(d, DimInfo::Known(Dim::NONE));
        assert_eq!(out.diagnostics()[0].code, codes::DIM_FUNCTION_ARG);
        let (_, out) = infer("log2(words)");
        assert!(out.is_empty());
    }

    #[test]
    fn min_and_if_unify() {
        let (d, out) = infer("min(P_row, i_bias * vdd)");
        assert_eq!(d, DimInfo::Known(Dim::WATT));
        assert!(out.is_empty());
        let (_, out) = infer("max(P_row, c_out)");
        assert_eq!(out.diagnostics()[0].code, codes::DIM_FUNCTION_ARG);
        let (d, out) = infer("if(duty > 0, P_row, 0)");
        assert_eq!(d, DimInfo::Known(Dim::WATT));
        assert!(out.is_empty());
    }

    #[test]
    fn sqrt_of_odd_dimension_warns() {
        let (_, out) = infer("sqrt(vdd)");
        assert_eq!(out.diagnostics()[0].code, codes::DIM_FUNCTION_ARG);
        let (d, out) = infer("sqrt(A_row)");
        assert_eq!(d, DimInfo::Known(Dim::new(1, 0, 0, 0)));
        assert!(out.is_empty());
    }

    #[test]
    fn constant_fold_reports_smallest_nonfinite() {
        let mut out = LintReport::new();
        let e = Expr::parse("bits * (1 / 0) + 2").unwrap();
        check_constant_folds(&e, "t", &mut out);
        assert_eq!(out.len(), 1);
        let d = &out.diagnostics()[0];
        assert_eq!(d.code, codes::NON_FINITE_CONSTANT);
        assert!(d.message.contains("(1 / 0)"), "{}", d.message);
        let mut out = LintReport::new();
        check_constant_folds(&Expr::parse("vdd / (2 - 2)").unwrap(), "t", &mut out);
        assert!(out.is_empty(), "non-constant division is a runtime concern");
    }

    #[test]
    fn conventions_cover_paper_names() {
        assert_eq!(convention_dim("vdd"), Some(Dim::VOLT));
        assert_eq!(convention_dim("f"), Some(Dim::HERTZ));
        assert_eq!(convention_dim("c_line"), Some(Dim::FARAD));
        assert_eq!(convention_dim("i_rx"), Some(Dim::AMPERE));
        assert_eq!(convention_dim("p_load"), Some(Dim::WATT));
        assert_eq!(convention_dim("t_access"), Some(Dim::SECOND));
        assert_eq!(convention_dim("area_mm2"), Some(Dim::SQ_METRE));
        assert_eq!(convention_dim("bits"), None);
        assert_eq!(convention_dim("eta"), None);
        assert_eq!(convention_dim("duty_tx"), None);
    }
}
