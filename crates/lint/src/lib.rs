//! `powerplay-lint` — static semantic analysis for PowerPlay sheets and
//! library models.
//!
//! The evaluator (`powerplay-sheet`) tells you a sheet is broken by
//! failing; this crate tells you *before* you evaluate, with structured
//! [`Diagnostic`]s that carry a code, a severity, a slash-path locating
//! the offending expression, and often a suggestion. Three passes run
//! over every sheet:
//!
//! 1. **Unit-dimension inference** — dimensions (V, A, F, Hz, s, W, m²)
//!    propagate from naming conventions and declarations through the
//!    expression AST; adding a power to a capacitance is an error,
//!    comparing across dimensions is a warning.
//! 2. **Name analysis** — unbound variables, unknown functions and
//!    wrong arities, dead globals/bindings, shadowing, `P_`/`A_` row
//!    references that cannot resolve, and cycle diagnostics that report
//!    the full dependency path.
//! 3. **Plausibility checks** — keyed by element class: negative
//!    constants in physical slots, `swing > vdd`, clocked templates at
//!    a constant 0 Hz, converter efficiencies outside (0, 1],
//!    constant subexpressions folding to non-finite values.
//!
//! The contract that makes the linter trustworthy: **a sheet with zero
//! `Error`-severity diagnostics evaluates without structural errors**
//! (the property tests in this crate enforce it). Warnings and infos
//! are advisory.
//!
//! Reports render as plain text ([`LintReport::render_text`]), HTML
//! ([`LintReport::render_html`]), and JSON ([`LintReport::to_json`] /
//! [`LintReport::from_json`] round-trip through `powerplay-json`).

mod diag;
mod dims;
mod element;
mod obs;
mod sheet_analysis;

pub use diag::{codes, Diagnostic, LintReport, Severity};
pub use dims::{convention_dim, infer_dims, DimInfo};
pub use element::{lint_element, lint_registry};
pub use sheet_analysis::{lint_sheet, lint_sheet_with, LintOptions};

use powerplay_library::EvaluateElementError;
use powerplay_sheet::EvaluateSheetError;

/// Converts a runtime evaluation failure into the equivalent
/// [`Diagnostic`], so API layers can answer with the same structured
/// shape (code + path) whether a problem was caught statically or at
/// evaluation time.
pub fn diagnostic_for_play_error(err: &EvaluateSheetError) -> Diagnostic {
    diagnostic_for_play_error_at("", err)
}

fn diagnostic_for_play_error_at(prefix: &str, err: &EvaluateSheetError) -> Diagnostic {
    match err {
        EvaluateSheetError::UnknownElement { row, element } => Diagnostic::error(
            codes::UNKNOWN_ELEMENT,
            format!("{prefix}rows/{row}"),
            format!("no element `{element}` in the library"),
        ),
        EvaluateSheetError::CircularGlobals(names) => Diagnostic::error(
            codes::CIRCULAR_GLOBALS,
            format!(
                "{prefix}globals/{}",
                names.first().map(String::as_str).unwrap_or("")
            ),
            format!("global definitions form a cycle: {}", names.join(" -> ")),
        ),
        EvaluateSheetError::CircularRows(names) => Diagnostic::error(
            codes::CIRCULAR_ROWS,
            format!(
                "{prefix}rows/{}",
                names.first().map(String::as_str).unwrap_or("")
            ),
            format!("row dependencies form a cycle: {}", names.join(" -> ")),
        ),
        EvaluateSheetError::DuplicateRowIdent(ident) => Diagnostic::error(
            codes::DUPLICATE_ROW_IDENT,
            format!("{prefix}rows"),
            format!("two rows fold to the same identifier `{ident}`"),
        ),
        EvaluateSheetError::Global { name, source } => {
            eval_error_diag(source, format!("{prefix}globals/{name}"))
        }
        EvaluateSheetError::Binding { row, param, source } => {
            eval_error_diag(source, format!("{prefix}rows/{row}/bindings/{param}"))
        }
        EvaluateSheetError::Element { row, source } => match source {
            EvaluateElementError::Eval { formula, source } => {
                eval_error_diag(source, format!("{prefix}rows/{row}/model/{formula}"))
            }
            EvaluateElementError::MissingOperatingPoint(var) => Diagnostic::error(
                codes::MISSING_OPERATING_POINT,
                format!("{prefix}rows/{row}"),
                format!("element model requires `{var}` in scope"),
            ),
            EvaluateElementError::BadValue { formula, value } => {
                let path = format!("{prefix}rows/{row}/model/{formula}");
                if value.is_finite() {
                    Diagnostic::error(
                        codes::NEGATIVE_CONSTANT_MODEL,
                        path,
                        format!("`{formula}` produced negative physical value {value}"),
                    )
                } else {
                    Diagnostic::error(
                        codes::NON_FINITE_CONSTANT,
                        path,
                        format!("`{formula}` produced non-finite value {value}"),
                    )
                }
            }
        },
        EvaluateSheetError::Nested { row, source } => {
            diagnostic_for_play_error_at(&format!("{prefix}rows/{row}/"), source)
        }
    }
}

fn eval_error_diag(source: &powerplay_expr::EvalError, path: String) -> Diagnostic {
    use powerplay_expr::EvalError;
    match source {
        EvalError::UnknownVariable(name) => Diagnostic::error(
            codes::UNBOUND_VARIABLE,
            path,
            format!("nothing in scope defines `{name}`"),
        ),
        EvalError::UnknownFunction(name) => Diagnostic::error(
            codes::UNKNOWN_FUNCTION,
            path,
            format!("unknown function `{name}`"),
        ),
        EvalError::WrongArity {
            function,
            expected,
            found,
        } => Diagnostic::error(
            codes::WRONG_ARITY,
            path,
            format!("`{function}` takes {expected} arguments, found {found}"),
        ),
    }
}

#[cfg(test)]
mod play_error_tests {
    use super::*;

    #[test]
    fn nested_errors_get_prefixed_paths() {
        let err = EvaluateSheetError::Nested {
            row: "Custom Hardware".to_owned(),
            source: Box::new(EvaluateSheetError::Global {
                name: "vdd".to_owned(),
                source: powerplay_expr::EvalError::UnknownVariable("vcore".to_owned()),
            }),
        };
        let d = diagnostic_for_play_error(&err);
        assert_eq!(d.code, codes::UNBOUND_VARIABLE);
        assert_eq!(d.path, "rows/Custom Hardware/globals/vdd");
    }

    #[test]
    fn bad_value_splits_on_finiteness() {
        let neg = EvaluateSheetError::Element {
            row: "X".to_owned(),
            source: EvaluateElementError::BadValue {
                formula: "cap_full",
                value: -1.0,
            },
        };
        assert_eq!(
            diagnostic_for_play_error(&neg).code,
            codes::NEGATIVE_CONSTANT_MODEL
        );
        let inf = EvaluateSheetError::Element {
            row: "X".to_owned(),
            source: EvaluateElementError::BadValue {
                formula: "power_direct",
                value: f64::INFINITY,
            },
        };
        assert_eq!(
            diagnostic_for_play_error(&inf).code,
            codes::NON_FINITE_CONSTANT
        );
    }
}
