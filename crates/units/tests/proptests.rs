//! Property-based tests for quantity parsing, formatting and arithmetic.

use powerplay_units::prefix::SiPrefix;
use powerplay_units::{Capacitance, Energy, Frequency, Power, Voltage};
use proptest::prelude::*;

fn reasonable_magnitude() -> impl Strategy<Value = f64> {
    // Values spanning the prefixes we format (femto..tera).
    (-14.0f64..14.0, 1.0f64..9.999).prop_map(|(exp, mant)| mant * 10f64.powf(exp))
}

proptest! {
    #[test]
    fn display_parse_roundtrip_power(v in reasonable_magnitude()) {
        let p = Power::new(v);
        let rendered = p.to_string();
        let reparsed: Power = rendered.parse().expect("rendered value reparses");
        // Four significant digits -> relative error below 1e-3.
        let rel = ((reparsed.value() - v) / v).abs();
        prop_assert!(rel < 1.5e-3, "{v} -> {rendered} -> {} (rel {rel})", reparsed.value());
    }

    #[test]
    fn display_parse_roundtrip_negative(v in reasonable_magnitude()) {
        let p = Power::new(-v);
        let reparsed: Power = p.to_string().parse().expect("negative reparses");
        let rel = ((reparsed.value() + v) / v).abs();
        prop_assert!(rel < 1.5e-3);
    }

    #[test]
    fn prefix_choice_keeps_mantissa_in_range(v in reasonable_magnitude()) {
        let p = SiPrefix::for_value(v);
        let mantissa = v / p.factor();
        prop_assert!((1.0 - 1e-12..1000.0 + 1e-9).contains(&mantissa),
            "value {v} prefix {p:?} mantissa {mantissa}");
    }

    #[test]
    fn addition_commutes(a in reasonable_magnitude(), b in reasonable_magnitude()) {
        prop_assert_eq!(Power::new(a) + Power::new(b), Power::new(b) + Power::new(a));
    }

    #[test]
    fn dynamic_power_scales_quadratically_with_vdd(
        c in 1e-15f64..1e-9,
        v in 0.5f64..5.0,
        f in 1e3f64..1e9,
    ) {
        let base: Power = Capacitance::new(c) * Voltage::new(v) * Voltage::new(v) * Frequency::new(f);
        let doubled: Power = Capacitance::new(c) * Voltage::new(2.0 * v) * Voltage::new(2.0 * v) * Frequency::new(f);
        let ratio = doubled / base;
        prop_assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn energy_times_frequency_matches_power_divided_by_period(
        e in 1e-15f64..1e-3,
        f in 1e3f64..1e9,
    ) {
        let via_mul: Power = Energy::new(e) * Frequency::new(f);
        let via_div: Power = Energy::new(e) / Frequency::new(f).period();
        let rel = ((via_mul.value() - via_div.value()) / via_mul.value()).abs();
        prop_assert!(rel < 1e-12);
    }

    #[test]
    fn parse_accepts_all_prefixes(mant in 1.0f64..999.0) {
        for prefix in SiPrefix::ALL {
            let text = format!("{mant}{}W", prefix.symbol());
            let parsed: Power = text.parse().expect("prefixed literal parses");
            let expected = mant * prefix.factor();
            let rel = ((parsed.value() - expected) / expected).abs();
            prop_assert!(rel < 1e-12, "{text} -> {}", parsed.value());
        }
    }
}
